//! # xtuml-pool — scoped fork-join parallelism for the toolchain
//!
//! A tiny, dependency-free work-distribution layer (the offline
//! `xtuml-prop` precedent: no external crates, deterministic behaviour).
//! Everything parallel in the workspace goes through this crate so the
//! determinism story lives in one place:
//!
//! * **scoped fork-join** over `std::thread::scope` — borrowed data in,
//!   no `'static` bounds, no detached threads;
//! * **ordered result collection** — results come back indexed by input
//!   position regardless of which worker ran them or in what order they
//!   finished, so a parallel map is a drop-in replacement for a serial
//!   loop;
//! * **per-worker PRNG streams** — [`stream_seed`] derives statistically
//!   independent SplitMix64 streams from one base seed, so seeded work
//!   items never share generator state across workers;
//! * **panic propagation** — a panicking work item aborts the whole
//!   fork-join and re-raises the payload on the caller's thread;
//! * **nested-scope rejection** — starting a *parallel* fork-join from
//!   inside a worker would deadlock a fixed-width pool, so it is
//!   detected and refused up front. Serial calls (`jobs == 1`, or one
//!   item or fewer) run on the calling thread without spawning anything
//!   and are therefore allowed anywhere, workers included.
//!
//! With `jobs == 1` every entry point degenerates to a plain serial loop
//! on the caller's thread — no worker threads are spawned at all — which
//! is what guarantees `--jobs 1` always takes the sequential code path.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use xtuml_obs::Sink;

thread_local! {
    /// True while the current thread is a pool worker; used to refuse
    /// nested fork-joins (which would deadlock a fixed-width pool).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Derives the seed of worker/shard stream `index` from a base seed.
///
/// Uses one SplitMix64 step over `base ^ golden·index`, the same
/// derivation `xtuml-prop` uses for per-case seeds: streams are
/// statistically independent and `stream_seed(base, 0) != base`, so a
/// sharded run never accidentally replays the unsharded schedule.
pub const fn stream_seed(base: u64, index: u64) -> u64 {
    let s = base ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
    let s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let z = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The number of workers to use when the user does not say: available
/// parallelism, capped at 8 (the bench's largest measured configuration).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// A fixed-width scoped fork-join pool.
///
/// The pool owns no threads between calls: each [`Pool::map`] /
/// [`Pool::map_mut`] spawns up to `jobs` scoped workers, distributes the
/// items over them through a shared queue (dynamic load balancing), and
/// joins them all before returning. Results are collected **in item
/// order**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// Creates a pool that runs at most `jobs` work items concurrently.
    /// `jobs` is clamped to at least 1.
    pub fn new(jobs: usize) -> Pool {
        Pool { jobs: jobs.max(1) }
    }

    /// A pool sized by [`default_jobs`].
    pub fn with_default_jobs() -> Pool {
        Pool::new(default_jobs())
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item, in parallel across up to
    /// [`Pool::jobs`] workers, returning the results in item order.
    ///
    /// `f(i, &items[i])` may run on any worker in any temporal order;
    /// the output `Vec` is always ordered by `i`. With `jobs == 1` this
    /// is exactly `items.iter().enumerate().map(..).collect()` on the
    /// calling thread.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by any work item, and panics if
    /// a parallel map (`jobs > 1` with two or more items) is started
    /// from inside another fork-join of this crate (nested scopes are
    /// rejected, see [`Pool::try_map`]; serial maps are exempt).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.try_map(items, f).expect("nested Pool fork-join")
    }

    /// Like [`Pool::map`], but reports nested-scope misuse as an error
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::Nested`] when a parallel map is started from
    /// inside a pool worker. The serial path (`jobs == 1`, or fewer than
    /// two items) spawns no threads, cannot deadlock, and is allowed
    /// from anywhere.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// Parallel map over **mutable** items: each worker takes exclusive
    /// ownership of one item at a time, so `f` may freely mutate it.
    /// Results are collected in item order.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::Nested`] when a parallel map is started from
    /// inside a pool worker (serial maps are exempt, as in
    /// [`Pool::try_map`]).
    pub fn try_map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Result<Vec<R>, PoolError>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        // Hand out disjoint `&mut` items through a locked queue; each
        // worker pops one at a time. Exclusivity comes from the queue,
        // not from unsafe slice splitting.
        let queue: Mutex<Vec<(usize, &mut T)>> =
            Mutex::new(items.iter_mut().enumerate().rev().collect());
        self.run_queued(&queue, &f)
    }

    /// [`Pool::try_map_mut`] with telemetry: records one
    /// [`Counter::PoolScopes`](xtuml_obs::Counter) per fork-join, one
    /// [`Counter::PoolTasks`](xtuml_obs::Counter) per item, and (when the
    /// sink has spans enabled) a `pool.fork_join` span on the sink's own
    /// track covering the whole scope lifetime. Counts depend only on the
    /// item count, never on `jobs`, so snapshots stay jobs-invariant.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Pool::try_map_mut`].
    pub fn try_map_mut_obs<T, R, F>(
        &self,
        sink: &mut dyn Sink,
        label: &str,
        items: &mut [T],
        f: F,
    ) -> Result<Vec<R>, PoolError>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        if sink.enabled() {
            sink.count(xtuml_obs::Counter::PoolScopes, 1);
            sink.count(xtuml_obs::Counter::PoolTasks, items.len() as u64);
        }
        let span = sink.spans_enabled();
        let track = sink.track();
        if span {
            sink.span_begin(track, "pool", &format!("pool.fork_join {label}"));
        }
        let out = self.try_map_mut(items, f);
        if span {
            sink.span_end(track);
        }
        out
    }

    /// The common driver: `n` indexed work items, dynamic distribution.
    fn run<R, F>(&self, n: usize, f: F) -> Result<Vec<R>, PoolError>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.jobs == 1 || n <= 1 {
            // Sequential path: the caller's thread, no queue, no spawn.
            // Taken before the nested-scope check — a serial fork-join
            // spawns no threads and cannot deadlock, so it is legal even
            // from inside a worker (e.g. a serial seed sweep invoked
            // from a fuzz worker).
            return Ok((0..n).map(f).collect());
        }
        if IN_WORKER.with(Cell::get) {
            return Err(PoolError::Nested);
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = f(i);
                        *results[i].lock().expect("result slot poisoned") = Some(r);
                    }
                });
            }
            // scope joins all workers here; a worker panic propagates.
        });
        Ok(results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index was claimed exactly once")
            })
            .collect())
    }

    /// Driver for the `&mut` variant: items live in a shared pop queue.
    fn run_queued<T, R, F>(
        &self,
        queue: &Mutex<Vec<(usize, &mut T)>>,
        f: &F,
    ) -> Result<Vec<R>, PoolError>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = queue.lock().expect("queue poisoned").len();
        if self.jobs == 1 || n <= 1 {
            // As in `run`: serial execution is nesting-safe.
            let mut out: Vec<(usize, R)> = Vec::with_capacity(n);
            while let Some((i, item)) = queue.lock().expect("queue poisoned").pop() {
                out.push((i, f(i, item)));
            }
            out.sort_by_key(|(i, _)| *i);
            return Ok(out.into_iter().map(|(_, r)| r).collect());
        }
        if IN_WORKER.with(Cell::get) {
            return Err(PoolError::Nested);
        }
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    loop {
                        let popped = queue.lock().expect("queue poisoned").pop();
                        let Some((i, item)) = popped else { break };
                        let r = f(i, item);
                        *results[i].lock().expect("result slot poisoned") = Some(r);
                    }
                });
            }
        });
        Ok(results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every queued item was processed")
            })
            .collect())
    }
}

/// Misuse reported by the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// A fork-join was started from inside a pool worker. Nested scopes
    /// would deadlock a fixed-width pool, so they are refused.
    Nested,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Nested => write!(f, "nested Pool fork-join (called from a pool worker)"),
        }
    }
}

impl std::error::Error for PoolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_item_order() {
        for jobs in [1, 2, 4, 8] {
            let pool = Pool::new(jobs);
            let items: Vec<u64> = (0..100).collect();
            let out = pool.map(&items, |i, v| {
                // Perturb completion order a little.
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
                v * 2
            });
            assert_eq!(
                out,
                (0..100).map(|v| v * 2).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn map_mut_mutates_every_item_exactly_once() {
        for jobs in [1, 3, 8] {
            let pool = Pool::new(jobs);
            let mut items: Vec<u64> = vec![0; 57];
            let idx = pool
                .try_map_mut(&mut items, |i, v| {
                    *v += 1;
                    i
                })
                .unwrap();
            assert!(items.iter().all(|&v| v == 1), "jobs={jobs}");
            assert_eq!(idx, (0..57).collect::<Vec<_>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs_work() {
        let pool = Pool::new(4);
        let out: Vec<u64> = pool.map(&[] as &[u64], |_, v| *v);
        assert!(out.is_empty());
        assert_eq!(pool.map(&[9u64], |_, v| v + 1), vec![10]);
    }

    #[test]
    fn jobs_are_clamped_and_reported() {
        assert_eq!(Pool::new(0).jobs(), 1);
        assert_eq!(Pool::new(5).jobs(), 5);
        assert!(Pool::with_default_jobs().jobs() >= 1);
        assert!(default_jobs() <= 8);
    }

    #[test]
    fn panic_in_a_work_item_propagates_to_the_caller() {
        let pool = Pool::new(2);
        let items: Vec<u64> = (0..16).collect();
        let res = std::panic::catch_unwind(|| {
            pool.map(&items, |_, v| {
                assert!(*v != 11, "injected failure");
                *v
            })
        });
        assert!(res.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn nested_fork_join_is_rejected_not_deadlocked() {
        let pool = Pool::new(2);
        let items: Vec<u64> = (0..4).collect();
        let inner: Vec<Result<Vec<u64>, PoolError>> = pool.map(&items, |_, _| {
            let inner_pool = Pool::new(2);
            inner_pool.try_map(&[1u64, 2], |_, v| *v)
        });
        assert!(
            inner.iter().all(|r| r == &Err(PoolError::Nested)),
            "{inner:?}"
        );
        // After the fork-join the caller's thread is not a worker: a new
        // top-level fork-join still works.
        assert_eq!(pool.map(&[1u64], |_, v| *v), vec![1]);
    }

    #[test]
    fn serial_fork_join_inside_a_worker_is_allowed() {
        // A strictly serial pool spawns no threads, so wrapping one
        // (e.g. explore_seeds delegating to explore_seeds_jobs(.., 1))
        // must keep working even when invoked from a parallel worker.
        let pool = Pool::new(2);
        let items: Vec<u64> = (0..6).collect();
        let out = pool.map(&items, |_, v| {
            let serial = Pool::new(1);
            let mut pair = [*v, *v + 1];
            let mapped = serial.map(&pair, |_, x| x * 2);
            let mutated = serial.try_map_mut(&mut pair, |_, x| {
                *x += 1;
                *x
            });
            (mapped, mutated)
        });
        for (i, (mapped, mutated)) in out.into_iter().enumerate() {
            let v = i as u64;
            assert_eq!(mapped, vec![v * 2, (v + 1) * 2]);
            assert_eq!(mutated, Ok(vec![v + 1, v + 2]));
        }
    }

    #[test]
    fn stream_seeds_are_distinct_and_deterministic() {
        let a: Vec<u64> = (0..64).map(|i| stream_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| stream_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 64, "stream seeds must not collide");
        assert_ne!(stream_seed(42, 0), 42, "stream 0 must not replay the base");
        assert_ne!(stream_seed(1, 3), stream_seed(2, 3));
    }

    #[test]
    fn sequential_path_spawns_no_threads() {
        // jobs == 1 must run on the caller's thread (observable through
        // the worker flag staying false and thread ids matching).
        let caller = std::thread::current().id();
        let pool = Pool::new(1);
        let ids = pool.map(&[0u64; 8], |_, _| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }
}
