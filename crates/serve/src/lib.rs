//! `xtuml-serve`: the multi-tenant simulation daemon (DESIGN §15).
//!
//! One process hosts many independent simulation sessions behind a
//! length-prefixed JSON-over-TCP protocol. The pieces:
//!
//! * [`frame`] — the wire framing (4-byte LE length prefix, hard cap
//!   enforced before allocation).
//! * [`proto`] — request parsing and deterministic response rendering.
//! * [`session`] — the session table: per-session seeds, fuel budgets,
//!   backpressure on full stimulus queues, and idle eviction that spools
//!   snapshots to disk.
//! * [`daemon`] — the accept/manager thread split, a blocking
//!   [`Client`], and the golden [`smoke`] transcript.
//!
//! Everything is `std`-only; the protocol reuses the JSON parser from
//! `xtuml-obs` and the snapshot codec from `xtuml-exec`.

#![warn(missing_docs)]

pub mod daemon;
pub mod frame;
pub mod proto;
pub mod session;

pub use daemon::{smoke, Client, ServeConfig, Server};
pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use proto::Request;
pub use session::{SessionCfg, Store};
