//! The TCP daemon: accept loop, per-connection reader threads, and one
//! manager thread that owns the session table.
//!
//! [`Simulation`](xtuml_exec::Simulation) is deliberately `!Send`, so
//! concurrency lives at the edges: each connection gets a cheap thread
//! that reads frames and forwards them as jobs, and a single manager
//! thread applies every request in arrival order against the
//! [`Store`]. That serialization is a feature, not a compromise — it is
//! what makes a multi-tenant transcript deterministic enough to diff
//! byte-for-byte in the smoke test.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crate::frame::{read_frame, write_frame, MAX_FRAME};
use crate::proto::{err_response, json_str, Request};
use crate::session::{SessionCfg, Store};

/// Reply-frame cap for [`Client`] reads. Replies can carry hex-encoded
/// snapshots, so the bound is far looser than the request-side
/// [`MAX_FRAME`].
pub const MAX_REPLY: usize = 64 << 20;

/// Daemon configuration: bind port plus the session-table limits.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port on loopback (0 = ephemeral, for tests).
    pub port: u16,
    /// Session-table limits.
    pub session: SessionCfg,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            port: 7711,
            session: SessionCfg::default(),
        }
    }
}

struct Job {
    body: Vec<u8>,
    reply: mpsc::Sender<String>,
}

/// A running daemon. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop; connection threads die with their peers.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    jobs: Option<mpsc::Sender<Job>>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds loopback and spawns the accept + manager threads.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let addr = listener.local_addr()?;
        let (tx, rx) = mpsc::channel::<Job>();
        let session_cfg = cfg.session;
        // The manager: sole owner of every Simulation. Exits when the
        // last job sender (server handle + connection threads) is gone.
        thread::spawn(move || {
            let mut store = Store::new(session_cfg);
            while let Ok(job) = rx.recv() {
                let reply = match std::str::from_utf8(&job.body) {
                    Err(_) => err_response("frame payload is not UTF-8", &[]),
                    Ok(text) => match Request::parse(text) {
                        Err(e) => err_response(&e, &[]),
                        Ok(req) => store.apply(&req),
                    },
                };
                let _ = job.reply.send(reply);
            }
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_tx = tx.clone();
        let accept = thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let jobs = accept_tx.clone();
                thread::spawn(move || serve_conn(stream, &jobs));
            }
        });
        Ok(Server {
            addr,
            stop,
            jobs: Some(tx),
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and releases the manager's job
    /// queue. Established connections finish on their own.
    pub fn shutdown(mut self) {
        self.stop_now();
    }

    fn stop_now(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.jobs = None;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_now();
    }
}

fn serve_conn(stream: TcpStream, jobs: &mpsc::Sender<Job>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        match read_frame(&mut reader, MAX_FRAME) {
            Ok(None) => break,
            Ok(Some(body)) => {
                let (rtx, rrx) = mpsc::channel();
                if jobs.send(Job { body, reply: rtx }).is_err() {
                    break;
                }
                let Ok(reply) = rrx.recv() else { break };
                if write_frame(&mut writer, reply.as_bytes()).is_err() {
                    break;
                }
            }
            Err(e) => {
                // Oversized or truncated framing leaves the stream
                // position unknowable: answer once, then hang up.
                let _ = write_frame(&mut writer, err_response(&e.to_string(), &[]).as_bytes());
                break;
            }
        }
    }
}

/// A blocking request/reply client over one connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request frame and waits for its reply frame.
    ///
    /// # Errors
    ///
    /// I/O errors, a non-UTF-8 reply, or the server closing the
    /// connection instead of replying.
    pub fn request(&mut self, body: &str) -> io::Result<String> {
        write_frame(&mut self.writer, body.as_bytes())?;
        match read_frame(&mut self.reader, MAX_REPLY)? {
            Some(bytes) => String::from_utf8(bytes)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "reply is not UTF-8")),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }
}

/// The doorbell model used by the smoke transcript.
pub const SMOKE_MODEL: &str = include_str!("../../../models/doorbell.xtuml");
/// The doorbell setup script used by the smoke transcript.
pub const SMOKE_SETUP: &str = include_str!("../../../models/doorbell.stim");

fn transcript_step(client: &mut Client, out: &mut String, req: &str) -> io::Result<String> {
    let resp = client.request(req)?;
    out.push_str("-> ");
    out.push_str(req);
    out.push_str("\n<- ");
    out.push_str(&resp);
    out.push('\n');
    Ok(resp)
}

/// Runs the deterministic smoke transcript against an in-process server
/// on an ephemeral loopback port and returns the full `->`/`<-` log.
/// The same session is driven to quiescence, snapshotted, stimulated
/// further, rolled back via `restore`, and stimulated identically — so
/// the transcript itself witnesses that restore rewinds state exactly.
/// CI diffs the returned text against `tests/golden/serve_smoke.txt`.
///
/// # Errors
///
/// Propagates I/O failures; returns `InvalidData` if the replayed
/// continuation diverges from the pre-restore one.
pub fn smoke() -> io::Result<String> {
    let cfg = ServeConfig {
        port: 0,
        session: SessionCfg::default(),
    };
    let server = Server::start(cfg)?;
    let mut client = Client::connect(server.addr())?;
    let mut out = String::new();

    transcript_step(&mut client, &mut out, r#"{"verb": "ping"}"#)?;
    let create = format!(
        r#"{{"verb": "create", "model": {}, "setup": {}, "seed": 42}}"#,
        json_str(SMOKE_MODEL),
        json_str(SMOKE_SETUP)
    );
    transcript_step(&mut client, &mut out, &create)?;
    transcript_step(&mut client, &mut out, r#"{"verb": "step", "session": 1}"#)?;
    transcript_step(&mut client, &mut out, r#"{"verb": "trace", "session": 1}"#)?;
    transcript_step(&mut client, &mut out, r#"{"verb": "stats", "session": 1}"#)?;

    // Snapshot at quiescence, then a stimulate/step/trace continuation.
    let snap = transcript_step(
        &mut client,
        &mut out,
        r#"{"verb": "snapshot", "session": 1}"#,
    )?;
    let hex = xtuml_obs::json::parse(&snap)
        .ok()
        .and_then(|doc| doc.get("bytes").and_then(|b| b.as_str().map(str::to_owned)))
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "snapshot reply without bytes")
        })?;
    let stim = r#"{"verb": "stimulate", "session": 1, "inst": 0, "event": "Press", "time": 2000}"#;
    transcript_step(&mut client, &mut out, stim)?;
    transcript_step(&mut client, &mut out, r#"{"verb": "step", "session": 1}"#)?;
    let first = transcript_step(&mut client, &mut out, r#"{"verb": "trace", "session": 1}"#)?;

    // Rewind via restore and replay the identical continuation; the
    // trace replies must match byte-for-byte.
    let restore = format!(
        r#"{{"verb": "restore", "session": 1, "bytes": {}}}"#,
        json_str(&hex)
    );
    transcript_step(&mut client, &mut out, &restore)?;
    transcript_step(&mut client, &mut out, stim)?;
    transcript_step(&mut client, &mut out, r#"{"verb": "step", "session": 1}"#)?;
    let second = transcript_step(&mut client, &mut out, r#"{"verb": "trace", "session": 1}"#)?;
    if first != second {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "continuation after restore diverged from the original",
        ));
    }

    transcript_step(&mut client, &mut out, r#"{"verb": "close", "session": 1}"#)?;
    transcript_step(&mut client, &mut out, r#"{"verb": "step", "session": 1}"#)?;
    drop(client);
    server.shutdown();
    Ok(out)
}
