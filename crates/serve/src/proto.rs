//! The request/response protocol: one JSON object per frame.
//!
//! Every request carries a `"verb"` field; every response is a single
//! JSON object whose first field is `"ok"`. Responses are built with
//! deterministic field order, so a transcript of a deterministic session
//! is byte-stable — the serve smoke test and the proto golden tests
//! depend on that.
//!
//! Snapshot bytes cross the wire hex-encoded: JSON-safe, dependency-free
//! and trivially diffable in a transcript.

use xtuml_core::value::Value;
use xtuml_obs::json::{self, escape};

/// One parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered without touching any session.
    Ping,
    /// Create a session from model text, an optional setup stimulus
    /// script, a scheduler seed and an optional fuel override.
    Create {
        /// Model source (`.xtuml` text).
        model: String,
        /// Setup script (`.stim` text): creates, relates, initial
        /// stimuli. Empty for a blank session.
        setup: String,
        /// Scheduler seed for this session's interleaving.
        seed: u64,
        /// Per-session dispatch budget override (`None` = server default).
        fuel: Option<u64>,
    },
    /// Inject a stimulus into a session's pending queue.
    Stimulate {
        /// Target session.
        session: u64,
        /// Instance handle: index into the setup script's `create` list.
        inst: usize,
        /// Event name.
        event: String,
        /// Event arguments.
        args: Vec<Value>,
        /// Delivery time (`None` = the session's current time).
        time: Option<u64>,
    },
    /// Run up to `max_steps` dispatches (bounded by remaining fuel).
    Step {
        /// Target session.
        session: u64,
        /// Dispatch budget for this call (`None` = all remaining fuel).
        max_steps: Option<u64>,
    },
    /// Serialize the session's full state.
    Snapshot {
        /// Target session.
        session: u64,
    },
    /// Replace the session's state from hex-encoded snapshot bytes.
    Restore {
        /// Target session.
        session: u64,
        /// Hex-encoded snapshot bytes.
        hex: String,
    },
    /// Fetch the execution trace from an event index onward.
    TraceFrom {
        /// Target session.
        session: u64,
        /// First event index to return.
        from: usize,
    },
    /// Session statistics and per-session metrics.
    Stats {
        /// Target session.
        session: u64,
    },
    /// Discard a session (and its spooled snapshot, if any).
    Close {
        /// Target session.
        session: u64,
    },
}

fn get_u64(obj: &json::Value, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(json::Value::Null) => Ok(None),
        Some(json::Value::Num(n)) => n
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("`{key}` must be a non-negative integer")),
        Some(_) => Err(format!("`{key}` must be a number")),
    }
}

fn need_u64(obj: &json::Value, key: &str) -> Result<u64, String> {
    get_u64(obj, key)?.ok_or_else(|| format!("missing `{key}`"))
}

fn need_str(obj: &json::Value, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(json::Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("`{key}` must be a string")),
        None => Err(format!("missing `{key}`")),
    }
}

fn opt_str(obj: &json::Value, key: &str) -> Result<String, String> {
    match obj.get(key) {
        Some(json::Value::Str(s)) => Ok(s.clone()),
        Some(json::Value::Null) | None => Ok(String::new()),
        Some(_) => Err(format!("`{key}` must be a string")),
    }
}

fn json_to_value(v: &json::Value) -> Result<Value, String> {
    Ok(match v {
        json::Value::Bool(b) => Value::Bool(*b),
        json::Value::Str(s) => Value::Str(s.clone()),
        json::Value::Num(n) => {
            if let Ok(i) = n.parse::<i64>() {
                Value::Int(i)
            } else {
                Value::Real(
                    n.parse::<f64>()
                        .map_err(|_| format!("unrepresentable number `{n}`"))?,
                )
            }
        }
        other => return Err(format!("unsupported argument value {other:?}")),
    })
}

impl Request {
    /// Parses one request frame.
    ///
    /// # Errors
    ///
    /// Returns a description for malformed JSON, a missing or unknown
    /// verb, or wrongly-typed fields.
    pub fn parse(body: &str) -> Result<Request, String> {
        let doc = json::parse(body).map_err(|e| format!("malformed JSON: {e}"))?;
        let verb = need_str(&doc, "verb")?;
        Ok(match verb.as_str() {
            "ping" => Request::Ping,
            "create" => Request::Create {
                model: need_str(&doc, "model")?,
                setup: opt_str(&doc, "setup")?,
                seed: get_u64(&doc, "seed")?.unwrap_or(0),
                fuel: get_u64(&doc, "fuel")?,
            },
            "stimulate" => {
                let args = match doc.get("args") {
                    None | Some(json::Value::Null) => Vec::new(),
                    Some(json::Value::Arr(items)) => items
                        .iter()
                        .map(json_to_value)
                        .collect::<Result<Vec<_>, _>>()?,
                    Some(_) => return Err("`args` must be an array".to_owned()),
                };
                Request::Stimulate {
                    session: need_u64(&doc, "session")?,
                    inst: need_u64(&doc, "inst")? as usize,
                    event: need_str(&doc, "event")?,
                    args,
                    time: get_u64(&doc, "time")?,
                }
            }
            "step" => Request::Step {
                session: need_u64(&doc, "session")?,
                max_steps: get_u64(&doc, "max_steps")?,
            },
            "snapshot" => Request::Snapshot {
                session: need_u64(&doc, "session")?,
            },
            "restore" => Request::Restore {
                session: need_u64(&doc, "session")?,
                hex: need_str(&doc, "bytes")?,
            },
            "trace" => Request::TraceFrom {
                session: need_u64(&doc, "session")?,
                from: get_u64(&doc, "from")?.unwrap_or(0) as usize,
            },
            "stats" => Request::Stats {
                session: need_u64(&doc, "session")?,
            },
            "close" => Request::Close {
                session: need_u64(&doc, "session")?,
            },
            other => return Err(format!("unknown verb `{other}`")),
        })
    }
}

/// Builds an `{"ok": true, ...}` response; values are emitted raw, so
/// pass pre-rendered JSON (numbers as-is, strings pre-quoted).
pub fn ok_response(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{\"ok\": true");
    for (k, v) in fields {
        out.push_str(&format!(", \"{k}\": {v}"));
    }
    out.push('}');
    out
}

/// Builds an `{"ok": false, "error": ...}` response, with optional extra
/// raw fields (e.g. backpressure depth).
pub fn err_response(error: &str, fields: &[(&str, String)]) -> String {
    let mut out = format!("{{\"ok\": false, \"error\": \"{}\"", escape(error));
    for (k, v) in fields {
        out.push_str(&format!(", \"{k}\": {v}"));
    }
    out.push('}');
    out
}

/// Renders a JSON string literal (quotes + escaping).
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Lower-hex encoding of arbitrary bytes.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes lower- or upper-hex.
///
/// # Errors
///
/// Returns a description for odd length or non-hex bytes.
pub fn from_hex(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("hex string has odd length".to_owned());
    }
    let digits = hex.as_bytes();
    let mut out = Vec::with_capacity(hex.len() / 2);
    for pair in digits.chunks(2) {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit `{}`", pair[0] as char))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit `{}`", pair[1] as char))?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse() {
        assert_eq!(
            Request::parse(r#"{"verb": "ping"}"#).unwrap(),
            Request::Ping
        );
        let r = Request::parse(
            r#"{"verb": "stimulate", "session": 3, "inst": 0, "event": "Press",
                "args": [true, 4, 2.5, "x"], "time": 10}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Stimulate {
                session: 3,
                inst: 0,
                event: "Press".into(),
                args: vec![
                    Value::Bool(true),
                    Value::Int(4),
                    Value::Real(2.5),
                    Value::Str("x".into())
                ],
                time: Some(10),
            }
        );
    }

    #[test]
    fn malformed_requests_are_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"no": "verb"}"#).is_err());
        assert!(Request::parse(r#"{"verb": "frobnicate"}"#).is_err());
        assert!(Request::parse(r#"{"verb": "step"}"#).is_err()); // no session
        assert!(Request::parse(r#"{"verb": "step", "session": "x"}"#).is_err());
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }

    #[test]
    fn responses_are_json() {
        let ok = ok_response(&[("session", "1".into()), ("name", json_str("a\"b"))]);
        assert!(xtuml_obs::json::parse(&ok).is_ok(), "{ok}");
        let err = err_response("bad \"thing\"", &[("pending", "9".into())]);
        assert!(xtuml_obs::json::parse(&err).is_ok(), "{err}");
    }
}
