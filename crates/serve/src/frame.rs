//! Wire framing: a 4-byte little-endian length prefix, then exactly that
//! many payload bytes. The length cap is enforced *before* any
//! allocation, so a hostile prefix cannot trigger a giant buffer; once a
//! connection sends an oversized or short frame the stream position is
//! unknowable and the connection must be closed.

use std::io::{self, Read, Write};

/// Default per-frame byte cap (1 MiB) — far above any legitimate
/// request, far below an allocation bomb.
pub const MAX_FRAME: usize = 1 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads above `u32::MAX` bytes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large to encode"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly at a frame boundary.
///
/// # Errors
///
/// `InvalidData` for a length prefix above `max`; `UnexpectedEof` when
/// the stream ends mid-frame; other I/O errors as raised.
pub fn read_frame(r: &mut impl Read, max: usize) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    // Distinguish clean close (EOF before any prefix byte) from a
    // truncated prefix.
    let mut got = 0usize;
    while got < 4 {
        let n = r.read(&mut prefix[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-length-prefix",
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &wire[..];
        let err = read_frame(&mut r, 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_are_errors_not_hangs() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        for cut in 1..wire.len() {
            let mut r = &wire[..cut];
            assert!(read_frame(&mut r, MAX_FRAME).is_err(), "cut {cut}");
        }
    }
}
