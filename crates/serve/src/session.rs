//! Session bookkeeping: the multi-tenant simulation table.
//!
//! A session is one [`Simulation`] plus its fuel budget and instance
//! handles; the store owns every session and applies one request at a
//! time (requests arrive serialized through the daemon's manager
//! thread). A logical *tick* — one per applied request — is the store's
//! only clock: idle eviction is defined in ticks, never wall time, so
//! the daemon's observable behaviour stays deterministic.
//!
//! Two lifetime tricks make the table possible:
//!
//! * [`Simulation`] borrows its domain, so every distinct model text is
//!   parsed once and leaked to `&'static Domain` (cached by content
//!   hash — re-creating sessions on the same model costs nothing).
//! * [`Simulation`] is deliberately `!Send`; the store never crosses a
//!   thread boundary. Evicted sessions become snapshot files on disk
//!   and are revived by `restore` on their next touch.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;

use xtuml_core::ids::InstId;
use xtuml_core::model::Domain;
use xtuml_core::value::Value;
use xtuml_exec::{SchedPolicy, Simulation, Trace};
use xtuml_lang::parse_domain;
use xtuml_obs::{Counter, Recorder};

use crate::proto::{err_response, from_hex, json_str, ok_response, to_hex, Request};

/// Tunable per-daemon session limits.
#[derive(Debug, Clone)]
pub struct SessionCfg {
    /// Maximum live + spooled sessions.
    pub max_sessions: usize,
    /// Pending-stimulus cap per session; a `stimulate` beyond it gets an
    /// explicit backpressure reply instead of unbounded queue growth.
    pub queue_cap: usize,
    /// Default dispatch budget per session (a `create` may override).
    pub fuel: u64,
    /// Sessions untouched for this many request ticks are evicted to
    /// disk (snapshot-to-spool). `0` disables eviction.
    pub idle_evict: u64,
    /// Directory for spooled snapshots of evicted sessions.
    pub spool: PathBuf,
}

impl Default for SessionCfg {
    fn default() -> SessionCfg {
        SessionCfg {
            max_sessions: 1024,
            queue_cap: 1024,
            fuel: 1_000_000,
            idle_evict: 0,
            spool: std::env::temp_dir().join("xtuml-serve-spool"),
        }
    }
}

enum SlotState {
    Live(Box<Simulation<'static>>),
    Spooled(PathBuf),
}

struct Slot {
    domain: &'static Domain,
    state: SlotState,
    handles: Vec<InstId>,
    fuel_left: u64,
    steps: u64,
    last_used: u64,
}

/// The session table. One instance per daemon, owned by the manager
/// thread.
pub struct Store {
    cfg: SessionCfg,
    domains: HashMap<u64, &'static Domain>,
    sessions: BTreeMap<u64, Slot>,
    next_id: u64,
    tick: u64,
    /// Sessions evicted to disk over the store's lifetime (stats).
    pub evictions: u64,
}

fn fnv(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn parse_setup_value(tok: &str) -> Result<Value, String> {
    if tok == "true" {
        return Ok(Value::Bool(true));
    }
    if tok == "false" {
        return Ok(Value::Bool(false));
    }
    if let Ok(i) = tok.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(r) = tok.parse::<f64>() {
        return Ok(Value::Real(r));
    }
    if tok.starts_with('"') && tok.ends_with('"') && tok.len() >= 2 {
        return Ok(Value::Str(tok[1..tok.len() - 1].to_owned()));
    }
    Err(format!("bad argument `{tok}`"))
}

impl Store {
    /// Creates an empty table (the spool directory is created lazily).
    pub fn new(cfg: SessionCfg) -> Store {
        Store {
            cfg,
            domains: HashMap::new(),
            sessions: BTreeMap::new(),
            next_id: 1,
            tick: 0,
            evictions: 0,
        }
    }

    /// Live (unspooled) session count.
    pub fn live_sessions(&self) -> usize {
        self.sessions
            .values()
            .filter(|s| matches!(s.state, SlotState::Live(_)))
            .count()
    }

    fn domain_for(&mut self, model: &str) -> Result<&'static Domain, String> {
        let key = fnv(model);
        if let Some(d) = self.domains.get(&key) {
            return Ok(d);
        }
        let domain = parse_domain(model).map_err(|e| format!("model does not parse: {e}"))?;
        // Sessions borrow their domain for the daemon's whole life; one
        // leak per distinct model text is the price of a borrow-based
        // simulator behind a 'static session table.
        let leaked: &'static Domain = Box::leak(Box::new(domain));
        self.domains.insert(key, leaked);
        Ok(leaked)
    }

    fn apply_setup(sim: &mut Simulation<'static>, setup: &str) -> Result<Vec<InstId>, String> {
        let mut names: Vec<String> = Vec::new();
        let mut handles: Vec<InstId> = Vec::new();
        for (lineno, raw) in setup.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| format!("setup line {}: {msg}", lineno + 1);
            let toks: Vec<&str> = line.split_whitespace().collect();
            match toks[0] {
                "create" => {
                    if toks.len() != 3 {
                        return Err(err("expected `create <name> <Class>`"));
                    }
                    let h = sim.create(toks[2]).map_err(|e| err(&e.to_string()))?;
                    names.push(toks[1].to_owned());
                    handles.push(h);
                }
                "relate" => {
                    if toks.len() != 4 {
                        return Err(err("expected `relate <a> <b> <Rk>`"));
                    }
                    let a = names.iter().position(|n| n == toks[1]);
                    let b = names.iter().position(|n| n == toks[2]);
                    let (Some(a), Some(b)) = (a, b) else {
                        return Err(err("relate references an unknown instance"));
                    };
                    sim.relate(handles[a], handles[b], toks[3])
                        .map_err(|e| err(&e.to_string()))?;
                }
                "at" => {
                    if toks.len() < 4 {
                        return Err(err("expected `at <time> <name> <Event> [args..]`"));
                    }
                    let time: u64 = toks[1].parse().map_err(|_| err("bad time"))?;
                    let inst = names
                        .iter()
                        .position(|n| n == toks[2])
                        .ok_or_else(|| err("unknown instance"))?;
                    let mut args = Vec::new();
                    for tok in &toks[4..] {
                        args.push(parse_setup_value(tok).map_err(|m| err(&m))?);
                    }
                    sim.inject(time, handles[inst], toks[3], args)
                        .map_err(|e| err(&e.to_string()))?;
                }
                other => return Err(err(&format!("unknown directive `{other}`"))),
            }
        }
        Ok(handles)
    }

    fn spool_path(&self, id: u64) -> PathBuf {
        self.cfg.spool.join(format!("session-{id}.snap"))
    }

    /// Brings a spooled session back to life; no-op for live sessions.
    fn revive(&mut self, id: u64) -> Result<(), String> {
        let Some(slot) = self.sessions.get_mut(&id) else {
            return Err(format!("no session {id}"));
        };
        if let SlotState::Spooled(path) = &slot.state {
            let bytes =
                std::fs::read(path).map_err(|e| format!("spooled snapshot unreadable: {e}"))?;
            // The codec restores the session's recorder (track and
            // deterministic counters included), so the metrics lane
            // survives eviction untouched.
            let sim = Simulation::restore(slot.domain, &bytes)
                .map_err(|e| format!("spooled snapshot corrupt: {e}"))?;
            let _ = std::fs::remove_file(path);
            slot.state = SlotState::Live(Box::new(sim));
        }
        Ok(())
    }

    /// Evicts every session idle for `idle_evict`+ ticks: snapshot to
    /// the spool directory, drop the live simulation. Called after each
    /// applied request.
    fn evict_idle(&mut self) {
        if self.cfg.idle_evict == 0 {
            return;
        }
        let now = self.tick;
        let idle: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| {
                matches!(s.state, SlotState::Live(_))
                    && now.saturating_sub(s.last_used) >= self.cfg.idle_evict
            })
            .map(|(id, _)| *id)
            .collect();
        for id in idle {
            let path = self.spool_path(id);
            let slot = self.sessions.get_mut(&id).expect("listed above");
            let SlotState::Live(sim) = &slot.state else {
                continue;
            };
            if std::fs::create_dir_all(&self.cfg.spool).is_err() {
                continue; // no spool, no eviction — keep the session live
            }
            if std::fs::write(&path, sim.snapshot()).is_ok() {
                slot.state = SlotState::Spooled(path);
                self.evictions += 1;
            }
        }
    }

    fn with_live_sim<F>(&mut self, id: u64, f: F) -> String
    where
        F: FnOnce(&mut Simulation<'static>, &[InstId], &mut u64, &mut u64, &SessionCfg) -> String,
    {
        if let Err(e) = self.revive(id) {
            return err_response(&e, &[]);
        }
        let cfg = self.cfg.clone();
        let Some(slot) = self.sessions.get_mut(&id) else {
            return err_response(&format!("no session {id}"), &[]);
        };
        slot.last_used = self.tick;
        let Slot {
            state,
            handles,
            fuel_left,
            steps,
            ..
        } = slot;
        let SlotState::Live(sim) = state else {
            unreachable!("revived above");
        };
        f(sim, handles, fuel_left, steps, &cfg)
    }

    /// Applies one request and renders the reply. Advances the logical
    /// tick and runs the idle-eviction sweep.
    pub fn apply(&mut self, req: &Request) -> String {
        self.tick += 1;
        let reply = self.dispatch(req);
        self.evict_idle();
        reply
    }

    fn dispatch(&mut self, req: &Request) -> String {
        match req {
            Request::Ping => ok_response(&[]),
            Request::Create {
                model,
                setup,
                seed,
                fuel,
            } => self.create(model, setup, *seed, *fuel),
            Request::Stimulate {
                session,
                inst,
                event,
                args,
                time,
            } => {
                let (inst, event, args, time) = (*inst, event.clone(), args.clone(), *time);
                self.with_live_sim(*session, |sim, handles, _, _, cfg| {
                    let pending = sim.pending_stimuli();
                    if pending >= cfg.queue_cap {
                        return err_response(
                            "backpressure: session queue full",
                            &[
                                ("pending", pending.to_string()),
                                ("queue_cap", cfg.queue_cap.to_string()),
                            ],
                        );
                    }
                    let Some(&handle) = handles.get(inst) else {
                        return err_response(&format!("no instance handle {inst}"), &[]);
                    };
                    let time = time.unwrap_or_else(|| sim.now());
                    match sim.inject(time, handle, &event, args) {
                        Ok(()) => ok_response(&[("pending", sim.pending_stimuli().to_string())]),
                        Err(e) => err_response(&e.to_string(), &[]),
                    }
                })
            }
            Request::Step { session, max_steps } => {
                let max_steps = *max_steps;
                self.with_live_sim(*session, |sim, _, fuel_left, steps, _| {
                    let budget = max_steps.unwrap_or(u64::MAX).min(*fuel_left);
                    if budget == 0 && max_steps != Some(0) {
                        return err_response("fuel exhausted", &[("fuel_left", "0".to_owned())]);
                    }
                    // Batched stepping: the superloop amortizes scheduler and
                    // lookup overhead across the whole budget instead of
                    // paying it per signal.
                    let mut ran = 0u64;
                    let quiescent = match sim.run_steps(budget, &mut ran) {
                        Ok(q) => q,
                        Err(e) => {
                            *fuel_left -= ran;
                            *steps += ran;
                            return err_response(&e.to_string(), &[]);
                        }
                    };
                    *fuel_left -= ran;
                    *steps += ran;
                    ok_response(&[
                        ("steps", ran.to_string()),
                        ("quiescent", quiescent.to_string()),
                        ("now", sim.now().to_string()),
                        ("fuel_left", fuel_left.to_string()),
                    ])
                })
            }
            Request::Snapshot { session } => self.with_live_sim(*session, |sim, _, _, _, _| {
                let bytes = sim.snapshot();
                ok_response(&[
                    ("len", bytes.len().to_string()),
                    ("bytes", json_str(&to_hex(&bytes))),
                ])
            }),
            Request::Restore { session, hex } => {
                let hex = hex.clone();
                // Revive + lookup first so domain is known; then replace.
                if let Err(e) = self.revive(*session) {
                    return err_response(&e, &[]);
                }
                let Some(slot) = self.sessions.get_mut(session) else {
                    return err_response(&format!("no session {session}"), &[]);
                };
                slot.last_used = self.tick;
                let bytes = match from_hex(&hex) {
                    Ok(b) => b,
                    Err(e) => return err_response(&e, &[]),
                };
                // The codec rebuilds the recorder from the snapshot, so a
                // restore rewinds the metrics lane along with the state —
                // a re-snapshot returns the identical bytes.
                match Simulation::restore(slot.domain, &bytes) {
                    Ok(sim) => {
                        slot.state = SlotState::Live(Box::new(sim));
                        ok_response(&[])
                    }
                    Err(e) => err_response(&e.to_string(), &[]),
                }
            }
            Request::TraceFrom { session, from } => {
                let from = *from;
                self.with_live_sim(*session, |sim, _, _, _, _| {
                    let trace = sim.trace();
                    let total = trace.len();
                    let mut sub = Trace::new();
                    for e in trace.iter().skip(from) {
                        sub.push(e);
                    }
                    let rendered = sub.render(sim.domain());
                    let mut events = String::from("[");
                    for (i, line) in rendered.lines().enumerate() {
                        if i > 0 {
                            events.push_str(", ");
                        }
                        events.push_str(&json_str(line));
                    }
                    events.push(']');
                    ok_response(&[("total", total.to_string()), ("events", events)])
                })
            }
            Request::Stats { session } => {
                self.with_live_sim(*session, |sim, _, fuel_left, steps, _| {
                    // The per-session metrics lane: every session carries its
                    // own Recorder (track = session id), so dispatch/send
                    // counters are attributable per tenant.
                    let metrics = sim.take_recorder().map(|rec| {
                        let row = format!(
                            "{{\"dispatched\": {}, \"sent\": {}, \"timers_fired\": {}}}",
                            rec.metrics.get(Counter::SignalsDispatched),
                            rec.metrics.get(Counter::SignalsSent),
                            rec.metrics.get(Counter::TimersFired)
                        );
                        sim.attach_recorder(rec);
                        row
                    });
                    let mut fields = vec![
                        ("now", sim.now().to_string()),
                        ("steps", steps.to_string()),
                        ("pending", sim.pending_stimuli().to_string()),
                        ("fuel_left", fuel_left.to_string()),
                        ("trace_len", sim.trace().len().to_string()),
                        ("dropped", sim.dropped_events().to_string()),
                    ];
                    if let Some(m) = metrics {
                        fields.push(("metrics", m));
                    }
                    ok_response(&fields)
                })
            }
            Request::Close { session } => {
                let Some(slot) = self.sessions.remove(session) else {
                    return err_response(&format!("no session {session}"), &[]);
                };
                if let SlotState::Spooled(path) = slot.state {
                    let _ = std::fs::remove_file(path);
                }
                ok_response(&[])
            }
        }
    }

    fn create(&mut self, model: &str, setup: &str, seed: u64, fuel: Option<u64>) -> String {
        if self.sessions.len() >= self.cfg.max_sessions {
            return err_response(
                "session table full",
                &[("max_sessions", self.cfg.max_sessions.to_string())],
            );
        }
        let domain = match self.domain_for(model) {
            Ok(d) => d,
            Err(e) => return err_response(&e, &[]),
        };
        let id = self.next_id;
        let mut sim = Simulation::with_policy(domain, SchedPolicy::seeded(seed));
        let mut rec = Recorder::new();
        rec.track = id as u32;
        sim.attach_recorder(rec);
        let handles = match Store::apply_setup(&mut sim, setup) {
            Ok(h) => h,
            Err(e) => return err_response(&e, &[]),
        };
        self.next_id += 1;
        self.sessions.insert(
            id,
            Slot {
                domain,
                state: SlotState::Live(Box::new(sim)),
                handles,
                fuel_left: fuel.unwrap_or(self.cfg.fuel),
                steps: 0,
                last_used: self.tick,
            },
        );
        let instances = self.sessions[&id].handles.len();
        ok_response(&[
            ("session", id.to_string()),
            ("instances", instances.to_string()),
        ])
    }
}
