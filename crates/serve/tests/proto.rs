//! Session-conformance suite for the serve daemon (DESIGN §15).
//!
//! Covers the wire contract verb by verb against a live loopback
//! server: golden replies, structured rejection of malformed and
//! oversized frames, explicit backpressure when a session queue fills,
//! fuel exhaustion, idle eviction round-trips, and session isolation —
//! two sessions with the same seed produce identical traces no matter
//! how a third tenant's requests interleave between them.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;

use xtuml_serve::{frame, Client, ServeConfig, Server, SessionCfg, MAX_FRAME};

const MODEL: &str = "domain Tiny;\n\
    actor OUT { signal out(v: int); }\n\
    class C {\n\
        attr n: int = 0;\n\
        event E(v: int);\n\
        initial S;\n\
        state S { }\n\
        state T { self.n = self.n + rcvd.v; gen out(self.n) to OUT; }\n\
        on S: E -> T;\n\
        on T: E -> T;\n\
    }\n";

const SETUP: &str = "create c C\nat 0 c E 1\nat 10 c E 2\n";

fn start(session: SessionCfg) -> (Server, Client) {
    let server = Server::start(ServeConfig { port: 0, session }).expect("bind loopback");
    let client = Client::connect(server.addr()).expect("connect");
    (server, client)
}

fn create_req(seed: u64, fuel: Option<u64>) -> String {
    let fuel = fuel.map_or(String::from("null"), |f| f.to_string());
    format!(
        r#"{{"verb": "create", "model": {}, "setup": {}, "seed": {seed}, "fuel": {fuel}}}"#,
        xtuml_serve::proto::json_str(MODEL),
        xtuml_serve::proto::json_str(SETUP),
    )
}

fn get<'a>(reply: &'a xtuml_obs::json::Value, key: &str) -> &'a xtuml_obs::json::Value {
    reply
        .get(key)
        .unwrap_or_else(|| panic!("reply lacks `{key}`"))
}

fn parsed(reply: &str) -> xtuml_obs::json::Value {
    xtuml_obs::json::parse(reply).unwrap_or_else(|e| panic!("reply is not JSON ({e}): {reply}"))
}

#[test]
fn every_verb_answers_its_golden_reply() {
    let (_server, mut c) = start(SessionCfg::default());

    assert_eq!(c.request(r#"{"verb": "ping"}"#).unwrap(), r#"{"ok": true}"#);
    assert_eq!(
        c.request(&create_req(9, None)).unwrap(),
        r#"{"ok": true, "session": 1, "instances": 1}"#
    );
    assert_eq!(
        c.request(r#"{"verb": "step", "session": 1}"#).unwrap(),
        r#"{"ok": true, "steps": 2, "quiescent": true, "now": 11, "fuel_left": 999998}"#
    );
    assert_eq!(
        c.request(
            r#"{"verb": "stimulate", "session": 1, "inst": 0, "event": "E", "args": [5], "time": 20}"#
        )
        .unwrap(),
        r#"{"ok": true, "pending": 1}"#
    );

    let stats = parsed(&c.request(r#"{"verb": "stats", "session": 1}"#).unwrap());
    assert_eq!(get(&stats, "pending").as_num(), Some(1.0));
    assert_eq!(get(&stats, "steps").as_num(), Some(2.0));
    assert_eq!(get(&stats, "dropped").as_num(), Some(0.0));
    let metrics = get(&stats, "metrics");
    assert_eq!(get(metrics, "dispatched").as_num(), Some(2.0));

    // The trace is complete and renders from any suffix index.
    let trace = parsed(&c.request(r#"{"verb": "trace", "session": 1}"#).unwrap());
    let events = get(&trace, "events").as_arr().expect("events array");
    assert_eq!(get(&trace, "total").as_num(), Some(events.len() as f64));
    assert!(events[0].as_str().unwrap().contains("create I0 : C"));
    let tail_req = format!(
        r#"{{"verb": "trace", "session": 1, "from": {}}}"#,
        events.len() - 1
    );
    let tail = parsed(&c.request(&tail_req).unwrap());
    assert_eq!(get(&tail, "events").as_arr().unwrap().len(), 1);

    // Snapshot replies carry the codec bytes hex-encoded; restore
    // rewinds to them and a re-snapshot returns the identical hex.
    let snap = parsed(&c.request(r#"{"verb": "snapshot", "session": 1}"#).unwrap());
    let hex = get(&snap, "bytes").as_str().expect("hex bytes").to_owned();
    assert_eq!(get(&snap, "len").as_num(), Some(hex.len() as f64 / 2.0));
    assert_eq!(
        c.request(r#"{"verb": "step", "session": 1}"#).unwrap(),
        r#"{"ok": true, "steps": 1, "quiescent": true, "now": 21, "fuel_left": 999997}"#
    );
    let restore = format!(r#"{{"verb": "restore", "session": 1, "bytes": "{hex}"}}"#);
    assert_eq!(c.request(&restore).unwrap(), r#"{"ok": true}"#);
    let again = parsed(&c.request(r#"{"verb": "snapshot", "session": 1}"#).unwrap());
    assert_eq!(get(&again, "bytes").as_str(), Some(hex.as_str()));

    assert_eq!(
        c.request(r#"{"verb": "close", "session": 1}"#).unwrap(),
        r#"{"ok": true}"#
    );
    assert_eq!(
        c.request(r#"{"verb": "close", "session": 1}"#).unwrap(),
        r#"{"ok": false, "error": "no session 1"}"#
    );
}

#[test]
fn request_level_errors_are_replies_not_disconnects() {
    let (_server, mut c) = start(SessionCfg::default());
    for (req, want) in [
        ("not json at all", "malformed JSON"),
        (r#"{"x": 1}"#, "missing `verb`"),
        (r#"{"verb": "frobnicate"}"#, "unknown verb"),
        (r#"{"verb": "step"}"#, "missing `session`"),
        (r#"{"verb": "step", "session": 99}"#, "no session 99"),
        (
            r#"{"verb": "restore", "session": 1, "bytes": "zz"}"#,
            "no session 1",
        ),
    ] {
        let reply = parsed(&c.request(req).unwrap());
        assert_eq!(get(&reply, "ok").as_bool(), Some(false), "{req}");
        assert!(
            get(&reply, "error").as_str().unwrap().contains(want),
            "{req} answered {reply:?}"
        );
    }
    // The connection survived all of it.
    assert_eq!(c.request(r#"{"verb": "ping"}"#).unwrap(), r#"{"ok": true}"#);

    // A model that does not parse is a create-time error.
    let bad = r#"{"verb": "create", "model": "domain Broken", "setup": ""}"#;
    let reply = parsed(&c.request(bad).unwrap());
    assert!(get(&reply, "error").as_str().unwrap().contains("parse"));

    // A setup script referencing unknown names is rejected with its line.
    let req = format!(
        r#"{{"verb": "create", "model": {}, "setup": "create c C\nrelate c ghost R1\n"}}"#,
        xtuml_serve::proto::json_str(MODEL)
    );
    let reply = parsed(&c.request(&req).unwrap());
    assert!(get(&reply, "error").as_str().unwrap().contains("line 2"));
}

#[test]
fn oversized_frames_get_one_error_then_the_connection_closes() {
    let (server, _keep) = start(SessionCfg::default());
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
    raw.write_all(&huge).unwrap();
    raw.flush().unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let reply = frame::read_frame(&mut reader, MAX_FRAME)
        .unwrap()
        .expect("error frame");
    let reply = parsed(std::str::from_utf8(&reply).unwrap());
    assert_eq!(get(&reply, "ok").as_bool(), Some(false));
    assert!(get(&reply, "error").as_str().unwrap().contains("exceeds"));
    // After the error frame the server hangs up: next read is EOF.
    assert!(frame::read_frame(&mut reader, MAX_FRAME).unwrap().is_none());
}

#[test]
fn non_utf8_frames_are_structured_errors() {
    let (_server, mut c) = start(SessionCfg::default());
    // Client::request only sends strings; drive the frame layer directly.
    let mut raw = TcpStream::connect(_server.addr()).unwrap();
    frame::write_frame(&mut raw, &[0xFF, 0xFE, 0x00]).unwrap();
    let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
    let reply = frame::read_frame(&mut reader, MAX_FRAME)
        .unwrap()
        .expect("reply");
    assert!(std::str::from_utf8(&reply).unwrap().contains("not UTF-8"));
    drop(raw);
    assert_eq!(c.request(r#"{"verb": "ping"}"#).unwrap(), r#"{"ok": true}"#);
}

#[test]
fn full_queues_answer_backpressure_and_drain_on_step() {
    let cfg = SessionCfg {
        queue_cap: 3,
        ..SessionCfg::default()
    };
    let (_server, mut c) = start(cfg);
    // SETUP already queues 2 stimuli, so one more fits and the next is
    // refused with the queue depth in the reply.
    c.request(&create_req(0, None)).unwrap();
    let stim =
        r#"{"verb": "stimulate", "session": 1, "inst": 0, "event": "E", "args": [1], "time": 30}"#;
    assert_eq!(c.request(stim).unwrap(), r#"{"ok": true, "pending": 3}"#);
    assert_eq!(
        c.request(stim).unwrap(),
        r#"{"ok": false, "error": "backpressure: session queue full", "pending": 3, "queue_cap": 3}"#
    );
    // Draining the queue lifts the backpressure (at a fresh time — the
    // drain advanced the session clock past 30).
    c.request(r#"{"verb": "step", "session": 1}"#).unwrap();
    let later =
        r#"{"verb": "stimulate", "session": 1, "inst": 0, "event": "E", "args": [1], "time": 100}"#;
    assert_eq!(c.request(later).unwrap(), r#"{"ok": true, "pending": 1}"#);
}

#[test]
fn fuel_budgets_are_enforced_per_session() {
    let (_server, mut c) = start(SessionCfg::default());
    c.request(&create_req(0, Some(1))).unwrap();
    assert_eq!(
        c.request(r#"{"verb": "step", "session": 1}"#).unwrap(),
        r#"{"ok": true, "steps": 1, "quiescent": false, "now": 1, "fuel_left": 0}"#
    );
    assert_eq!(
        c.request(r#"{"verb": "step", "session": 1}"#).unwrap(),
        r#"{"ok": false, "error": "fuel exhausted", "fuel_left": 0}"#
    );
    // Fuel is per session: a fresh tenant is unaffected.
    c.request(&create_req(0, None)).unwrap();
    let reply = parsed(&c.request(r#"{"verb": "step", "session": 2}"#).unwrap());
    assert_eq!(get(&reply, "ok").as_bool(), Some(true));
}

#[test]
fn idle_sessions_evict_to_disk_and_revive_transparently() {
    let spool = std::env::temp_dir().join(format!("xtuml-serve-test-{}", std::process::id()));
    let cfg = SessionCfg {
        idle_evict: 2,
        spool: spool.clone(),
        ..SessionCfg::default()
    };
    let (_server, mut c) = start(cfg);
    c.request(&create_req(4, None)).unwrap();
    c.request(r#"{"verb": "step", "session": 1}"#).unwrap();
    let before = c.request(r#"{"verb": "trace", "session": 1}"#).unwrap();

    // Two ticks of other-tenant traffic push session 1 over the idle
    // threshold; its state moves to the spool directory.
    c.request(r#"{"verb": "ping"}"#).unwrap();
    c.request(r#"{"verb": "ping"}"#).unwrap();
    let spooled: PathBuf = spool.join("session-1.snap");
    assert!(spooled.exists(), "idle session was not spooled");

    // Touching the session revives it from the snapshot file with its
    // trace intact, and the spool file is consumed.
    assert_eq!(
        c.request(r#"{"verb": "trace", "session": 1}"#).unwrap(),
        before
    );
    assert!(!spooled.exists(), "revive left the spool file behind");
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn sessions_are_isolated_and_interleaving_is_invisible() {
    let (_server, mut c) = start(SessionCfg::default());

    // A solo reference run in its own session.
    c.request(&create_req(11, None)).unwrap();
    c.request(r#"{"verb": "step", "session": 1}"#).unwrap();
    let reference = c.request(r#"{"verb": "trace", "session": 1}"#).unwrap();

    // Two more tenants with the same model and seed, stepped with a
    // noisy third tenant's requests interleaved between every call.
    c.request(&create_req(11, None)).unwrap(); // session 2
    c.request(&create_req(11, None)).unwrap(); // session 3
    c.request(&create_req(99, Some(7))).unwrap(); // session 4: the noise
    let noise = [
        r#"{"verb": "stimulate", "session": 4, "inst": 0, "event": "E", "args": [9], "time": 40}"#,
        r#"{"verb": "step", "session": 4, "max_steps": 1}"#,
        r#"{"verb": "stats", "session": 4}"#,
        r#"{"verb": "snapshot", "session": 4}"#,
    ];
    for (i, step_target) in [2u64, 3].into_iter().enumerate() {
        c.request(noise[i]).unwrap();
        let req = format!(r#"{{"verb": "step", "session": {step_target}, "max_steps": 1}}"#);
        c.request(&req).unwrap();
        c.request(noise[i + 2]).unwrap();
        let req = format!(r#"{{"verb": "step", "session": {step_target}}}"#);
        c.request(&req).unwrap();
    }
    let t2 = c.request(r#"{"verb": "trace", "session": 2}"#).unwrap();
    let t3 = c.request(r#"{"verb": "trace", "session": 3}"#).unwrap();
    assert_eq!(t2, t3, "same seed, same model: traces must match");
    assert_eq!(t2, reference, "interleaving perturbed a session");

    // And the noisy tenant really did something different.
    let t4 = c.request(r#"{"verb": "trace", "session": 4}"#).unwrap();
    assert_ne!(t4, t2);
}
