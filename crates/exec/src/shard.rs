//! Deterministic sharded parallel execution.
//!
//! The paper's semantics make parallelism *legal*: instances are
//! concurrently executing state machines that communicate only by
//! signals, and each dispatch runs to completion. [`ShardedSimulation`]
//! exploits that. Instances are partitioned into `policy.shards` shards
//! by instance id (`id % shards`); execution proceeds in **epochs**:
//!
//! 1. due stimuli and timers are delivered into shard queues;
//! 2. every shard independently runs its local run-to-completion steps
//!    until it has no ready instance, buffering signals to other shards
//!    in a per-destination outbox and appending to a shard-local trace;
//! 3. at the **epoch barrier** the shard traces are concatenated in
//!    shard-id order, outboxes are routed (source shards in id order,
//!    each source's signals in send order — so signals between any
//!    sender–receiver pair stay FIFO), new timers are collected, and
//!    global time advances by the largest per-shard dispatch count.
//!
//! Every choice above is a pure function of the seed and the shard
//! count: shard `k` schedules with its own PRNG stream derived from
//! `policy.seed`, and the barrier merge is order-deterministic. The
//! worker count (`--jobs`) only decides how many shards execute
//! *concurrently* between barriers — the merged trace is byte-identical
//! whether the shards run on one thread or eight. `shards == 1`
//! delegates to the classic sequential [`Simulation`], so the historical
//! single-seed traces are preserved exactly.
//!
//! Not every model is shardable. [`shard_safety`] consults the
//! whole-model effect analysis (`xtuml_core::effects`) before any thread
//! starts: models whose actions only write `self` attributes and
//! communicate by signals shard without restriction, and the analysis
//! additionally *admits* reads of never-written attributes (replicas
//! hold the declared defaults), creation of classes nothing selects over
//! (ids are allocated congruent to the creating shard, so ownership
//! holds — see [`ObjectStore::create_with_id`]), and attribute access
//! confined to a single navigated association whose links are
//! shard-colocated. That last rule is a *runtime* precondition: the run
//! re-checks the setup links at the actual shard count and silently
//! delegates to the sequential engine when it fails (see
//! [`ShardedSimulation::runtime_fallback`]), keeping the trace a pure
//! function of `(seed, shards)`. Structure mutation
//! (`delete`/`relate`/`unrelate`) and irreconcilable non-self access
//! still reject — the latter as diagnostic `X0017 cross-shard-race`.

use crate::sched::{SchedPolicy, SplitMix64};
use crate::sim::{DispatchTable, Engine, Exec, PayloadPool, Simulation, Slot, SpanNames};
use crate::snapshot::{self, SnapError, SnapResult};
use crate::store::ObjectStore;
use crate::trace::{Trace, TraceMode};
use std::collections::VecDeque;
use std::sync::Arc;
use xtuml_core::bc::{self, BcFallback, BcProgram};
use xtuml_core::code::CompiledProgram;
use xtuml_core::error::{CoreError, Result};
use xtuml_core::ids::{ActorId, AssocId, AttrId, ClassId, EventId, InstId};
use xtuml_core::interp::{self, ActionHost, ExecCtx};
use xtuml_core::model::Domain;
use xtuml_core::value::Value;
use xtuml_obs::{Counter, EpochRow, Gauge, HistKind, Metrics, NullSink, Recorder, Sink};
use xtuml_pool::{stream_seed, Pool};

// ---------------------------------------------------------------------------
// Static shard-safety analysis
// ---------------------------------------------------------------------------

/// Checks whether a domain's actions are safe to execute sharded.
///
/// Safe actions may read/write `self` attributes, navigate associations,
/// select over the (static) population, generate signals (buffered at
/// the barrier), cancel their own timers, and call bridge functions
/// (default-return only — handler closures cannot cross threads). On
/// top of that, the effect analysis admits read-only access to
/// never-written attributes, writes to instances created in the same
/// run-to-completion step (creation-confined classes only), and access
/// confined to one shard-colocated association. What remains —
/// `delete`/`relate`/`unrelate`, unconfined creates, and non-self
/// access no admission rule covers — would race between shards and
/// rejects here.
///
/// # Errors
///
/// Returns a runtime error naming every offending class/state/construct,
/// so callers can report *why* a model must run sequentially.
pub fn shard_safety(domain: &Domain) -> Result<()> {
    let offenses = xtuml_core::lint::shard_offenses(domain);
    if offenses.is_empty() {
        Ok(())
    } else {
        let described: Vec<String> = offenses.iter().map(|o| o.describe()).collect();
        Err(CoreError::runtime(format!(
            "model is not shard-safe: {}",
            described.join("; ")
        )))
    }
}

// ---------------------------------------------------------------------------
// The sharded engine
// ---------------------------------------------------------------------------

/// A queued signal inside a shard (mirror of the sequential envelope).
#[derive(Debug, Clone)]
struct Envelope {
    from: Option<InstId>,
    event: EventId,
    args: Arc<[Value]>,
    seq: u64,
}

#[derive(Debug, Clone, Default)]
struct InstQueues {
    self_q: VecDeque<Envelope>,
    main_q: VecDeque<Envelope>,
}

impl InstQueues {
    fn is_empty(&self) -> bool {
        self.self_q.is_empty() && self.main_q.is_empty()
    }
}

/// A cross-shard signal buffered until the epoch barrier.
#[derive(Debug, Clone)]
struct OutboxEntry {
    to: InstId,
    env: Envelope,
}

/// A timer armed during an epoch, collected by the coordinator.
#[derive(Debug, Clone)]
struct PendingTimer {
    deadline: u64,
    seq: u64,
    from: InstId,
    to: InstId,
    event: EventId,
    args: Arc<[Value]>,
}

/// An external stimulus scheduled before the run.
#[derive(Debug, Clone)]
struct PendingStimulus {
    time: u64,
    seq: u64,
    to: InstId,
    event: EventId,
    args: Arc<[Value]>,
}

/// The live epoch engine between barriers: shard replicas plus the
/// coordinator's undelivered work. Held only while a run is paused at an
/// epoch barrier ([`ShardedSimulation::run_epochs`] returned `None`) —
/// exactly the points where every shard's epoch-local buffers are
/// drained, which is what makes the pause a valid snapshot point.
struct EngineState {
    shards: Vec<ShardState>,
    /// Not-yet-due external stimuli, sorted by `(time, seq)`.
    stimuli: VecDeque<PendingStimulus>,
    /// Armed timers, sorted by `(deadline, seq)` at every barrier.
    timers: Vec<PendingTimer>,
    total_steps: u64,
    epoch_no: u64,
}

/// A delivery that has come due at the top of an epoch:
/// `(time, seq, kind, from, to, event, args)`, where kind 0 is an
/// injected stimulus and 1 a timer — stimuli sort before timers at the
/// same instant because their seqs come from different counters.
type DueDelivery = (u64, u64, u8, Option<InstId>, InstId, EventId, Arc<[Value]>);

/// Everything one shard owns between barriers. `Send` by construction:
/// signal payloads are `Arc<[Value]>`, the store and trace are plain
/// data.
struct ShardState {
    id: usize,
    nshards: usize,
    /// Replica of the setup-time population. Admitted actions only
    /// write shard-owned instances and only read slots whose values
    /// match the owner's (never-written attributes, colocated links, or
    /// instances this shard created), so replicas only diverge in slots
    /// no other shard reads. Creation appends shard-congruent ids, so
    /// replica id spaces may diverge in length — created ids never
    /// escape their shard.
    store: ObjectStore,
    queues: Vec<InstQueues>,
    /// Ready local instances, sorted ascending by id.
    ready: Vec<InstId>,
    in_ready: Vec<bool>,
    rng: SplitMix64,
    /// Per-shard send counter; globalised as `local*nshards + id` so
    /// sequence numbers stay strictly increasing per sending shard
    /// without cross-shard coordination.
    local_seq: u64,
    /// Epoch-local state, cleared at each barrier:
    trace: Trace,
    outbox: Vec<OutboxEntry>,
    new_timers: Vec<PendingTimer>,
    /// `(instance, event)` pairs cancelled this epoch, applied to the
    /// coordinator's timer list at the barrier.
    cancels: Vec<(InstId, EventId)>,
    dispatches: u64,
    dropped: u64,
    /// Remaining global dispatch budget at the top of the epoch. A local
    /// cycle (e.g. an action that unconditionally signals itself) never
    /// quiesces, so the epoch itself must enforce `max_steps` — the
    /// post-barrier total check would never be reached.
    step_budget: u64,
    /// The run's configured cap, for the error message.
    max_steps: u64,
    now: u64,
    strict: bool,
    self_priority: bool,
    frame_buf: Vec<Option<Value>>,
    /// Recycled candidate buffer for filtered selects (see
    /// [`ExecCtx::scratch`]).
    scratch_buf: Vec<InstId>,
    /// Per-shard recycled signal payload buffers (see
    /// [`PayloadPool`]); shard-local, so pooling never couples shards.
    payloads: PayloadPool,
    /// Per-shard telemetry, forked from the coordinator's recorder
    /// ([`Recorder::fork_shard`]) and absorbed back in shard-id order at
    /// the end of the run so merged snapshots never depend on `--jobs`.
    obs: Option<Recorder>,
    /// Epoch ordinal, set by the coordinator before each parallel
    /// section (for span names; 1-based).
    epoch: u64,
    /// Wall-clock nanoseconds this shard spent busy in the last epoch —
    /// the coordinator subtracts it from the epoch wall time to estimate
    /// barrier wait. Only measured while a recorder is attached.
    epoch_busy_ns: u64,
}

impl ShardState {
    fn owns(&self, inst: InstId) -> bool {
        inst.index() % self.nshards == self.id
    }

    fn next_seq(&mut self) -> u64 {
        self.local_seq += 1;
        self.local_seq * self.nshards as u64 + self.id as u64
    }

    fn enqueue(&mut self, to: InstId, env: Envelope) {
        let is_self = self.self_priority && env.from == Some(to);
        let q = &mut self.queues[to.index()];
        if is_self {
            q.self_q.push_back(env);
        } else {
            q.main_q.push_back(env);
        }
        if !self.in_ready[to.index()] {
            self.in_ready[to.index()] = true;
            let at = self.ready.partition_point(|&r| r < to);
            self.ready.insert(at, to);
        }
        if let Some(r) = self.obs.as_mut() {
            r.gauge_max(Gauge::ReadySetMax, self.ready.len() as u64);
        }
    }

    fn pop_envelope(&mut self, inst: InstId) -> Envelope {
        let q = &mut self.queues[inst.index()];
        if !q.self_q.is_empty() {
            q.self_q.pop_front().expect("checked nonempty")
        } else {
            q.main_q.pop_front().expect("ready instance has a signal")
        }
    }

    /// Runs this shard's run-to-completion steps until no local instance
    /// is ready. Called between barriers, possibly on a worker thread.
    ///
    /// Bounded by `step_budget` (the global budget remaining when the
    /// epoch started): each shard checks against the full remaining
    /// budget independently, so whether a shard errors is a pure
    /// function of its own inputs — deterministic across worker counts —
    /// and a shard-local livelock fails like the sequential engine does
    /// instead of hanging the run.
    fn run_epoch(
        &mut self,
        domain: &Domain,
        program: &CompiledProgram,
        table: &DispatchTable,
        spans: Option<&SpanNames>,
    ) -> Result<()> {
        let timed = self.obs.is_some().then(std::time::Instant::now);
        if let Some(r) = self.obs.as_mut() {
            if r.spans_enabled() {
                let track = r.track;
                r.span_begin(track, "shard", &format!("epoch {}", self.epoch));
            }
        }
        let out = self.run_epoch_inner(domain, program, table, spans);
        if let Some(r) = self.obs.as_mut() {
            if r.spans_enabled() {
                let track = r.track;
                r.span_end(track);
            }
        }
        if let Some(t0) = timed {
            self.epoch_busy_ns = t0.elapsed().as_nanos() as u64;
        }
        out
    }

    fn run_epoch_inner(
        &mut self,
        domain: &Domain,
        program: &CompiledProgram,
        table: &DispatchTable,
        spans: Option<&SpanNames>,
    ) -> Result<()> {
        while !self.ready.is_empty() {
            if self.dispatches >= self.step_budget {
                if let Some(r) = self.obs.as_mut() {
                    r.count(Counter::BudgetExhausted, 1);
                }
                return Err(CoreError::runtime(format!(
                    "exceeded max_steps ({}) — livelock?",
                    self.max_steps
                )));
            }
            let pick = self.ready[self.rng.below(self.ready.len())];
            // Same-instance batch (superloop): nothing is delivered
            // mid-epoch and shards never delete, so while `pick` stays
            // the only ready instance the next draw must re-select it —
            // drain its queues without re-entering ready-set
            // bookkeeping, consuming one PRNG draw per signal to keep
            // the stream identical.
            loop {
                let env = self.pop_envelope(pick);
                let drained = self.queues[pick.index()].is_empty();
                if drained {
                    self.in_ready[pick.index()] = false;
                    let at = self.ready.partition_point(|&r| r < pick);
                    debug_assert_eq!(self.ready.get(at), Some(&pick));
                    self.ready.remove(at);
                }
                self.dispatch(domain, program, table, spans, pick, env)?;
                self.dispatches += 1;
                if drained
                    || self.ready.len() != 1
                    || self.ready[0] != pick
                    || self.dispatches >= self.step_budget
                {
                    break;
                }
                self.rng.below(1); // the draw a re-pick would consume
            }
        }
        Ok(())
    }

    fn dispatch(
        &mut self,
        domain: &Domain,
        program: &CompiledProgram,
        table: &DispatchTable,
        spans: Option<&SpanNames>,
        inst: InstId,
        env: Envelope,
    ) -> Result<()> {
        let (class, from_state) = self.store.class_state(inst)?;
        let Some(cs) = table.class(class) else {
            return Err(CoreError::runtime(format!(
                "signal sent to passive class {}",
                domain.class(class).name
            )));
        };
        let mut rtc_span = false;
        if let Some(r) = self.obs.as_mut() {
            r.count(Counter::SignalsDispatched, 1);
            if r.spans_enabled() {
                rtc_span = true;
                let track = r.track;
                match spans {
                    Some(sn) => r.span_begin(track, "rtc", sn.rtc(class, env.event)),
                    None => {
                        let c = domain.class(class);
                        let name = format!("{}.{}", c.name, c.events[env.event.index()].name);
                        r.span_begin(track, "rtc", &name);
                    }
                }
            }
        }
        let out = match cs.slot(from_state, env.event) {
            Slot::Run { to, exec } => {
                let to_state = *to;
                self.store.set_state(inst, to_state)?;
                self.trace.push_dispatch(
                    self.now, inst, env.from, env.event, env.seq, from_state, to_state,
                );
                let mut action_span = false;
                if let Some(r) = self.obs.as_mut() {
                    r.count(Counter::TransitionsFired, 1);
                    if r.spans_enabled() {
                        action_span = true;
                        let track = r.track;
                        match spans {
                            Some(sn) => r.span_begin(track, "action", sn.action(class, to_state)),
                            None => {
                                let c = domain.class(class);
                                let machine = c.state_machine.as_ref().expect("active class");
                                let name =
                                    format!("action {}.{}", c.name, machine.state(to_state).name);
                                r.span_begin(track, "action", &name);
                            }
                        }
                    }
                }
                let run = match exec {
                    Exec::Nop { vm } => {
                        // Provably effect-free body: no frame, no ctx, no
                        // VM entry. Counters must match a real execution.
                        if *vm {
                            if let Some(r) = self.obs.as_mut() {
                                r.count(Counter::BcActions, 1);
                            }
                        }
                        Ok(interp::Outcome::Completed)
                    }
                    Exec::Vm(bca) => {
                        if let Some(r) = self.obs.as_mut() {
                            r.count(Counter::BcActions, 1);
                        }
                        // Recycle one frame allocation across dispatches.
                        let mut frame = std::mem::take(&mut self.frame_buf);
                        frame.clear();
                        frame.resize(bca.n_regs, None);
                        let mut ctx = ExecCtx::with_frame(inst, class, frame);
                        ctx.scratch = std::mem::take(&mut self.scratch_buf);
                        ctx.bind_args(env.args.iter().cloned());
                        let mut host = ShardHost {
                            shard: self,
                            domain,
                        };
                        let r = bc::run_bc(&mut host, &mut ctx, bca);
                        self.frame_buf = std::mem::take(&mut ctx.frame);
                        self.scratch_buf = std::mem::take(&mut ctx.scratch);
                        r
                    }
                    Exec::Frames { fallback } => {
                        if *fallback {
                            if let Some(r) = self.obs.as_mut() {
                                r.count(Counter::BcFallbacks, 1);
                            }
                        }
                        // Only the frame interpreter needs the compiled
                        // action; a `Vm` slot implies the frame compile
                        // it lowered from succeeded.
                        let action =
                            program.action(class, to_state, env.event).ok_or_else(|| {
                                CoreError::runtime(
                                    "internal: dispatched pair has no compiled action",
                                )
                            })??;
                        let mut frame = std::mem::take(&mut self.frame_buf);
                        frame.clear();
                        frame.resize(action.frame_len(), None);
                        let mut ctx = ExecCtx::with_frame(inst, class, frame);
                        ctx.scratch = std::mem::take(&mut self.scratch_buf);
                        ctx.bind_args(env.args.iter().cloned());
                        let mut host = ShardHost {
                            shard: self,
                            domain,
                        };
                        let r = interp::run_code(&mut host, &mut ctx, action);
                        self.frame_buf = std::mem::take(&mut ctx.frame);
                        self.scratch_buf = std::mem::take(&mut ctx.scratch);
                        r
                    }
                };
                if action_span {
                    if let Some(r) = self.obs.as_mut() {
                        let track = r.track;
                        r.span_end(track);
                    }
                }
                run?;
                Ok(())
            }
            Slot::Ignore => {
                if let Some(r) = self.obs.as_mut() {
                    r.count(Counter::SignalsIgnored, 1);
                }
                self.trace.push_ignored(self.now, inst, env.event);
                Ok(())
            }
            Slot::CantHappen => {
                if self.strict {
                    let c = domain.class(class);
                    let machine = c.state_machine.as_ref().expect("active class");
                    Err(CoreError::CantHappen {
                        class: c.name.clone(),
                        state: machine.state(from_state).name.clone(),
                        event: c.events[env.event.index()].name.clone(),
                    })
                } else {
                    self.dropped += 1;
                    if let Some(r) = self.obs.as_mut() {
                        r.count(Counter::SignalsDropped, 1);
                    }
                    self.trace.push_dropped(self.now, inst, env.event);
                    Ok(())
                }
            }
        };
        if rtc_span {
            if let Some(r) = self.obs.as_mut() {
                let track = r.track;
                r.span_end(track);
            }
        }
        // The envelope is fully consumed: offer its payload buffer to
        // this shard's next computed send.
        self.payloads.recycle(env.args);
        out
    }
}

/// The [`ActionHost`] a sharded dispatch executes against: local sends
/// are delivered immediately, cross-shard sends and timers are buffered
/// for the barrier, creation allocates shard-congruent ids, and the
/// accesses the effect analysis blocks (structure mutation, non-owned
/// writes) are rejected (unreachable after [`shard_safety`], but
/// enforced anyway).
struct ShardHost<'a, 'd> {
    shard: &'a mut ShardState,
    domain: &'d Domain,
}

impl ShardHost<'_, '_> {
    fn unsupported(what: &str) -> CoreError {
        CoreError::runtime(format!(
            "{what} is not shard-safe; run with --jobs 1 (sequential)"
        ))
    }
}

impl ActionHost for ShardHost<'_, '_> {
    fn domain(&self) -> &Domain {
        self.domain
    }

    fn create(&mut self, class: ClassId) -> Result<InstId> {
        // Creation reaches a sharded dispatch only when the effect
        // analysis proved the class creation-confined (nothing selects
        // over it), so the instance stays private to this shard. Ids are
        // allocated congruent to the shard id so `owns()` holds for
        // every subsequent access and send; other shards' replicas never
        // learn the id, and a leaked id would hit a tombstone there —
        // a deterministic error, not a race.
        let s = &mut self.shard;
        let len = s.store.id_space();
        let rem = len % s.nshards;
        let want = if rem <= s.id {
            len + (s.id - rem)
        } else {
            len + s.nshards - rem + s.id
        };
        let inst = s
            .store
            .create_with_id(self.domain, class, InstId::new(want as u32));
        let space = s.store.id_space();
        s.queues.resize_with(space, InstQueues::default);
        s.in_ready.resize(space, false);
        if let Some(r) = s.obs.as_mut() {
            r.count(Counter::InstancesCreated, 1);
            r.gauge_max(Gauge::LiveInstancesMax, s.store.live_count() as u64);
        }
        s.trace.push_create(s.now, inst, class);
        Ok(inst)
    }

    fn delete(&mut self, _inst: InstId) -> Result<()> {
        Err(Self::unsupported("instance deletion"))
    }

    fn class_of(&self, inst: InstId) -> Result<ClassId> {
        self.shard.store.class_of(inst)
    }

    fn attr_read(&self, inst: InstId, attr: AttrId) -> Result<Value> {
        self.shard.store.attr_read(inst, attr)
    }

    fn attr_write_typed(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()> {
        // Same ownership gate as `attr_write` — the bytecode VM writes
        // through this pre-typechecked entry point, and an admitted
        // model only ever writes shard-owned instances (self, created
        // here, or reached via a colocated link).
        if !self.shard.owns(inst) {
            return Err(Self::unsupported("writing another shard's attribute"));
        }
        self.shard.store.attr_write_typed(inst, attr, value)
    }

    fn take_payload(&mut self, len: usize) -> Option<Arc<[Value]>> {
        self.shard.payloads.take(len)
    }

    fn attr_write(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()> {
        if !self.shard.owns(inst) {
            return Err(Self::unsupported("writing another shard's attribute"));
        }
        self.shard.store.attr_write(self.domain, inst, attr, value)
    }

    fn instances_of(&self, class: ClassId) -> Vec<InstId> {
        self.shard.store.instances_of(class)
    }

    fn related(&self, inst: InstId, assoc: AssocId) -> Result<Vec<InstId>> {
        self.shard.store.related(inst, assoc)
    }

    fn each_instance(&self, class: ClassId, f: &mut dyn FnMut(InstId)) {
        self.shard.store.instances_iter(class).for_each(f);
    }

    fn first_instance_of(&self, class: ClassId) -> Option<InstId> {
        self.shard.store.first_instance_of(class)
    }

    fn related_each(&self, inst: InstId, assoc: AssocId, f: &mut dyn FnMut(InstId)) -> Result<()> {
        self.shard.store.related_iter(inst, assoc)?.for_each(f);
        Ok(())
    }

    fn relate(&mut self, _a: InstId, _b: InstId, _assoc: AssocId) -> Result<()> {
        Err(Self::unsupported("relating instances"))
    }

    fn unrelate(&mut self, _a: InstId, _b: InstId, _assoc: AssocId) -> Result<()> {
        Err(Self::unsupported("unrelating instances"))
    }

    fn send(&mut self, from: InstId, to: InstId, event: EventId, args: Vec<Value>) -> Result<()> {
        self.send_arc(from, to, event, Arc::from(args))
    }

    fn send_arc(
        &mut self,
        from: InstId,
        to: InstId,
        event: EventId,
        args: Arc<[Value]>,
    ) -> Result<()> {
        self.shard.store.class_of(to)?; // liveness (population is static)
        let seq = self.shard.next_seq();
        let env = Envelope {
            from: Some(from),
            event,
            args,
            seq,
        };
        let local = self.shard.owns(to);
        if let Some(r) = self.shard.obs.as_mut() {
            r.count(Counter::SignalsSent, 1);
            if from == to {
                r.count(Counter::SelfSignals, 1);
            }
            r.count(
                if local {
                    Counter::LocalShardSignals
                } else {
                    Counter::CrossShardSignals
                },
                1,
            );
            let shard_id = self.shard.id as u32;
            let lane = r.metrics.lane_mut(shard_id);
            lane.sent += 1;
            if !local {
                lane.cross_shard += 1;
            }
        }
        if local {
            self.shard.enqueue(to, env);
        } else {
            self.shard.outbox.push(OutboxEntry { to, env });
        }
        Ok(())
    }

    fn send_actor(
        &mut self,
        from: InstId,
        actor: ActorId,
        event: EventId,
        args: Vec<Value>,
    ) -> Result<()> {
        self.send_actor_arc(from, actor, event, Arc::from(args))
    }

    fn send_actor_arc(
        &mut self,
        _from: InstId,
        actor: ActorId,
        event: EventId,
        args: Arc<[Value]>,
    ) -> Result<()> {
        if let Some(r) = self.shard.obs.as_mut() {
            r.count(Counter::ActorSignals, 1);
        }
        self.shard
            .trace
            .push_actor_signal(self.shard.now, actor, event, args);
        Ok(())
    }

    fn send_delayed(
        &mut self,
        from: InstId,
        to: InstId,
        event: EventId,
        args: Vec<Value>,
        delay: i64,
    ) -> Result<()> {
        self.shard.store.class_of(to)?;
        let seq = self.shard.next_seq();
        let deadline = self.shard.now + delay as u64;
        self.shard.new_timers.push(PendingTimer {
            deadline,
            seq,
            from,
            to,
            event,
            args: Arc::from(args),
        });
        if let Some(r) = self.shard.obs.as_mut() {
            r.count(Counter::TimersSet, 1);
        }
        Ok(())
    }

    fn cancel_delayed(&mut self, inst: InstId, event: EventId) -> Result<()> {
        // Timers armed this epoch are still local; older ones live in
        // the coordinator and are removed at the barrier.
        let before = self.shard.new_timers.len();
        self.shard
            .new_timers
            .retain(|t| !(t.to == inst && t.event == event));
        let removed = (before - self.shard.new_timers.len()) as u64;
        if removed > 0 {
            if let Some(r) = self.shard.obs.as_mut() {
                r.count(Counter::TimersCancelled, removed);
            }
        }
        self.shard.cancels.push((inst, event));
        Ok(())
    }

    fn bridge_call(&mut self, actor: ActorId, func: &str, args: Vec<Value>) -> Result<Value> {
        let a = self.domain.actor(actor);
        let decl = a
            .func(func)
            .ok_or_else(|| CoreError::unresolved("bridge function", func))?;
        let ret_ty = decl.ret;
        if let Some(r) = self.shard.obs.as_mut() {
            r.count(Counter::BridgeCalls, 1);
        }
        self.shard
            .trace
            .push_bridge_call(self.shard.now, actor, func, Arc::from(args.as_slice()));
        Ok(match ret_ty {
            Some(t) => Value::default_for(t),
            None => Value::Bool(false),
        })
    }
}

/// The sharded counterpart of [`Simulation`]: same setup API (`create`,
/// `relate`, `inject`), then [`ShardedSimulation::run_to_quiescence`]
/// executes epochs with a caller-supplied worker count.
///
/// With `policy.shards <= 1` the run delegates to the sequential
/// [`Simulation`], reproducing historical traces exactly. With more
/// shards the trace is a pure function of `(seed, shards)` — see the
/// module docs for the guarantee and [`shard_safety`] for the model
/// classes this engine accepts.
pub struct ShardedSimulation<'d> {
    domain: &'d Domain,
    program: CompiledProgram,
    /// Register bytecode lowered from `program`, once at construction.
    bc: BcProgram,
    /// Action executor selection; [`Engine::Bc`] by default.
    engine: Engine,
    policy: SchedPolicy,
    store: ObjectStore,
    /// Setup-time relate calls, in call order (for sequential replay).
    setup_links: Vec<(InstId, InstId, AssocId)>,
    stimuli: Vec<PendingStimulus>,
    setup_seq: u64,
    max_steps: u64,
    trace: Trace,
    dropped: u64,
    now: u64,
    /// Attached telemetry recorder; `None` (the default) costs one
    /// predictable branch per instrumented site. Shard workers record
    /// into per-shard forks absorbed back in shard-id order, so the
    /// merged snapshot is a pure function of `(seed, shards)`.
    obs: Option<Box<Recorder>>,
    /// Why the last run delegated to the sequential engine at runtime
    /// despite static admission (a colocation precondition failed for
    /// the actual setup links and shard count); `None` otherwise.
    runtime_fallback: Option<String>,
    /// The paused epoch engine, `Some` only between a `run_epochs` pause
    /// and its resumption (always at an epoch barrier).
    engine_state: Option<EngineState>,
    /// Dense `(state × event) → slot` dispatch tables, pre-resolved for
    /// the selected engine (rebuilt on [`ShardedSimulation::set_engine`]).
    table: DispatchTable,
    /// Pre-interned span names, built on first recorder attach with
    /// spans enabled.
    spans: Option<SpanNames>,
}

impl std::fmt::Debug for ShardedSimulation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulation")
            .field("domain", &self.domain.name)
            .field("policy", &self.policy)
            .field("live", &self.store.live_count())
            .finish_non_exhaustive()
    }
}

impl<'d> ShardedSimulation<'d> {
    /// Creates a sharded simulation with an explicit policy.
    pub fn with_policy(domain: &'d Domain, policy: SchedPolicy) -> ShardedSimulation<'d> {
        let program = CompiledProgram::new(domain);
        let bc = BcProgram::new(domain, &program);
        let table = DispatchTable::new(domain, &program, &bc, Engine::default());
        ShardedSimulation {
            domain,
            program,
            bc,
            engine: Engine::default(),
            table,
            spans: None,
            policy: policy.with_shards(policy.shards),
            store: ObjectStore::new(domain.associations.len()),
            setup_links: Vec::new(),
            stimuli: Vec::new(),
            setup_seq: 0,
            max_steps: 10_000_000,
            trace: Trace::new(),
            dropped: 0,
            now: 0,
            obs: None,
            runtime_fallback: None,
            engine_state: None,
        }
    }

    /// Attaches a telemetry recorder. Setup already performed still
    /// counts: the run snapshots population/stimulus totals at start.
    pub fn attach_recorder(&mut self, rec: Recorder) {
        if rec.spans_enabled() && self.spans.is_none() {
            self.spans = Some(SpanNames::new(self.domain));
        }
        self.obs = Some(Box::new(rec));
    }

    /// Detaches and returns the recorder (with everything absorbed),
    /// if one was attached.
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.obs.take().map(|b| *b)
    }

    /// The domain being executed.
    pub fn domain(&self) -> &'d Domain {
        self.domain
    }

    /// The execution trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current simulation time (ticks; epochs advance by their critical
    /// path in sharded runs).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of events dropped in non-strict mode.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Why the last [`ShardedSimulation::run_to_quiescence`] delegated
    /// to the sequential engine at runtime despite static admission:
    /// the effect analysis admitted the model on the precondition that
    /// some association's links be shard-colocated, and the actual setup
    /// links violated it at this shard count. `None` when the run
    /// executed sharded (or never needed the precondition).
    pub fn runtime_fallback(&self) -> Option<&str> {
        self.runtime_fallback.as_deref()
    }

    /// Caps the total number of dispatch steps per run.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps = max;
    }

    /// Selects the action executor (default [`Engine::Bc`]); `shards == 1`
    /// delegation passes the choice to the inner sequential engine.
    pub fn set_engine(&mut self, engine: Engine) {
        if engine != self.engine {
            self.engine = engine;
            self.table = DispatchTable::new(self.domain, &self.program, &self.bc, engine);
        }
    }

    /// Selects how much the trace ring records (default
    /// [`TraceMode::Full`]). [`TraceMode::Off`] must never be used in
    /// differential or golden comparisons.
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace.set_mode(mode);
        // A restored mid-run engine already has live shard replicas.
        if let Some(st) = self.engine_state.as_mut() {
            for s in st.shards.iter_mut() {
                s.trace.set_mode(mode);
            }
        }
    }

    /// Number of `(class, state, event)` dispatch slots that resolved to
    /// the frame-interpreter fallback when the table was built for the
    /// bytecode engine (0 under [`Engine::Frames`], where every slot is
    /// a deliberate frames slot, not a fallback).
    pub fn bc_fallback_slots(&self) -> usize {
        self.table.fallback_slots()
    }

    /// The currently selected action executor.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Actions the bytecode lowering could not encode; these dispatch via
    /// the frame interpreter instead (diagnostic `X0016`).
    pub fn bc_fallbacks(&self) -> &[BcFallback] {
        &self.bc.fallbacks
    }

    /// Creates an instance during setup (before the run).
    ///
    /// # Errors
    ///
    /// Fails if the class is unknown.
    pub fn create(&mut self, class: &str) -> Result<InstId> {
        let id = self.domain.class_id(class)?;
        let inst = self.store.create(self.domain, id);
        self.trace.push_create(0, inst, id);
        Ok(inst)
    }

    /// Relates two instances during setup.
    ///
    /// # Errors
    ///
    /// Propagates store errors (multiplicity, class mismatch, dangling).
    pub fn relate(&mut self, a: InstId, b: InstId, assoc: &str) -> Result<()> {
        let id = self.domain.assoc_id(assoc)?;
        self.store.relate(self.domain, a, b, id)?;
        self.setup_links.push((a, b, id));
        Ok(())
    }

    /// Schedules an external stimulus during setup.
    ///
    /// # Errors
    ///
    /// Fails on unknown events, dead instances or arity mismatches.
    pub fn inject(&mut self, time: u64, inst: InstId, event: &str, args: Vec<Value>) -> Result<()> {
        let class = self.store.class_of(inst)?;
        let c = self.domain.class(class);
        let event_id = c
            .event_id(event)
            .ok_or_else(|| CoreError::unresolved("event", format!("{}.{event}", c.name)))?;
        if c.events[event_id.index()].params.len() != args.len() {
            return Err(CoreError::runtime(format!(
                "event `{event}` takes {} argument(s), got {}",
                c.events[event_id.index()].params.len(),
                args.len()
            )));
        }
        self.setup_seq += 1;
        self.stimuli.push(PendingStimulus {
            time,
            seq: self.setup_seq,
            to: inst,
            event: event_id,
            args: Arc::from(args),
        });
        Ok(())
    }

    /// Runs epochs until quiescence, distributing shards over `jobs`
    /// worker threads. Returns the number of dispatch steps taken.
    ///
    /// The result — including the full trace — does not depend on
    /// `jobs`; it depends only on `(policy.seed, policy.shards)`.
    ///
    /// # Errors
    ///
    /// Fails if the model is not shard-safe ([`shard_safety`]), on action
    /// runtime errors (the lowest-id failing shard's error is reported,
    /// deterministically), and on `max_steps` exhaustion.
    pub fn run_to_quiescence(&mut self, jobs: usize) -> Result<u64> {
        if self.engine_state.is_none() && self.policy.shards <= 1 {
            self.runtime_fallback = None;
            return self.run_sequential();
        }
        let steps = self.run_epochs(jobs, u64::MAX)?;
        Ok(steps.expect("an unbounded epoch budget reaches quiescence"))
    }

    /// Runs at most `max_epochs` epochs (clamped to ≥ 1), pausing at the
    /// epoch barrier — the one point where every shard's epoch-local
    /// buffers are drained, so the engine can be captured exactly by
    /// [`ShardedSimulation::snapshot`]. Returns `Some(total_steps)` once
    /// the run reaches quiescence, `None` when it paused with work
    /// remaining; calling again resumes, and the eventual trace is
    /// byte-identical to an uninterrupted
    /// [`ShardedSimulation::run_to_quiescence`] no matter how often the
    /// run pauses. Time jumps to the next timer/stimulus deadline do not
    /// count as epochs — only barriers where shards actually dispatched.
    ///
    /// Two delegation paths run the sequential engine to completion and
    /// return `Some` regardless of `max_epochs`: `policy.shards <= 1`,
    /// and the colocation-precondition fallback
    /// ([`ShardedSimulation::runtime_fallback`]).
    ///
    /// # Errors
    ///
    /// As [`ShardedSimulation::run_to_quiescence`]. An error abandons any
    /// paused engine — a failing shard stopped mid-dispatch, which is not
    /// a barrier — so the next call starts a fresh run.
    pub fn run_epochs(&mut self, jobs: usize, max_epochs: u64) -> Result<Option<u64>> {
        let max_epochs = max_epochs.max(1);
        if self.engine_state.is_none() {
            self.runtime_fallback = None;
            if self.policy.shards <= 1 {
                return self.run_sequential().map(Some);
            }
            shard_safety(self.domain)?;
            let nshards = self.policy.shards;

            // Runtime leg of the colocation admission rule: the static
            // pass admitted access through these associations on the
            // promise that every link keeps both endpoints on one shard.
            // Check the actual setup links at the actual shard count; on
            // violation, delegate to the sequential engine (the trace
            // stays a pure function of `(seed, shards)` — this check
            // depends on nothing else).
            let plan = xtuml_core::effects::analyze(self.domain);
            for &assoc in &plan.coloc_assocs {
                if let Some(&(a, b, _)) = self
                    .setup_links
                    .iter()
                    .find(|&&(a, b, r)| r == assoc && a.index() % nshards != b.index() % nshards)
                {
                    self.runtime_fallback = Some(format!(
                        "association `{}` links {a} and {b} across shards at shards={nshards}; \
                         colocation precondition failed, running sequentially",
                        self.domain.association(assoc).name
                    ));
                    if let Some(r) = self.obs.as_mut() {
                        r.count(Counter::ShardFallbacks, 1);
                    }
                    return self.run_sequential().map(Some);
                }
            }
            if let Some(r) = self.obs.as_mut() {
                r.count(Counter::ShardAdmitted, 1);
            }

            // Telemetry: setup totals, then the run-level span. The
            // sharded setup methods never touch the recorder, so totals
            // recorded here match what a plain `Simulation` counts at
            // its call sites.
            if let Some(r) = self.obs.as_mut() {
                let live = self.store.live_count() as u64;
                r.count(Counter::InstancesCreated, live);
                r.gauge_max(Gauge::LiveInstancesMax, live);
                r.count(Counter::StimuliInjected, self.stimuli.len() as u64);
                r.gauge_max(Gauge::StimulusHeapMax, self.stimuli.len() as u64);
                if r.spans_enabled() {
                    let track = r.track;
                    r.span_begin(track, "sim", "sharded_run");
                }
            }

            // Split the setup population into shard replicas.
            let shards: Vec<ShardState> = (0..nshards)
                .map(|id| ShardState {
                    id,
                    nshards,
                    store: self.store.clone(),
                    queues: (0..self.store_len())
                        .map(|_| InstQueues::default())
                        .collect(),
                    ready: Vec::new(),
                    in_ready: vec![false; self.store_len()],
                    // stream_seed even for shard 0: stream_seed(base, 0)
                    // != base, so a sharded run never replays the
                    // unsharded schedule by accident.
                    rng: SplitMix64::new(stream_seed(self.policy.seed, id as u64)),
                    local_seq: 0,
                    trace: Trace::with_mode(self.trace.mode()),
                    outbox: Vec::new(),
                    new_timers: Vec::new(),
                    cancels: Vec::new(),
                    dispatches: 0,
                    dropped: 0,
                    step_budget: self.max_steps,
                    max_steps: self.max_steps,
                    now: self.now,
                    strict: self.policy.strict,
                    self_priority: self.policy.self_priority,
                    frame_buf: Vec::new(),
                    scratch_buf: Vec::new(),
                    payloads: PayloadPool::new(),
                    obs: self.obs.as_ref().map(|r| r.fork_shard(id as u32)),
                    epoch: 0,
                    epoch_busy_ns: 0,
                })
                .collect();

            let mut stimuli = std::mem::take(&mut self.stimuli);
            stimuli.sort_by_key(|s| (s.time, s.seq));
            self.engine_state = Some(EngineState {
                shards,
                stimuli: stimuli.into(),
                timers: Vec::new(),
                total_steps: 0,
                epoch_no: 0,
            });
        }

        let pool = Pool::new(jobs);
        let nshards = self.policy.shards;
        // Taken out for the duration of the call: an error leaves the
        // engine abandoned (see above), success either pauses (putting
        // it back) or finishes (dropping it).
        let mut st = self.engine_state.take().expect("ensured above");
        let mut ran = 0u64;

        loop {
            // 1. Deliver due stimuli and timers into shard queues in
            // (time, kind, seq) order, stimuli before timers at the
            // same instant — setup seqs and shard-derived timer seqs
            // come from different counters, so the kind tag is what
            // keeps the order total and deterministic.
            let now = self.now;
            let mut due: Vec<DueDelivery> = Vec::new();
            while st.stimuli.front().is_some_and(|s| s.time <= now) {
                let s = st.stimuli.pop_front().expect("peeked above");
                due.push((s.time, s.seq, 0, None, s.to, s.event, s.args));
            }
            st.timers.retain(|t| {
                if t.deadline <= now {
                    due.push((
                        t.deadline,
                        t.seq,
                        1,
                        Some(t.from),
                        t.to,
                        t.event,
                        Arc::clone(&t.args),
                    ));
                    false
                } else {
                    true
                }
            });
            due.sort_by_key(|(time, seq, kind, ..)| (*time, *kind, *seq));
            if let Some(r) = self.obs.as_mut() {
                let fired = due.iter().filter(|d| d.2 == 1).count() as u64;
                if fired > 0 {
                    r.count(Counter::TimersFired, fired);
                }
            }
            for (_, seq, _, from, to, event, args) in due {
                let shard = &mut st.shards[to.index() % nshards];
                shard.enqueue(
                    to,
                    Envelope {
                        from,
                        event,
                        args,
                        seq,
                    },
                );
            }

            // 2. If nothing is ready anywhere, jump time or quiesce.
            if st.shards.iter().all(|s| s.ready.is_empty()) {
                let next = st
                    .timers
                    .iter()
                    .map(|t| t.deadline)
                    .chain(st.stimuli.front().map(|s| s.time))
                    .min();
                match next {
                    Some(t) if t > self.now => {
                        self.now = t;
                        continue;
                    }
                    Some(_) => continue,
                    None => break,
                }
            }

            // 3. Run every shard to local quiescence, in parallel. Each
            // shard carries the remaining global dispatch budget so a
            // never-quiescing local cycle errors inside the epoch.
            let remaining = self.max_steps.saturating_sub(st.total_steps);
            st.epoch_no += 1;
            for s in st.shards.iter_mut() {
                s.now = self.now;
                s.step_budget = remaining;
                s.epoch = st.epoch_no;
            }
            let domain = self.domain;
            let program = &self.program;
            let table = &self.table;
            let spans = self.spans.as_ref();
            let epoch_t0 = self.obs.is_some().then(std::time::Instant::now);
            let mut null = NullSink;
            let sink: &mut dyn Sink = match self.obs.as_mut() {
                Some(r) => r.as_mut(),
                None => &mut null,
            };
            let outcomes = pool
                .try_map_mut_obs(sink, "epoch", &mut st.shards, |_, s| {
                    s.run_epoch(domain, program, table, spans)
                })
                .map_err(|e| CoreError::runtime(e.to_string()))?;
            let epoch_wall_ns = epoch_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);

            // 4. Barrier: merge traces in shard order; report the
            // lowest-id shard's error (deterministic across jobs).
            let mut epoch_dispatches = 0u64;
            for s in st.shards.iter_mut() {
                self.trace.append(&mut s.trace);
                self.dropped += s.dropped;
                s.dropped = 0;
                epoch_dispatches = epoch_dispatches.max(s.dispatches);
                st.total_steps += s.dispatches;
                if let Some(r) = self.obs.as_mut() {
                    r.observe(HistKind::EpochDispatches, s.dispatches);
                    r.observe(HistKind::EpochOutbox, s.outbox.len() as u64);
                    let lane = r.metrics.lane_mut(s.id as u32);
                    lane.dispatches += s.dispatches;
                    if s.dispatches > 0 {
                        lane.epochs_active += 1;
                    }
                    if r.stream_epochs {
                        r.metrics.epoch_rows.push(EpochRow {
                            epoch: st.epoch_no,
                            shard: s.id as u32,
                            dispatches: s.dispatches,
                            outbox: s.outbox.len() as u64,
                        });
                    }
                    // Barrier wait: epoch wall time minus this shard's
                    // busy time (wall-clock, segregated from metrics).
                    r.timing.barrier_wait_ns += epoch_wall_ns.saturating_sub(s.epoch_busy_ns);
                    s.epoch_busy_ns = 0;
                }
                s.dispatches = 0;
            }
            if let Some(r) = self.obs.as_mut() {
                r.count(Counter::Epochs, 1);
                r.count(Counter::EpochMaxDispatches, epoch_dispatches);
                r.timing.epochs_timed += 1;
            }
            outcomes.into_iter().collect::<Result<Vec<()>>>()?;
            if st.total_steps > self.max_steps {
                if let Some(r) = self.obs.as_mut() {
                    r.count(Counter::BudgetExhausted, 1);
                }
                return Err(CoreError::runtime(format!(
                    "exceeded max_steps ({}) — livelock?",
                    self.max_steps
                )));
            }

            // 5. Route outboxes: source shards in id order, each
            // source's signals in send order — per-pair FIFO holds
            // because a sender lives in exactly one shard.
            let routed: Vec<OutboxEntry> = st
                .shards
                .iter_mut()
                .flat_map(|s| s.outbox.drain(..))
                .collect();
            if let Some(r) = self.obs.as_mut() {
                r.gauge_max(Gauge::OutboxBurstMax, routed.len() as u64);
            }
            for OutboxEntry { to, env } in routed {
                st.shards[to.index() % nshards].enqueue(to, env);
            }

            // 6. Collect every shard's new timers first, then apply
            // every shard's cancellations. Two passes, not one:
            // `send_delayed` can arm a timer on another shard's
            // instance, so a cancel from a lower-id shard must also see
            // same-epoch timers armed by higher-id shards — interleaving
            // the passes would make the outcome depend on shard ids.
            for s in st.shards.iter_mut() {
                st.timers.append(&mut s.new_timers);
            }
            let mut cancelled = 0u64;
            for s in st.shards.iter_mut() {
                for (inst, event) in s.cancels.drain(..) {
                    let before = st.timers.len();
                    st.timers.retain(|t| !(t.to == inst && t.event == event));
                    cancelled += (before - st.timers.len()) as u64;
                }
            }
            st.timers.sort_by_key(|t| (t.deadline, t.seq));
            if let Some(r) = self.obs.as_mut() {
                if cancelled > 0 {
                    r.count(Counter::TimersCancelled, cancelled);
                }
                r.gauge_max(Gauge::TimerListMax, st.timers.len() as u64);
            }

            // 7. Advance time by the epoch's critical path: the busiest
            // shard's dispatch count (all shards ran concurrently).
            self.now += epoch_dispatches.max(1);

            // Pause at the barrier once the epoch budget is spent. Every
            // shard's epoch-local buffers were drained above, so this is
            // exactly a snapshot point; the next call picks up at step 1.
            ran += 1;
            if ran >= max_epochs {
                self.engine_state = Some(st);
                return Ok(None);
            }
        }
        // Fold per-shard recorders back in shard-id order — the merged
        // snapshot must not depend on worker scheduling — then close the
        // run-level span.
        if let Some(r) = self.obs.as_mut() {
            for s in st.shards.iter_mut() {
                if let Some(child) = s.obs.take() {
                    r.absorb(child);
                }
            }
            if r.spans_enabled() {
                let track = r.track;
                r.span_end(track);
            }
        }
        Ok(Some(st.total_steps))
    }

    /// The `shards == 1` path: replay setup into a classic sequential
    /// [`Simulation`] so single-shard runs reproduce historical traces
    /// byte-for-byte.
    fn run_sequential(&mut self) -> Result<u64> {
        let mut sim = Simulation::with_policy(self.domain, self.policy);
        sim.set_max_steps(self.max_steps);
        sim.set_engine(self.engine);
        // Hand the recorder to the inner simulation *before* replaying
        // setup: the replayed creates/injects then count exactly where a
        // plain instrumented `Simulation` counts them, so the shards==1
        // snapshot is byte-identical to the sequential engine's.
        if let Some(r) = self.obs.take() {
            sim.attach_recorder(*r);
        }
        sim.set_trace_mode(self.trace.mode());
        // Recreate the population in id order from the store (ids are
        // dense and setup never deletes); the store — not the trace — is
        // the source of truth so this works under `TraceMode::Off` too.
        for i in 0..self.store.id_space() {
            let id = InstId::new(i as u32);
            let class = self.store.class_of(id)?;
            let inst = ActionHost::create(&mut sim, class)?;
            debug_assert_eq!(inst, id);
        }
        for &(a, b, assoc) in &self.setup_links {
            ActionHost::relate(&mut sim, a, b, assoc)?;
        }
        let mut stimuli = std::mem::take(&mut self.stimuli);
        stimuli.sort_by_key(|s| (s.time, s.seq));
        for s in &stimuli {
            let class = self.store.class_of(s.to)?;
            let name = &self.domain.class(class).events[s.event.index()].name;
            sim.inject(s.time, s.to, name, s.args.to_vec())?;
        }
        let run = sim.run_to_quiescence();
        if let Some(r) = sim.take_recorder() {
            self.obs = Some(Box::new(r));
        }
        let steps = run?;
        self.dropped += sim.dropped_events();
        self.now = sim.now();
        self.trace = sim.trace().clone();
        Ok(steps)
    }

    fn store_len(&self) -> usize {
        // Instance ids are dense; live_count equals the id space here
        // because setup never deletes.
        self.store.live_count()
    }

    // -- snapshot / restore -------------------------------------------------

    /// Serializes the full engine state (DESIGN §15, kind 2).
    ///
    /// Valid before a run, after quiescence, and at any epoch barrier —
    /// i.e. whenever the caller can observe the simulation at all, since
    /// [`ShardedSimulation::run_epochs`] only ever pauses at barriers.
    /// Captures the setup population and pending stimuli, the trace so
    /// far, and (mid-run) every shard replica: store, queues, PRNG
    /// stream state, send counter, and deterministic metrics.
    /// [`ShardedSimulation::restore`] continues byte-identically to an
    /// uninterrupted run. Wall-clock telemetry (spans, `Timing`) and
    /// allocation caches are not captured, by design.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = snapshot::Writer::with_header(snapshot::KIND_SHARDED, self.domain);
        w.u64(self.policy.seed);
        w.bool(self.policy.self_priority);
        w.bool(self.policy.pair_order);
        w.bool(self.policy.strict);
        w.u32(self.policy.shards as u32);
        w.u8(match self.engine {
            Engine::Frames => 0,
            Engine::Bc => 1,
        });
        w.u64(self.max_steps);
        w.u64(self.now);
        w.u64(self.dropped);
        w.u64(self.setup_seq);
        self.store.snap_write(&mut w);
        w.len(self.setup_links.len());
        for &(a, b, assoc) in &self.setup_links {
            w.u32(u32::from(a));
            w.u32(u32::from(b));
            w.u32(u32::from(assoc));
        }
        w.len(self.stimuli.len());
        for s in &self.stimuli {
            snap_write_stim(&mut w, s);
        }
        w.len(self.trace.len());
        for e in self.trace.iter() {
            snapshot::write_trace_event(&mut w, &e);
        }
        match self.runtime_fallback.as_deref() {
            Some(why) => {
                w.bool(true);
                w.str(why);
            }
            None => w.bool(false),
        }
        match self.obs.as_deref() {
            Some(rec) => {
                w.bool(true);
                w.u32(rec.track);
                w.bool(rec.stream_epochs);
                snapshot::write_metrics(&mut w, &rec.metrics.to_raw());
            }
            None => w.bool(false),
        }
        match self.engine_state.as_ref() {
            Some(st) => {
                w.bool(true);
                w.u64(st.total_steps);
                w.u64(st.epoch_no);
                w.len(st.stimuli.len());
                for s in &st.stimuli {
                    snap_write_stim(&mut w, s);
                }
                w.len(st.timers.len());
                for t in &st.timers {
                    w.u64(t.deadline);
                    w.u64(t.seq);
                    w.u32(u32::from(t.from));
                    w.u32(u32::from(t.to));
                    w.u32(u32::from(t.event));
                    snapshot::write_values(&mut w, &t.args);
                }
                w.len(st.shards.len());
                for s in &st.shards {
                    // Barrier invariant: epoch-local buffers are drained.
                    debug_assert!(s.trace.is_empty() && s.outbox.is_empty());
                    debug_assert!(s.new_timers.is_empty() && s.cancels.is_empty());
                    s.store.snap_write(&mut w);
                    w.len(s.queues.len());
                    for q in &s.queues {
                        for half in [&q.self_q, &q.main_q] {
                            w.len(half.len());
                            for e in half {
                                snap_write_env(&mut w, e);
                            }
                        }
                    }
                    w.u64(s.rng.state());
                    w.u64(s.local_seq);
                    match s.obs.as_ref() {
                        Some(rec) => {
                            w.bool(true);
                            snapshot::write_metrics(&mut w, &rec.metrics.to_raw());
                        }
                        None => w.bool(false),
                    }
                }
            }
            None => w.bool(false),
        }
        w.finish()
    }

    /// Rebuilds a sharded simulation from a
    /// [`ShardedSimulation::snapshot`] against the same domain.
    ///
    /// A mid-run snapshot resumes at the captured epoch barrier and the
    /// completed run's trace is byte-identical to an uninterrupted one.
    /// An attached recorder comes back with its deterministic metrics
    /// only (no span buffer, zeroed wall-clock timing).
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapError`] — never panics — on truncated
    /// or corrupt input, version or kind mismatch, or a snapshot taken
    /// against a different domain.
    pub fn restore(domain: &'d Domain, bytes: &[u8]) -> SnapResult<ShardedSimulation<'d>> {
        let (mut r, kind) = snapshot::Reader::open(bytes, domain)?;
        if kind != snapshot::KIND_SHARDED {
            return Err(SnapError::Corrupt(format!(
                "expected a sharded-engine snapshot, got kind {kind}"
            )));
        }
        let policy = SchedPolicy {
            seed: r.u64()?,
            self_priority: r.bool()?,
            pair_order: r.bool()?,
            strict: r.bool()?,
            shards: r.u32()? as usize,
        };
        let engine = match r.u8()? {
            0 => Engine::Frames,
            1 => Engine::Bc,
            t => return Err(SnapError::Corrupt(format!("bad engine tag {t}"))),
        };
        let mut sim = ShardedSimulation::with_policy(domain, policy);
        sim.set_engine(engine); // rebuilds the dispatch table if != default
        sim.max_steps = r.u64()?;
        sim.now = r.u64()?;
        sim.dropped = r.u64()?;
        sim.setup_seq = r.u64()?;
        sim.store = ObjectStore::snap_read(&mut r)?;
        let nl = r.len(12)?;
        sim.setup_links.reserve(nl);
        for _ in 0..nl {
            sim.setup_links.push((
                InstId::new(r.u32()?),
                InstId::new(r.u32()?),
                AssocId::new(r.u32()?),
            ));
        }
        let ns = r.len(28)?;
        sim.stimuli.reserve(ns);
        for _ in 0..ns {
            sim.stimuli.push(snap_read_stim(&mut r)?);
        }
        let ne = r.len(13)?;
        sim.trace.reserve(ne);
        for _ in 0..ne {
            sim.trace.push(snapshot::read_trace_event(&mut r)?);
        }
        if r.bool()? {
            sim.runtime_fallback = Some(r.str()?);
        }
        if r.bool()? {
            let mut rec = Recorder::new();
            rec.track = r.u32()?;
            rec.stream_epochs = r.bool()?;
            rec.metrics = Metrics::from_raw(snapshot::read_metrics(&mut r)?);
            sim.obs = Some(Box::new(rec));
        }
        if r.bool()? {
            let total_steps = r.u64()?;
            let epoch_no = r.u64()?;
            let ns = r.len(28)?;
            let mut stimuli = VecDeque::with_capacity(ns);
            for _ in 0..ns {
                stimuli.push_back(snap_read_stim(&mut r)?);
            }
            let nt = r.len(32)?;
            let mut timers = Vec::with_capacity(nt);
            for _ in 0..nt {
                timers.push(PendingTimer {
                    deadline: r.u64()?,
                    seq: r.u64()?,
                    from: InstId::new(r.u32()?),
                    to: InstId::new(r.u32()?),
                    event: EventId::new(r.u32()?),
                    args: snapshot::read_values(&mut r)?,
                });
            }
            let nshards = r.len(29)?;
            if nshards != sim.policy.shards {
                return Err(SnapError::Corrupt(format!(
                    "{nshards} shard replicas for a policy of {} shards",
                    sim.policy.shards
                )));
            }
            let mut shards = Vec::with_capacity(nshards);
            for id in 0..nshards {
                let store = ObjectStore::snap_read(&mut r)?;
                let nq = r.len(8)?;
                if nq != store.id_space() {
                    return Err(SnapError::Corrupt(format!(
                        "shard {id}: {nq} instance queues for an id space of {}",
                        store.id_space()
                    )));
                }
                let mut queues = Vec::with_capacity(nq);
                for _ in 0..nq {
                    let mut q = InstQueues::default();
                    for half in [&mut q.self_q, &mut q.main_q] {
                        let n = r.len(10)?;
                        for _ in 0..n {
                            half.push_back(snap_read_env(&mut r)?);
                        }
                    }
                    queues.push(q);
                }
                let rng = SplitMix64::from_state(r.u64()?);
                let local_seq = r.u64()?;
                let obs = if r.bool()? {
                    let raw = snapshot::read_metrics(&mut r)?;
                    let mut child = match sim.obs.as_deref() {
                        Some(root) => root.fork_shard(id as u32),
                        None => {
                            let mut c = Recorder::new();
                            c.track = id as u32 + 1;
                            c
                        }
                    };
                    child.metrics = Metrics::from_raw(raw);
                    Some(child)
                } else {
                    None
                };
                // Ready sets are derived state: exactly the instances
                // with a non-empty queue, ascending by id.
                let mut in_ready = vec![false; nq];
                let mut ready = Vec::new();
                for (i, q) in queues.iter().enumerate() {
                    if !q.is_empty() {
                        in_ready[i] = true;
                        ready.push(InstId::new(i as u32));
                    }
                }
                shards.push(ShardState {
                    id,
                    nshards,
                    store,
                    queues,
                    ready,
                    in_ready,
                    rng,
                    local_seq,
                    trace: Trace::new(),
                    outbox: Vec::new(),
                    new_timers: Vec::new(),
                    cancels: Vec::new(),
                    dispatches: 0,
                    dropped: 0,
                    step_budget: sim.max_steps,
                    max_steps: sim.max_steps,
                    now: sim.now,
                    strict: sim.policy.strict,
                    self_priority: sim.policy.self_priority,
                    frame_buf: Vec::new(),
                    scratch_buf: Vec::new(),
                    payloads: PayloadPool::new(),
                    obs,
                    epoch: epoch_no,
                    epoch_busy_ns: 0,
                });
            }
            sim.engine_state = Some(EngineState {
                shards,
                stimuli,
                timers,
                total_steps,
                epoch_no,
            });
        }
        r.expect_end()?;
        Ok(sim)
    }
}

fn snap_write_env(w: &mut snapshot::Writer, e: &Envelope) {
    snapshot::write_opt_inst(w, e.from);
    w.u32(u32::from(e.event));
    w.u64(e.seq);
    snapshot::write_values(w, &e.args);
}

fn snap_read_env(r: &mut snapshot::Reader<'_>) -> SnapResult<Envelope> {
    Ok(Envelope {
        from: snapshot::read_opt_inst(r)?,
        event: EventId::new(r.u32()?),
        seq: r.u64()?,
        args: snapshot::read_values(r)?,
    })
}

fn snap_write_stim(w: &mut snapshot::Writer, s: &PendingStimulus) {
    w.u64(s.time);
    w.u64(s.seq);
    w.u32(u32::from(s.to));
    w.u32(u32::from(s.event));
    snapshot::write_values(w, &s.args);
}

fn snap_read_stim(r: &mut snapshot::Reader<'_>) -> SnapResult<PendingStimulus> {
    Ok(PendingStimulus {
        time: r.u64()?,
        seq: r.u64()?,
        to: InstId::new(r.u32()?),
        event: EventId::new(r.u32()?),
        args: snapshot::read_values(r)?,
    })
}
