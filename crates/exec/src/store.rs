//! The instance population: objects, attribute slots and association links.
//!
//! [`ObjectStore`] is deliberately free-standing (no scheduler, no queues)
//! so that every execution platform in the workspace can embed one: the
//! abstract interpreter holds the whole domain's population, while the
//! generated hardware and software partitions each hold the population of
//! *their* classes only.

use xtuml_core::error::{CoreError, Result};
use xtuml_core::ids::{AssocId, AttrId, ClassId, InstId, StateId};
use xtuml_core::model::{Domain, Multiplicity};
use xtuml_core::value::Value;

/// One live (or deleted) object instance.
#[derive(Debug, Clone)]
struct Instance {
    class: ClassId,
    attrs: Vec<Value>,
    state: StateId,
    alive: bool,
    /// True for a placeholder standing in for an instance owned by the
    /// other partition: navigable and addressable, but with no attribute
    /// slots, not selectable, not deletable through actions.
    proxy: bool,
}

/// Objects, attributes and links for some subset of a domain's classes.
///
/// Instance ids are dense and never reused; deleted instances leave a
/// tombstone so dangling references are detected, not misinterpreted.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    instances: Vec<Instance>,
    /// Links per association, in creation order.
    links: Vec<Vec<(InstId, InstId)>>,
}

impl ObjectStore {
    /// Creates an empty store for a domain with `assoc_count` associations.
    pub fn new(assoc_count: usize) -> ObjectStore {
        ObjectStore {
            instances: Vec::new(),
            links: vec![Vec::new(); assoc_count],
        }
    }

    /// Creates an instance of `class` with default attribute values, in
    /// the class's initial state (or state 0 for passive classes).
    pub fn create(&mut self, domain: &Domain, class: ClassId) -> InstId {
        let c = domain.class(class);
        let attrs = c.attributes.iter().map(|a| a.default.clone()).collect();
        let state = c
            .state_machine
            .as_ref()
            .map(|m| m.initial)
            .unwrap_or_default();
        self.instances.push(Instance {
            class,
            attrs,
            state,
            alive: true,
            proxy: false,
        });
        InstId::new(self.instances.len() as u32 - 1)
    }

    /// Creates an instance of `class` at exactly id `want`, padding the
    /// id space with dead tombstones if `want` lies beyond the current
    /// end. The sharded executor uses this to keep creation shard-local:
    /// shard `k` of `n` allocates ids congruent to `k (mod n)`, so the
    /// creating shard owns every instance it creates and the id spaces
    /// of concurrent shards never collide. Accessing a padding id fails
    /// like any dangling reference ("instance has been deleted") — a
    /// deterministic error, never an aliased slot.
    ///
    /// # Panics
    ///
    /// Panics if `want` is already populated (allocation must move
    /// forward).
    pub fn create_with_id(&mut self, domain: &Domain, class: ClassId, want: InstId) -> InstId {
        assert!(
            want.index() >= self.instances.len(),
            "create_with_id must allocate past the end"
        );
        while self.instances.len() < want.index() {
            self.instances.push(Instance {
                class,
                attrs: Vec::new(),
                state: StateId::default(),
                alive: false,
                proxy: false,
            });
        }
        let inst = self.create(domain, class);
        debug_assert_eq!(inst, want);
        inst
    }

    /// The size of the id space: live instances, tombstones and proxies.
    pub fn id_space(&self) -> usize {
        self.instances.len()
    }

    /// Registers an instance that lives in *another* partition's store
    /// under the same id, so cross-partition references resolve classes
    /// without owning attributes. The proxy has no attribute slots.
    pub fn create_proxy(&mut self, class: ClassId) -> InstId {
        self.instances.push(Instance {
            class,
            attrs: Vec::new(),
            state: StateId::default(),
            alive: true,
            proxy: true,
        });
        InstId::new(self.instances.len() as u32 - 1)
    }

    /// True if the instance is a cross-partition proxy.
    pub fn is_proxy(&self, inst: InstId) -> bool {
        self.instances.get(inst.index()).is_some_and(|i| i.proxy)
    }

    #[inline]
    fn get(&self, inst: InstId) -> Result<&Instance> {
        match self.instances.get(inst.index()) {
            Some(i) if i.alive => Ok(i),
            Some(_) => Err(CoreError::runtime(format!(
                "instance {inst} has been deleted"
            ))),
            None => Err(CoreError::runtime(format!("unknown instance {inst}"))),
        }
    }

    #[inline]
    fn get_mut(&mut self, inst: InstId) -> Result<&mut Instance> {
        match self.instances.get_mut(inst.index()) {
            Some(i) if i.alive => Ok(i),
            Some(_) => Err(CoreError::runtime(format!(
                "instance {inst} has been deleted"
            ))),
            None => Err(CoreError::runtime(format!("unknown instance {inst}"))),
        }
    }

    /// Deletes an instance and all links touching it.
    ///
    /// # Errors
    ///
    /// Fails on unknown or already-deleted instances.
    pub fn delete(&mut self, inst: InstId) -> Result<()> {
        self.get_mut(inst)?.alive = false;
        for links in &mut self.links {
            links.retain(|(a, b)| *a != inst && *b != inst);
        }
        Ok(())
    }

    /// True if the instance exists and is alive.
    pub fn is_alive(&self, inst: InstId) -> bool {
        self.instances.get(inst.index()).is_some_and(|i| i.alive)
    }

    /// The class of a live instance.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    #[inline]
    pub fn class_of(&self, inst: InstId) -> Result<ClassId> {
        Ok(self.get(inst)?.class)
    }

    /// Current state of a live instance's state machine.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    #[inline]
    pub fn state_of(&self, inst: InstId) -> Result<StateId> {
        Ok(self.get(inst)?.state)
    }

    /// `(class, state)` of a live instance in a single slot lookup — the
    /// dispatcher's first touch on every signal, where a second `get`
    /// would be pure overhead.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    #[inline]
    pub fn class_state(&self, inst: InstId) -> Result<(ClassId, StateId)> {
        let i = self.get(inst)?;
        Ok((i.class, i.state))
    }

    /// Moves the instance to a new state.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    pub fn set_state(&mut self, inst: InstId, state: StateId) -> Result<()> {
        self.get_mut(inst)?.state = state;
        Ok(())
    }

    /// Reads an attribute slot.
    ///
    /// # Errors
    ///
    /// Fails on dangling references or proxy instances (which own no
    /// attributes).
    #[inline]
    pub fn attr_read(&self, inst: InstId, attr: AttrId) -> Result<Value> {
        let i = self.get(inst)?;
        i.attrs.get(attr.index()).cloned().ok_or_else(|| {
            CoreError::runtime(format!(
                "instance {inst} has no attribute slot {attr} (cross-partition access?)"
            ))
        })
    }

    /// Writes an attribute slot, enforcing the declared type.
    ///
    /// # Errors
    ///
    /// Fails on dangling references, missing slots, or type mismatches.
    pub fn attr_write(
        &mut self,
        domain: &Domain,
        inst: InstId,
        attr: AttrId,
        value: Value,
    ) -> Result<()> {
        let class = self.get(inst)?.class;
        let decl = domain.class(class).attribute(attr);
        if decl.ty != value.data_type() {
            return Err(CoreError::runtime(format!(
                "attribute {}.{} is {}, got {}",
                domain.class(class).name,
                decl.name,
                decl.ty,
                value.data_type()
            )));
        }
        let i = self.get_mut(inst)?;
        match i.attrs.get_mut(attr.index()) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(CoreError::runtime(format!(
                "instance {inst} has no attribute slot {attr} (cross-partition access?)"
            ))),
        }
    }

    /// [`ObjectStore::attr_write`] for a value whose type the caller has
    /// proven statically (the bytecode lowering's fused constant stores):
    /// skips the declared-type re-check but keeps every liveness and
    /// missing-slot error, message for message.
    ///
    /// # Errors
    ///
    /// Fails on dangling references or missing slots.
    #[inline]
    pub fn attr_write_typed(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()> {
        let i = self.get_mut(inst)?;
        match i.attrs.get_mut(attr.index()) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(CoreError::runtime(format!(
                "instance {inst} has no attribute slot {attr} (cross-partition access?)"
            ))),
        }
    }

    /// All live, locally-owned instances of `class`, in creation order,
    /// without materialising a `Vec`. Proxies are excluded: `select` must
    /// only see the partition's own population.
    pub fn instances_iter(&self, class: ClassId) -> impl Iterator<Item = InstId> + '_ {
        self.instances
            .iter()
            .enumerate()
            .filter(move |(_, i)| i.alive && !i.proxy && i.class == class)
            .map(|(k, _)| InstId::new(k as u32))
    }

    /// All live, locally-owned instances of `class`, in creation order.
    pub fn instances_of(&self, class: ClassId) -> Vec<InstId> {
        self.instances_iter(class).collect()
    }

    /// The first live, locally-owned instance of `class` in creation
    /// order, if any (the unfiltered `select any`).
    pub fn first_instance_of(&self, class: ClassId) -> Option<InstId> {
        self.instances_iter(class).next()
    }

    /// Total number of live instances (proxies excluded).
    pub fn live_count(&self) -> usize {
        self.instances
            .iter()
            .filter(|i| i.alive && !i.proxy)
            .count()
    }

    /// Instances linked to `inst` across `assoc`, in link order, without
    /// materialising a `Vec`.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    pub fn related_iter(
        &self,
        inst: InstId,
        assoc: AssocId,
    ) -> Result<impl Iterator<Item = InstId> + '_> {
        self.get(inst)?;
        Ok(self.links[assoc.index()].iter().filter_map(move |(a, b)| {
            if *a == inst {
                Some(*b)
            } else if *b == inst {
                Some(*a)
            } else {
                None
            }
        }))
    }

    /// Instances linked to `inst` across `assoc`, in link order.
    ///
    /// # Errors
    ///
    /// Fails on dangling references.
    pub fn related(&self, inst: InstId, assoc: AssocId) -> Result<Vec<InstId>> {
        Ok(self.related_iter(inst, assoc)?.collect())
    }

    /// Creates a link, enforcing multiplicity upper bounds.
    ///
    /// # Errors
    ///
    /// Fails on dangling references, duplicate links, participants of the
    /// wrong class, or multiplicity violations.
    pub fn relate(&mut self, domain: &Domain, a: InstId, b: InstId, assoc: AssocId) -> Result<()> {
        let ca = self.class_of(a)?;
        let cb = self.class_of(b)?;
        let r = domain.association(assoc);
        // Orient (a, b) as (from-side, to-side).
        let (fa, fb) = if ca == r.from && cb == r.to {
            (a, b)
        } else if ca == r.to && cb == r.from {
            (b, a)
        } else {
            return Err(CoreError::runtime(format!(
                "association {} cannot link {} and {}",
                r.name,
                domain.class(ca).name,
                domain.class(cb).name
            )));
        };
        let links = &self.links[assoc.index()];
        if links.contains(&(fa, fb)) {
            return Err(CoreError::runtime(format!(
                "instances already related across {}",
                r.name
            )));
        }
        // `to_mult` bounds how many to-side partners a from-side instance
        // may have; `from_mult` bounds the reverse.
        let to_count = links.iter().filter(|(x, _)| *x == fa).count();
        if !r.to_mult.is_many() && to_count >= 1 {
            return Err(CoreError::runtime(format!(
                "multiplicity violation on {} ({} side)",
                r.name,
                domain.class(r.to).name
            )));
        }
        let from_count = links.iter().filter(|(_, y)| *y == fb).count();
        if !r.from_mult.is_many() && from_count >= 1 {
            return Err(CoreError::runtime(format!(
                "multiplicity violation on {} ({} side)",
                r.name,
                domain.class(r.from).name
            )));
        }
        let _ = Multiplicity::Many; // multiplicities consumed above
        self.links[assoc.index()].push((fa, fb));
        Ok(())
    }

    /// Serializes the full population (instances, tombstones, proxies,
    /// links) into a snapshot stream.
    pub(crate) fn snap_write(&self, w: &mut crate::snapshot::Writer) {
        w.len(self.instances.len());
        for i in &self.instances {
            w.u32(u32::from(i.class));
            w.u32(u32::from(i.state));
            w.bool(i.alive);
            w.bool(i.proxy);
            w.len(i.attrs.len());
            for a in &i.attrs {
                crate::snapshot::write_value(w, a);
            }
        }
        w.len(self.links.len());
        for links in &self.links {
            w.len(links.len());
            for (a, b) in links {
                w.u32(u32::from(*a));
                w.u32(u32::from(*b));
            }
        }
    }

    /// Rebuilds a population from a snapshot stream written by
    /// [`ObjectStore::snap_write`].
    pub(crate) fn snap_read(
        r: &mut crate::snapshot::Reader<'_>,
    ) -> crate::snapshot::SnapResult<ObjectStore> {
        let n = r.len(11)?;
        let mut instances = Vec::with_capacity(n);
        for _ in 0..n {
            let class = ClassId::new(r.u32()?);
            let state = StateId::new(r.u32()?);
            let alive = r.bool()?;
            let proxy = r.bool()?;
            let na = r.len(1)?;
            let mut attrs = Vec::with_capacity(na);
            for _ in 0..na {
                attrs.push(crate::snapshot::read_value(r)?);
            }
            instances.push(Instance {
                class,
                attrs,
                state,
                alive,
                proxy,
            });
        }
        let nl = r.len(4)?;
        let mut links = Vec::with_capacity(nl);
        for _ in 0..nl {
            let np = r.len(8)?;
            let mut pairs = Vec::with_capacity(np);
            for _ in 0..np {
                pairs.push((InstId::new(r.u32()?), InstId::new(r.u32()?)));
            }
            links.push(pairs);
        }
        Ok(ObjectStore { instances, links })
    }

    /// Removes a link.
    ///
    /// # Errors
    ///
    /// Fails if the instances are not related across `assoc`.
    pub fn unrelate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()> {
        let links = &mut self.links[assoc.index()];
        let before = links.len();
        links.retain(|(x, y)| !((*x == a && *y == b) || (*x == b && *y == a)));
        if links.len() == before {
            return Err(CoreError::runtime("instances are not related"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::builder::DomainBuilder;
    use xtuml_core::model::Multiplicity;
    use xtuml_core::value::DataType;

    fn domain() -> Domain {
        let mut d = DomainBuilder::new("t");
        d.class("A").attr("x", DataType::Int);
        d.class("B").attr("y", DataType::Bool);
        d.association("R1", "A", Multiplicity::One, "B", Multiplicity::Many);
        d.association("R2", "A", Multiplicity::ZeroOne, "B", Multiplicity::ZeroOne);
        d.build().unwrap()
    }

    #[test]
    fn create_read_write_delete() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let a = s.create(&d, ClassId::new(0));
        assert!(s.is_alive(a));
        assert_eq!(s.attr_read(a, AttrId::new(0)).unwrap(), Value::Int(0));
        s.attr_write(&d, a, AttrId::new(0), Value::Int(9)).unwrap();
        assert_eq!(s.attr_read(a, AttrId::new(0)).unwrap(), Value::Int(9));
        s.delete(a).unwrap();
        assert!(!s.is_alive(a));
        assert!(s.attr_read(a, AttrId::new(0)).is_err());
        assert!(s.delete(a).is_err());
    }

    #[test]
    fn attr_write_type_checked() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let a = s.create(&d, ClassId::new(0));
        assert!(s
            .attr_write(&d, a, AttrId::new(0), Value::Bool(true))
            .is_err());
    }

    #[test]
    fn relate_and_navigate_both_directions() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let a = s.create(&d, ClassId::new(0));
        let b1 = s.create(&d, ClassId::new(1));
        let b2 = s.create(&d, ClassId::new(1));
        let r1 = d.assoc_id("R1").unwrap();
        // Argument order must not matter.
        s.relate(&d, a, b1, r1).unwrap();
        s.relate(&d, b2, a, r1).unwrap();
        assert_eq!(s.related(a, r1).unwrap(), vec![b1, b2]);
        assert_eq!(s.related(b1, r1).unwrap(), vec![a]);
        s.unrelate(b1, a, r1).unwrap();
        assert_eq!(s.related(a, r1).unwrap(), vec![b2]);
        assert!(s.unrelate(a, b1, r1).is_err());
    }

    #[test]
    fn multiplicity_enforced() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let a1 = s.create(&d, ClassId::new(0));
        let a2 = s.create(&d, ClassId::new(0));
        let b = s.create(&d, ClassId::new(1));
        let r1 = d.assoc_id("R1").unwrap();
        // R1: A side is One — a B instance may link to at most one A.
        s.relate(&d, a1, b, r1).unwrap();
        assert!(s.relate(&d, a2, b, r1).is_err());
        // R2: both sides ZeroOne.
        let r2 = d.assoc_id("R2").unwrap();
        let b2 = s.create(&d, ClassId::new(1));
        s.relate(&d, a1, b2, r2).unwrap();
        assert!(s.relate(&d, a1, b, r2).is_err());
    }

    #[test]
    fn duplicate_link_rejected() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let a = s.create(&d, ClassId::new(0));
        let b = s.create(&d, ClassId::new(1));
        let r1 = d.assoc_id("R1").unwrap();
        s.relate(&d, a, b, r1).unwrap();
        assert!(s.relate(&d, a, b, r1).is_err());
    }

    #[test]
    fn wrong_class_pair_rejected() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let a1 = s.create(&d, ClassId::new(0));
        let a2 = s.create(&d, ClassId::new(0));
        let r1 = d.assoc_id("R1").unwrap();
        assert!(s.relate(&d, a1, a2, r1).is_err());
    }

    #[test]
    fn delete_cleans_links() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let a = s.create(&d, ClassId::new(0));
        let b = s.create(&d, ClassId::new(1));
        let r1 = d.assoc_id("R1").unwrap();
        s.relate(&d, a, b, r1).unwrap();
        s.delete(b).unwrap();
        assert_eq!(s.related(a, r1).unwrap(), vec![]);
    }

    #[test]
    fn create_with_id_pads_with_dead_tombstones() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let a = s.create(&d, ClassId::new(0));
        assert_eq!(a, InstId::new(0));
        // Skewed allocation: id 3 on a 4-shard layout from shard 3.
        let b = s.create_with_id(&d, ClassId::new(1), InstId::new(3));
        assert_eq!(b, InstId::new(3));
        assert_eq!(s.id_space(), 4);
        // The padding ids fail deterministically, like dangling refs.
        for pad in [1u32, 2] {
            let err = s.attr_read(InstId::new(pad), AttrId::new(0)).unwrap_err();
            assert!(err.to_string().contains("deleted"), "{err}");
        }
        // The real instance is live with default attributes and is the
        // only live instance of its class.
        assert!(s.attr_read(b, AttrId::new(0)).is_ok());
        assert_eq!(s.instances_of(ClassId::new(1)), vec![b]);
        assert_eq!(s.live_count(), 2);
    }

    #[test]
    #[should_panic(expected = "allocate past the end")]
    fn create_with_id_rejects_backfill() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        s.create(&d, ClassId::new(0));
        s.create_with_id(&d, ClassId::new(0), InstId::new(0));
    }

    #[test]
    fn proxies_have_class_but_no_attrs() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let p = s.create_proxy(ClassId::new(1));
        assert!(s.is_proxy(p));
        assert_eq!(s.class_of(p).unwrap(), ClassId::new(1));
        let err = s.attr_read(p, AttrId::new(0)).unwrap_err();
        assert!(err.to_string().contains("cross-partition"));
        // Proxies are invisible to select and counts...
        assert!(s.instances_of(ClassId::new(1)).is_empty());
        assert_eq!(s.live_count(), 0);
        // ...but navigable: links may touch them.
        let a = s.create(&d, ClassId::new(0));
        assert!(!s.is_proxy(a));
        let r1 = d.assoc_id("R1").unwrap();
        s.relate(&d, a, p, r1).unwrap();
        assert_eq!(s.related(a, r1).unwrap(), vec![p]);
    }

    #[test]
    fn iterator_variants_match_vec_variants() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let a = s.create(&d, ClassId::new(0));
        let b1 = s.create(&d, ClassId::new(1));
        let b2 = s.create(&d, ClassId::new(1));
        let r1 = d.assoc_id("R1").unwrap();
        s.relate(&d, a, b1, r1).unwrap();
        s.relate(&d, a, b2, r1).unwrap();
        assert_eq!(
            s.instances_iter(ClassId::new(1)).collect::<Vec<_>>(),
            s.instances_of(ClassId::new(1))
        );
        assert_eq!(s.first_instance_of(ClassId::new(1)), Some(b1));
        assert_eq!(s.first_instance_of(ClassId::new(0)), Some(a));
        assert_eq!(
            s.related_iter(a, r1).unwrap().collect::<Vec<_>>(),
            s.related(a, r1).unwrap()
        );
        s.delete(b1).unwrap();
        assert_eq!(s.first_instance_of(ClassId::new(1)), Some(b2));
        assert!(s.related_iter(b1, r1).is_err());
    }

    #[test]
    fn live_count_and_instances_of() {
        let d = domain();
        let mut s = ObjectStore::new(d.associations.len());
        let a1 = s.create(&d, ClassId::new(0));
        let _b = s.create(&d, ClassId::new(1));
        let a2 = s.create(&d, ClassId::new(0));
        assert_eq!(s.live_count(), 3);
        assert_eq!(s.instances_of(ClassId::new(0)), vec![a1, a2]);
        s.delete(a1).unwrap();
        assert_eq!(s.instances_of(ClassId::new(0)), vec![a2]);
    }
}
