//! # xtuml-exec — executing Executable UML models
//!
//! The model interpreter for the paper's §2 semantics:
//!
//! * every object instance carries a **concurrently executing state
//!   machine**;
//! * machines communicate **only by signals**;
//! * on receipt of a signal the destination state's actions **run to
//!   completion** before the next signal is processed by that instance;
//! * the receiver's actions execute **after** the action that sent the
//!   signal (cause precedes effect);
//! * signals an instance sends **to itself** are consumed before signals
//!   from other instances;
//! * signals between a given sender–receiver pair arrive **in send order**.
//!
//! "Concurrently executing" is a *specification* of allowed interleavings.
//! The interpreter realises it with a deterministic, seedable scheduler
//! ([`sched::SchedPolicy`]): one seed = one legal interleaving = one
//! reproducible trace; sweeping seeds explores the interleaving space. The
//! event rules themselves can be switched off individually — that exists
//! *only* so experiment E5 can demonstrate that ablating either rule
//! produces causality violations.
//!
//! ```
//! use xtuml_core::builder::DomainBuilder;
//! use xtuml_core::value::{DataType, Value};
//! use xtuml_exec::Simulation;
//!
//! let mut b = DomainBuilder::new("demo");
//! b.actor("OUT").event("done", &[("v", DataType::Int)]);
//! b.class("Counter")
//!     .attr("n", DataType::Int)
//!     .event("Bump", &[])
//!     .state("Idle", "")
//!     .state("Bumping", "self.n = self.n + 1; gen done(self.n) to OUT;")
//!     .initial("Idle")
//!     .transition("Idle", "Bump", "Bumping")
//!     .transition("Bumping", "Bump", "Bumping");
//! let domain = b.build()?;
//!
//! let mut sim = Simulation::new(&domain);
//! let c = sim.create("Counter")?;
//! sim.inject(0, c, "Bump", vec![])?;
//! sim.inject(1, c, "Bump", vec![])?;
//! sim.run_to_quiescence()?;
//! let outs = sim.trace().observable(&domain);
//! assert_eq!(outs.len(), 2);
//! assert_eq!(outs[1].args, vec![Value::Int(2)]);
//! # Ok::<(), xtuml_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod sched;
pub mod shard;
pub mod sim;
pub mod snapshot;
pub mod store;
pub mod trace;

pub use sched::SchedPolicy;
pub use shard::{shard_safety, ShardedSimulation};
pub use sim::{Engine, Simulation};
pub use snapshot::SnapError;
pub use store::ObjectStore;
pub use trace::{ObservableEvent, Trace, TraceEvent, TraceMode};
