//! Scheduling policy: which legal interleaving does a run take?
//!
//! Executable UML's state machines execute *concurrently*; any interleaving
//! that respects the event rules is a correct execution. The interpreter
//! makes that nondeterminism **reproducible**: a [`SchedPolicy`] carries a
//! seed for a deterministic PRNG, and every run with the same model, inputs
//! and seed yields byte-identical traces. Sweeping seeds explores distinct
//! legal interleavings — the verification layer uses this to check that
//! observable behaviour is interleaving-independent where the model says it
//! must be.
//!
//! The two event rules can be ablated (`self_priority`, `pair_order`) so
//! experiment E5 can measure how many causality violations appear when a
//! "model compiler" fails to preserve them. Production code never turns
//! them off.

/// SplitMix64 — a tiny, high-quality deterministic PRNG. We avoid pulling
/// `rand` into the library so that trace determinism depends on nothing
/// but this file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The raw generator state, for exact capture in snapshots. This is
    /// **not** the seed once draws have happened: every [`next_u64`]
    /// advances the state, and a restored stream must continue from the
    /// advanced value, not replay from the seed.
    ///
    /// [`next_u64`]: SplitMix64::next_u64
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuilds a generator at an exact captured state; the next draw
    /// equals the next draw of the stream the state was captured from.
    pub fn from_state(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound must be nonzero).
    ///
    /// Uses the widening-multiply reduction (Lemire): `⌊x·bound / 2^64⌋`
    /// maps the full 64-bit range onto `0..bound` with bias below
    /// `bound/2^64` — immeasurable for any ready-set size — where the old
    /// `x % bound` visibly over-weighted small values. `xtuml-prop` uses
    /// the identical reduction, so interleaving selection and test-case
    /// generation now share one distribution.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }
}

/// The scheduler configuration for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedPolicy {
    /// Seed selecting which legal interleaving this run takes.
    pub seed: u64,
    /// Event rule: self-directed signals are consumed before signals from
    /// other instances. **Ablation switch for E5 only.**
    pub self_priority: bool,
    /// Event rule: signals between a sender–receiver pair are received in
    /// send order (FIFO queues). **Ablation switch for E5 only.**
    pub pair_order: bool,
    /// Treat an event with no declared transition as an error
    /// ("can't happen"). When `false` such events are dropped and counted.
    pub strict: bool,
    /// Number of instance shards for the parallel engine. `1` (the
    /// default) selects the classic sequential schedule. Any value above
    /// 1 selects the epoch-synchronous sharded schedule — the trace is a
    /// pure function of `(seed, shards)` and is byte-identical no matter
    /// how many worker threads (`--jobs`) execute the shards.
    pub shards: usize,
}

impl SchedPolicy {
    /// The default policy with a chosen seed: both event rules on, strict.
    pub fn seeded(seed: u64) -> SchedPolicy {
        SchedPolicy {
            seed,
            ..SchedPolicy::default()
        }
    }

    /// The same policy with a different shard count (clamped to ≥ 1).
    pub fn with_shards(self, shards: usize) -> SchedPolicy {
        SchedPolicy {
            shards: shards.max(1),
            ..self
        }
    }
}

impl Default for SchedPolicy {
    fn default() -> SchedPolicy {
        SchedPolicy {
            seed: 0,
            self_priority: true,
            pair_order: true,
            strict: true,
            shards: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn below_is_in_range() {
        let mut g = SplitMix64::new(7);
        for bound in 1..50usize {
            for _ in 0..20 {
                assert!(g.below(bound) < bound);
            }
        }
    }

    #[test]
    fn restored_stream_draws_same_next_value() {
        // Snapshot fidelity: capturing `state()` mid-stream and rebuilding
        // with `from_state` must continue the exact draw sequence — the
        // advanced state, not the original seed, is what round-trips.
        let mut live = SplitMix64::new(0xDEAD_BEEF);
        for _ in 0..37 {
            live.next_u64();
        }
        assert_ne!(live.state(), 0xDEAD_BEEF, "draws must advance the state");
        let mut restored = SplitMix64::from_state(live.state());
        for _ in 0..64 {
            assert_eq!(live.next_u64(), restored.next_u64());
        }
        // And the scheduler-facing reduction agrees too.
        for bound in [1usize, 3, 17, 1000] {
            assert_eq!(live.below(bound), restored.below(bound));
        }
    }

    #[test]
    fn default_policy_has_rules_on() {
        let p = SchedPolicy::default();
        assert!(p.self_priority && p.pair_order && p.strict);
        assert_eq!(SchedPolicy::seeded(9).seed, 9);
    }
}
