//! Versioned binary serialization of simulation state (DESIGN §15).
//!
//! A snapshot captures everything the execution semantics can observe —
//! object stores, pending signal queues, timers and stimuli, the
//! scheduler PRNG streams, the trace so far, and the metrics recorder —
//! so that `restore(snapshot(sim))` continues **byte-identically** to an
//! uninterrupted run. The format is deliberately dependency-free: a flat
//! little-endian byte stream behind a magic/version/fingerprint header.
//!
//! What is *not* captured, by design:
//!
//! * **Bridges** — boxed host closures have no serial form. A restored
//!   simulation starts with no registered bridges; unregistered bridge
//!   calls return the declared default value, exactly as in a fresh
//!   simulation. Hosts that register bridges must re-register them after
//!   restore.
//! * **Wall-clock telemetry** (profile spans, `Timing`) — segregated
//!   from the deterministic metrics precisely because it is not a pure
//!   function of `(seed, shards)`.
//! * **Caches** (payload pools, scratch frame buffers) — invisible to
//!   execution; a restored simulation simply re-warms them.
//!
//! Versioning rules: the header is `b"XSNP"` + format version + a kind
//! byte (sequential vs sharded engine) + an FNV-1a fingerprint of the
//! domain model. Any incompatible layout change bumps [`VERSION`]; a
//! snapshot may only be restored into the *same* domain (the fingerprint
//! check turns a mismatch into [`SnapError::DomainMismatch`], never into
//! silent misinterpretation). Corrupt or truncated input always yields a
//! structured [`SnapError`] — decoding never panics.

use std::fmt;
use std::sync::Arc;
use xtuml_core::ids::{ActorId, ClassId, EventId, InstId, StateId};
use xtuml_core::model::Domain;
use xtuml_core::value::Value;
use xtuml_obs::{EpochRow, Hist, MetricsRaw, ShardLane, HIST_BUCKETS};

use crate::trace::TraceEvent;

/// Magic bytes opening every snapshot.
pub const MAGIC: [u8; 4] = *b"XSNP";
/// Current snapshot format version. Bumped on any incompatible change.
pub const VERSION: u32 = 1;
/// Header kind byte: a sequential [`Simulation`](crate::Simulation).
pub const KIND_SEQUENTIAL: u8 = 1;
/// Header kind byte: an epoch-synchronous
/// [`ShardedSimulation`](crate::ShardedSimulation).
pub const KIND_SHARDED: u8 = 2;

/// A structured snapshot decoding failure. Corrupt input is a normal
/// runtime condition (a truncated file, a hostile client); every decode
/// path reports one of these instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the encoded structure did.
    Truncated,
    /// The input does not start with the `XSNP` magic.
    BadMagic,
    /// The input is a snapshot of an unsupported format version.
    BadVersion(u32),
    /// The header kind byte matches no known engine.
    BadKind(u8),
    /// The snapshot was taken against a structurally different domain.
    DomainMismatch,
    /// The bytes decode to an impossible structure (bad tag, oversized
    /// length, non-UTF-8 string, ...).
    Corrupt(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapError::BadKind(k) => write!(f, "unknown snapshot kind {k}"),
            SnapError::DomainMismatch => {
                write!(f, "snapshot was taken against a different domain")
            }
            SnapError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Snapshot decode result.
pub type SnapResult<T> = std::result::Result<T, SnapError>;

/// FNV-1a fingerprint of a domain's full structure.
///
/// Hashes the canonical `Debug` rendering of the metamodel — names,
/// attributes, events, state machines *including action bodies*,
/// associations and actors — so any model edit that could change
/// behaviour changes the fingerprint. Stable for a given build of the
/// library; [`VERSION`] guards cross-build compatibility.
pub fn fingerprint(domain: &Domain) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{domain:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Little-endian byte-stream encoder for snapshot payloads.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts a snapshot: header (magic, version, kind, fingerprint)
    /// already written.
    pub fn with_header(kind: u8, domain: &Domain) -> Writer {
        let mut w = Writer { buf: Vec::new() };
        w.buf.extend_from_slice(&MAGIC);
        w.u32(VERSION);
        w.u8(kind);
        w.u64(fingerprint(domain));
        w
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (two's-complement little-endian).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends an `f64` by exact bit pattern (NaN payloads survive).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a collection length prefix.
    pub fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }

    /// Finishes encoding and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian byte-stream decoder; every read is bounds-checked and
/// reports [`SnapError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps raw bytes for decoding (no header check).
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Opens a snapshot: checks magic, version and domain fingerprint,
    /// and returns the kind byte.
    pub fn open(buf: &'a [u8], domain: &Domain) -> SnapResult<(Reader<'a>, u8)> {
        let mut r = Reader::new(buf);
        if r.take(4)? != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(SnapError::BadVersion(version));
        }
        let kind = r.u8()?;
        if kind != KIND_SEQUENTIAL && kind != KIND_SHARDED {
            return Err(SnapError::BadKind(kind));
        }
        if r.u64()? != fingerprint(domain) {
            return Err(SnapError::DomainMismatch);
        }
        Ok((r, kind))
    }

    fn take(&mut self, n: usize) -> SnapResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(SnapError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the input is fully consumed — trailing garbage means
    /// the snapshot does not parse as exactly one state.
    pub fn expect_end(&self) -> SnapResult<()> {
        if self.remaining() != 0 {
            return Err(SnapError::Corrupt(format!(
                "{} trailing bytes after snapshot",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> SnapResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> SnapResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> SnapResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> SnapResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a bool; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> SnapResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapError::Corrupt(format!("bad bool byte {b}"))),
        }
    }

    /// Reads an `f64` by exact bit pattern.
    pub fn f64(&mut self) -> SnapResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> SnapResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads a collection length prefix, rejecting lengths that cannot
    /// possibly fit in the remaining input (`min_elem` = smallest encoded
    /// size of one element) — corrupt input errors out instead of
    /// triggering a giant allocation.
    pub fn len(&mut self, min_elem: usize) -> SnapResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(SnapError::Truncated);
        }
        Ok(n)
    }
}

/// Encodes a runtime [`Value`].
pub fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Bool(b) => {
            w.u8(0);
            w.bool(*b);
        }
        Value::Int(i) => {
            w.u8(1);
            w.i64(*i);
        }
        Value::Real(r) => {
            w.u8(2);
            w.f64(*r);
        }
        Value::Str(s) => {
            w.u8(3);
            w.str(s);
        }
        Value::Inst(c, i) => {
            w.u8(4);
            w.u32(u32::from(*c));
            match i {
                Some(i) => {
                    w.bool(true);
                    w.u32(u32::from(*i));
                }
                None => w.bool(false),
            }
        }
        Value::Set(c, items) => {
            w.u8(5);
            w.u32(u32::from(*c));
            w.len(items.len());
            for i in items {
                w.u32(u32::from(*i));
            }
        }
    }
}

/// Decodes a runtime [`Value`].
pub fn read_value(r: &mut Reader<'_>) -> SnapResult<Value> {
    Ok(match r.u8()? {
        0 => Value::Bool(r.bool()?),
        1 => Value::Int(r.i64()?),
        2 => Value::Real(r.f64()?),
        3 => Value::Str(r.str()?),
        4 => {
            let c = ClassId::new(r.u32()?);
            let i = if r.bool()? {
                Some(InstId::new(r.u32()?))
            } else {
                None
            };
            Value::Inst(c, i)
        }
        5 => {
            let c = ClassId::new(r.u32()?);
            let n = r.len(4)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(InstId::new(r.u32()?));
            }
            Value::Set(c, items)
        }
        t => return Err(SnapError::Corrupt(format!("bad value tag {t}"))),
    })
}

/// Encodes a shared argument slice.
pub fn write_values(w: &mut Writer, args: &[Value]) {
    w.len(args.len());
    for a in args {
        write_value(w, a);
    }
}

/// Decodes a shared argument slice.
pub fn read_values(r: &mut Reader<'_>) -> SnapResult<Arc<[Value]>> {
    let n = r.len(2)?;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(read_value(r)?);
    }
    Ok(Arc::from(args))
}

/// Encodes `Option<InstId>` (one flag byte, then the id if present).
pub fn write_opt_inst(w: &mut Writer, v: Option<InstId>) {
    match v {
        Some(i) => {
            w.bool(true);
            w.u32(u32::from(i));
        }
        None => w.bool(false),
    }
}

/// Decodes `Option<InstId>`.
pub fn read_opt_inst(r: &mut Reader<'_>) -> SnapResult<Option<InstId>> {
    Ok(if r.bool()? {
        Some(InstId::new(r.u32()?))
    } else {
        None
    })
}

/// Encodes one trace entry.
pub fn write_trace_event(w: &mut Writer, e: &TraceEvent) {
    match e {
        TraceEvent::Create { time, inst, class } => {
            w.u8(0);
            w.u64(*time);
            w.u32(u32::from(*inst));
            w.u32(u32::from(*class));
        }
        TraceEvent::Delete { time, inst } => {
            w.u8(1);
            w.u64(*time);
            w.u32(u32::from(*inst));
        }
        TraceEvent::Dispatch {
            time,
            inst,
            from,
            event,
            seq,
            from_state,
            to_state,
        } => {
            w.u8(2);
            w.u64(*time);
            w.u32(u32::from(*inst));
            write_opt_inst(w, *from);
            w.u32(u32::from(*event));
            w.u64(*seq);
            w.u32(u32::from(*from_state));
            w.u32(u32::from(*to_state));
        }
        TraceEvent::Ignored { time, inst, event } => {
            w.u8(3);
            w.u64(*time);
            w.u32(u32::from(*inst));
            w.u32(u32::from(*event));
        }
        TraceEvent::Dropped { time, inst, event } => {
            w.u8(4);
            w.u64(*time);
            w.u32(u32::from(*inst));
            w.u32(u32::from(*event));
        }
        TraceEvent::ActorSignal {
            time,
            actor,
            event,
            args,
        } => {
            w.u8(5);
            w.u64(*time);
            w.u32(u32::from(*actor));
            w.u32(u32::from(*event));
            write_values(w, args);
        }
        TraceEvent::BridgeCall {
            time,
            actor,
            func,
            args,
        } => {
            w.u8(6);
            w.u64(*time);
            w.u32(u32::from(*actor));
            w.str(func);
            write_values(w, args);
        }
    }
}

/// Decodes one trace entry.
pub fn read_trace_event(r: &mut Reader<'_>) -> SnapResult<TraceEvent> {
    Ok(match r.u8()? {
        0 => TraceEvent::Create {
            time: r.u64()?,
            inst: InstId::new(r.u32()?),
            class: ClassId::new(r.u32()?),
        },
        1 => TraceEvent::Delete {
            time: r.u64()?,
            inst: InstId::new(r.u32()?),
        },
        2 => TraceEvent::Dispatch {
            time: r.u64()?,
            inst: InstId::new(r.u32()?),
            from: read_opt_inst(r)?,
            event: EventId::new(r.u32()?),
            seq: r.u64()?,
            from_state: StateId::new(r.u32()?),
            to_state: StateId::new(r.u32()?),
        },
        3 => TraceEvent::Ignored {
            time: r.u64()?,
            inst: InstId::new(r.u32()?),
            event: EventId::new(r.u32()?),
        },
        4 => TraceEvent::Dropped {
            time: r.u64()?,
            inst: InstId::new(r.u32()?),
            event: EventId::new(r.u32()?),
        },
        5 => TraceEvent::ActorSignal {
            time: r.u64()?,
            actor: ActorId::new(r.u32()?),
            event: EventId::new(r.u32()?),
            args: read_values(r)?,
        },
        6 => TraceEvent::BridgeCall {
            time: r.u64()?,
            actor: ActorId::new(r.u32()?),
            func: r.str()?,
            args: read_values(r)?,
        },
        t => return Err(SnapError::Corrupt(format!("bad trace-event tag {t}"))),
    })
}

/// Encodes raw deterministic metrics (counters, gauges, histograms,
/// lanes, epoch rows). Wall-clock timing and spans are deliberately not
/// part of a snapshot — they are not a pure function of `(seed, shards)`.
pub fn write_metrics(w: &mut Writer, m: &MetricsRaw) {
    w.len(m.counters.len());
    for c in &m.counters {
        w.u64(*c);
    }
    w.len(m.gauges.len());
    for g in &m.gauges {
        w.u64(*g);
    }
    w.len(m.hists.len());
    for h in &m.hists {
        w.u64(h.count);
        w.u64(h.sum);
        w.u64(h.max);
        w.len(h.buckets.len());
        for b in &h.buckets {
            w.u64(*b);
        }
    }
    w.len(m.lanes.len());
    for l in &m.lanes {
        w.u32(l.shard);
        w.u64(l.dispatches);
        w.u64(l.sent);
        w.u64(l.cross_shard);
        w.u64(l.epochs_active);
    }
    w.len(m.epoch_rows.len());
    for r in &m.epoch_rows {
        w.u64(r.epoch);
        w.u32(r.shard);
        w.u64(r.dispatches);
        w.u64(r.outbox);
    }
}

/// Decodes raw deterministic metrics.
pub fn read_metrics(r: &mut Reader<'_>) -> SnapResult<MetricsRaw> {
    let nc = r.len(8)?;
    let mut counters = Vec::with_capacity(nc);
    for _ in 0..nc {
        counters.push(r.u64()?);
    }
    let ng = r.len(8)?;
    let mut gauges = Vec::with_capacity(ng);
    for _ in 0..ng {
        gauges.push(r.u64()?);
    }
    let nh = r.len(28)?;
    let mut hists = Vec::with_capacity(nh);
    for _ in 0..nh {
        let mut h = Hist {
            count: r.u64()?,
            sum: r.u64()?,
            max: r.u64()?,
            buckets: [0; HIST_BUCKETS],
        };
        // Bucket count is written explicitly so a future bucket-count
        // change reads as Corrupt, not as frame-shifted garbage.
        let nb = r.len(8)?;
        if nb != HIST_BUCKETS {
            return Err(SnapError::Corrupt(format!(
                "histogram has {nb} buckets, expected {HIST_BUCKETS}"
            )));
        }
        for b in h.buckets.iter_mut() {
            *b = r.u64()?;
        }
        hists.push(h);
    }
    let nl = r.len(36)?;
    let mut lanes = Vec::with_capacity(nl);
    for _ in 0..nl {
        lanes.push(ShardLane {
            shard: r.u32()?,
            dispatches: r.u64()?,
            sent: r.u64()?,
            cross_shard: r.u64()?,
            epochs_active: r.u64()?,
        });
    }
    let ne = r.len(28)?;
    let mut epoch_rows = Vec::with_capacity(ne);
    for _ in 0..ne {
        epoch_rows.push(EpochRow {
            epoch: r.u64()?,
            shard: r.u32()?,
            dispatches: r.u64()?,
            outbox: r.u64()?,
        });
    }
    Ok(MetricsRaw {
        counters,
        gauges,
        hists,
        lanes,
        epoch_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::builder::DomainBuilder;
    use xtuml_core::value::DataType;

    fn domain() -> Domain {
        let mut b = DomainBuilder::new("t");
        b.class("A").attr("x", DataType::Int);
        b.build().unwrap()
    }

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::default();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i64(-42);
        w.bool(true);
        w.f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        w.str("héllo");
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.bool().unwrap());
        assert_eq!(r.f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert_eq!(r.str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn values_round_trip() {
        let vals = [
            Value::Bool(true),
            Value::Int(-9),
            Value::Real(1.5),
            Value::Str("s".into()),
            Value::Inst(ClassId::new(2), None),
            Value::Inst(ClassId::new(2), Some(InstId::new(5))),
            Value::Set(ClassId::new(1), vec![InstId::new(0), InstId::new(3)]),
        ];
        let mut w = Writer::default();
        for v in &vals {
            write_value(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        for v in &vals {
            assert_eq!(&read_value(&mut r).unwrap(), v);
        }
        r.expect_end().unwrap();
    }

    #[test]
    fn every_truncation_is_a_structured_error() {
        let mut w = Writer::default();
        write_value(&mut w, &Value::Str("abcdef".into()));
        write_value(&mut w, &Value::Set(ClassId::new(0), vec![InstId::new(1)]));
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let mut res = read_value(&mut r);
            if res.is_ok() {
                res = read_value(&mut r);
            }
            assert!(res.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn header_checks() {
        let d = domain();
        let w = Writer::with_header(KIND_SEQUENTIAL, &d);
        let bytes = w.finish();
        let (r, kind) = Reader::open(&bytes, &d).unwrap();
        assert_eq!(kind, KIND_SEQUENTIAL);
        r.expect_end().unwrap();

        assert_eq!(Reader::open(b"nope", &d).unwrap_err(), SnapError::BadMagic);
        assert_eq!(
            Reader::open(&bytes[..3], &d).unwrap_err(),
            SnapError::Truncated
        );

        let mut v9 = bytes.clone();
        v9[4] = 9;
        assert_eq!(Reader::open(&v9, &d).unwrap_err(), SnapError::BadVersion(9));

        let mut k0 = bytes.clone();
        k0[8] = 0;
        assert_eq!(Reader::open(&k0, &d).unwrap_err(), SnapError::BadKind(0));

        let mut b = DomainBuilder::new("t");
        b.class("A").attr("x", DataType::Bool); // differs by one type
        let other = b.build().unwrap();
        assert_eq!(
            Reader::open(&bytes, &other).unwrap_err(),
            SnapError::DomainMismatch
        );
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut w = Writer::default();
        w.u8(5); // Set tag
        w.u32(0); // class
        w.u32(u32::MAX); // absurd element count
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert_eq!(read_value(&mut r).unwrap_err(), SnapError::Truncated);
    }

    #[test]
    fn fingerprint_tracks_structure() {
        let d1 = domain();
        let d2 = domain();
        assert_eq!(fingerprint(&d1), fingerprint(&d2));
        let mut b = DomainBuilder::new("t");
        b.class("A").attr("y", DataType::Int); // renamed attribute
        let d3 = b.build().unwrap();
        assert_ne!(fingerprint(&d1), fingerprint(&d3));
    }
}
