//! Execution traces.
//!
//! A trace records everything a run did; the **observable** projection —
//! signals generated to external actors, plus bridge calls — is what the
//! paper's "formal test cases" check, and what the verification layer
//! compares between the abstract model and any partitioned implementation.
//!
//! Trace events store **ids**, not names: recording an event on the
//! dispatch hot path costs no string clones. Names are resolved against
//! the [`Domain`] only when a trace is rendered or projected.

use std::fmt;
use std::sync::Arc;
use xtuml_core::ids::{ActorId, ClassId, EventId, InstId, StateId};
use xtuml_core::model::Domain;
use xtuml_core::value::Value;

/// One entry of a full execution trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instance was created.
    Create {
        /// Simulation time of the creation.
        time: u64,
        /// The new instance.
        inst: InstId,
        /// Its class.
        class: ClassId,
    },
    /// An instance was deleted.
    Delete {
        /// Simulation time of the deletion.
        time: u64,
        /// The deleted instance.
        inst: InstId,
    },
    /// A signal was dispatched to an instance (a run-to-completion step).
    Dispatch {
        /// Simulation time of the dispatch.
        time: u64,
        /// Receiving instance.
        inst: InstId,
        /// Sender (`None` for external stimuli and timer deliveries).
        from: Option<InstId>,
        /// The event.
        event: EventId,
        /// Send-sequence number of the envelope (global, monotonically
        /// increasing at send time) — used by the causality checker.
        seq: u64,
        /// State before the transition.
        from_state: StateId,
        /// State after the transition (same as `from_state` for ignores).
        to_state: StateId,
    },
    /// An event arrived that the state machine ignores (declared ignore).
    Ignored {
        /// Simulation time.
        time: u64,
        /// Receiving instance.
        inst: InstId,
        /// The event.
        event: EventId,
    },
    /// An event was dropped in non-strict mode (undeclared pair).
    Dropped {
        /// Simulation time.
        time: u64,
        /// Receiving instance.
        inst: InstId,
        /// The event.
        event: EventId,
    },
    /// A signal left the domain towards an actor — **observable**.
    ActorSignal {
        /// Simulation time.
        time: u64,
        /// Destination actor.
        actor: ActorId,
        /// The actor event.
        event: EventId,
        /// Arguments (shared, not cloned per record).
        args: Arc<[Value]>,
    },
    /// A synchronous bridge call — **observable**.
    BridgeCall {
        /// Simulation time.
        time: u64,
        /// The actor providing the function.
        actor: ActorId,
        /// Function name (bridge functions have no id space).
        func: String,
        /// Arguments.
        args: Arc<[Value]>,
    },
}

/// One observable output: a signal to an actor or a bridge call.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservableEvent {
    /// Actor name.
    pub actor: String,
    /// Event or function name.
    pub event: String,
    /// Arguments.
    pub args: Vec<Value>,
}

impl fmt::Display for ObservableEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}(", self.actor, self.event)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The entries, in execution order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// The observable projection: actor signals and bridge calls, in
    /// order, with ids resolved to names against the domain.
    pub fn observable(&self, domain: &Domain) -> Vec<ObservableEvent> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ActorSignal {
                    actor, event, args, ..
                } => {
                    let a = domain.actor(*actor);
                    Some(ObservableEvent {
                        actor: a.name.clone(),
                        event: a.events[event.index()].name.clone(),
                        args: args.to_vec(),
                    })
                }
                TraceEvent::BridgeCall {
                    actor, func, args, ..
                } => Some(ObservableEvent {
                    actor: domain.actor(*actor).name.clone(),
                    event: func.clone(),
                    args: args.to_vec(),
                }),
                _ => None,
            })
            .collect()
    }

    /// Number of dispatches (run-to-completion steps) in the trace.
    pub fn dispatch_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dispatch { .. }))
            .count()
    }

    /// Renders the full trace as a human-readable log, resolving ids to
    /// names against the domain. A debugging aid; the observable
    /// projection is what verification compares.
    pub fn render(&self, domain: &Domain) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.events {
            match e {
                TraceEvent::Create { time, inst, class } => {
                    let _ = writeln!(
                        out,
                        "[{time:>6}] create {inst} : {}",
                        domain.class(*class).name
                    );
                }
                TraceEvent::Delete { time, inst } => {
                    let _ = writeln!(out, "[{time:>6}] delete {inst}");
                }
                TraceEvent::Dispatch {
                    time,
                    inst,
                    from,
                    event,
                    from_state,
                    to_state,
                    ..
                } => {
                    // The receiving class is recoverable only through the
                    // creation record; scan backwards for it.
                    let class = self.events.iter().find_map(|c| match c {
                        TraceEvent::Create { inst: i, class, .. } if i == inst => Some(*class),
                        _ => None,
                    });
                    let (ev_name, s0, s1) = match class {
                        Some(c) => {
                            let cls = domain.class(c);
                            let machine = cls.state_machine.as_ref();
                            (
                                cls.events[event.index()].name.clone(),
                                machine.map_or(from_state.to_string(), |m| {
                                    m.state(*from_state).name.clone()
                                }),
                                machine.map_or(to_state.to_string(), |m| {
                                    m.state(*to_state).name.clone()
                                }),
                            )
                        }
                        None => (
                            event.to_string(),
                            from_state.to_string(),
                            to_state.to_string(),
                        ),
                    };
                    let from_s = from.map_or("<env>".to_owned(), |f| f.to_string());
                    let _ = writeln!(
                        out,
                        "[{time:>6}] {from_s} -> {inst} : {ev_name} ({s0} -> {s1})"
                    );
                }
                TraceEvent::Ignored { time, inst, event } => {
                    let _ = writeln!(out, "[{time:>6}] {inst} ignored {event}");
                }
                TraceEvent::Dropped { time, inst, event } => {
                    let _ = writeln!(out, "[{time:>6}] {inst} DROPPED {event}");
                }
                TraceEvent::ActorSignal {
                    time,
                    actor,
                    event,
                    args,
                } => {
                    let a_decl = domain.actor(*actor);
                    let _ = write!(
                        out,
                        "[{time:>6}] >> {}.{}(",
                        a_decl.name,
                        a_decl.events[event.index()].name
                    );
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(out, "{a}");
                    }
                    let _ = writeln!(out, ")");
                }
                TraceEvent::BridgeCall {
                    time,
                    actor,
                    func,
                    args,
                } => {
                    let _ = write!(out, "[{time:>6}] :: {}::{func}(", domain.actor(*actor).name);
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(out, "{a}");
                    }
                    let _ = writeln!(out, ")");
                }
            }
        }
        out
    }

    /// Counts causality violations: for each (sender, receiver) pair, the
    /// dispatch order must match the send order (send-sequence numbers
    /// strictly increasing). With the event rules on this is always zero;
    /// E5 ablations make it positive.
    pub fn causality_violations(&self) -> usize {
        use std::collections::BTreeMap;
        let mut last_seq: BTreeMap<(InstId, InstId), u64> = BTreeMap::new();
        let mut violations = 0;
        for e in &self.events {
            if let TraceEvent::Dispatch {
                inst,
                from: Some(from),
                seq,
                ..
            } = e
            {
                let key = (*from, *inst);
                if let Some(prev) = last_seq.get(&key) {
                    if *seq < *prev {
                        violations += 1;
                    }
                }
                let entry = last_seq.entry(key).or_insert(0);
                *entry = (*entry).max(*seq);
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatch(from: u32, to: u32, seq: u64) -> TraceEvent {
        TraceEvent::Dispatch {
            time: 0,
            inst: InstId::new(to),
            from: Some(InstId::new(from)),
            event: EventId::new(0),
            seq,
            from_state: StateId::new(0),
            to_state: StateId::new(0),
        }
    }

    #[test]
    fn observable_filters_and_orders() {
        use xtuml_core::builder::DomainBuilder;
        use xtuml_core::value::DataType;
        let mut b = DomainBuilder::new("t");
        b.actor("OUT").event("done", &[("v", DataType::Int)]);
        b.actor("LOG").func("info", &[("msg", DataType::Str)], None);
        let d = b.build().unwrap();
        let mut t = Trace::new();
        t.push(TraceEvent::Create {
            time: 0,
            inst: InstId::new(0),
            class: ClassId::new(0),
        });
        t.push(TraceEvent::ActorSignal {
            time: 1,
            actor: ActorId::new(0),
            event: EventId::new(0),
            args: Arc::from(vec![Value::Int(1)]),
        });
        t.push(TraceEvent::BridgeCall {
            time: 2,
            actor: ActorId::new(1),
            func: "info".into(),
            args: Arc::from(vec![Value::from("x")]),
        });
        let obs = t.observable(&d);
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].actor, "OUT");
        assert_eq!(obs[1].event, "info");
        assert_eq!(obs[0].to_string(), "OUT.done(1)");
    }

    #[test]
    fn causality_clean_when_ordered() {
        let mut t = Trace::new();
        t.push(dispatch(0, 1, 1));
        t.push(dispatch(0, 1, 2));
        t.push(dispatch(2, 1, 5));
        t.push(dispatch(0, 1, 3));
        assert_eq!(t.causality_violations(), 0);
    }

    #[test]
    fn causality_violation_detected() {
        let mut t = Trace::new();
        t.push(dispatch(0, 1, 2));
        t.push(dispatch(0, 1, 1)); // arrived after a later send: violation
        assert_eq!(t.causality_violations(), 1);
    }

    #[test]
    fn dispatch_count() {
        let mut t = Trace::new();
        t.push(dispatch(0, 1, 1));
        t.push(TraceEvent::Delete {
            time: 0,
            inst: InstId::new(0),
        });
        assert_eq!(t.dispatch_count(), 1);
    }
}
