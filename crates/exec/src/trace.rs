//! Execution traces.
//!
//! A trace records everything a run did; the **observable** projection —
//! signals generated to external actors, plus bridge calls — is what the
//! paper's "formal test cases" check, and what the verification layer
//! compares between the abstract model and any partitioned implementation.
//!
//! Trace events store **ids**, not names: recording an event on the
//! dispatch hot path costs no string clones. Names are resolved against
//! the [`Domain`] only when a trace is rendered or projected.
//!
//! Internally the trace is a **packed ring**: every record is one
//! fixed-width [`Rec`] (tag byte + five `u32` operands + two `u64`s,
//! 40 bytes after alignment) appended to a flat vector, with the rare
//! variable-width payloads (actor-signal arguments, bridge function
//! names) interned into side tables and referenced by index. The public
//! [`TraceEvent`] enum is materialized **lazily** on read, so rendering,
//! goldens, and the snapshot codec see byte-identical output while the
//! dispatch hot path pushes a branch-free fixed-width record instead of
//! constructing a large enum with embedded `Arc`/`String` variants.

use std::fmt;
use std::sync::Arc;
use xtuml_core::ids::{ActorId, ClassId, EventId, InstId, StateId};
use xtuml_core::model::Domain;
use xtuml_core::value::Value;

/// One entry of a full execution trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instance was created.
    Create {
        /// Simulation time of the creation.
        time: u64,
        /// The new instance.
        inst: InstId,
        /// Its class.
        class: ClassId,
    },
    /// An instance was deleted.
    Delete {
        /// Simulation time of the deletion.
        time: u64,
        /// The deleted instance.
        inst: InstId,
    },
    /// A signal was dispatched to an instance (a run-to-completion step).
    Dispatch {
        /// Simulation time of the dispatch.
        time: u64,
        /// Receiving instance.
        inst: InstId,
        /// Sender (`None` for external stimuli and timer deliveries).
        from: Option<InstId>,
        /// The event.
        event: EventId,
        /// Send-sequence number of the envelope (global, monotonically
        /// increasing at send time) — used by the causality checker.
        seq: u64,
        /// State before the transition.
        from_state: StateId,
        /// State after the transition (same as `from_state` for ignores).
        to_state: StateId,
    },
    /// An event arrived that the state machine ignores (declared ignore).
    Ignored {
        /// Simulation time.
        time: u64,
        /// Receiving instance.
        inst: InstId,
        /// The event.
        event: EventId,
    },
    /// An event was dropped in non-strict mode (undeclared pair).
    Dropped {
        /// Simulation time.
        time: u64,
        /// Receiving instance.
        inst: InstId,
        /// The event.
        event: EventId,
    },
    /// A signal left the domain towards an actor — **observable**.
    ActorSignal {
        /// Simulation time.
        time: u64,
        /// Destination actor.
        actor: ActorId,
        /// The actor event.
        event: EventId,
        /// Arguments (shared, not cloned per record).
        args: Arc<[Value]>,
    },
    /// A synchronous bridge call — **observable**.
    BridgeCall {
        /// Simulation time.
        time: u64,
        /// The actor providing the function.
        actor: ActorId,
        /// Function name (bridge functions have no id space).
        func: String,
        /// Arguments.
        args: Arc<[Value]>,
    },
}

/// One observable output: a signal to an actor or a bridge call.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservableEvent {
    /// Actor name.
    pub actor: String,
    /// Event or function name.
    pub event: String,
    /// Arguments.
    pub args: Vec<Value>,
}

impl fmt::Display for ObservableEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}(", self.actor, self.event)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Whether a simulation records its trace.
///
/// `Off` drops every record at the push site: the trace stays empty and
/// the hot path pays one predictable branch. Differential and golden
/// comparisons require `Full` — an empty trace is vacuously "equal" and
/// proves nothing — so the fuzz harness and CI reject `Off` there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// Record every event (the default).
    #[default]
    Full,
    /// Record nothing.
    Off,
}

// Record tags. Deliberately identical to the snapshot codec's trace-event
// tags (exec::snapshot::write_trace_event) so the two encodings never
// drift apart silently.
const T_CREATE: u8 = 0;
const T_DELETE: u8 = 1;
const T_DISPATCH: u8 = 2;
const T_IGNORED: u8 = 3;
const T_DROPPED: u8 = 4;
const T_ACTOR: u8 = 5;
const T_BRIDGE: u8 = 6;

/// One packed trace record. Fixed width; meanings of the operand words
/// depend on `tag`:
///
/// | tag      | a     | b           | c     | d          | e        | seq  |
/// |----------|-------|-------------|-------|------------|----------|------|
/// | Create   | inst  | class       | —     | —          | —        | —    |
/// | Delete   | inst  | —           | —     | —          | —        | —    |
/// | Dispatch | inst  | from + 1 (0 = env) | event | from_state | to_state | seq |
/// | Ignored  | inst  | —           | event | —          | —        | —    |
/// | Dropped  | inst  | —           | event | —          | —        | —    |
/// | Actor    | actor | payload idx | event | —          | —        | —    |
/// | Bridge   | actor | payload idx | func idx | —       | —        | —    |
#[derive(Debug, Clone, Copy, PartialEq)]
struct Rec {
    time: u64,
    seq: u64,
    a: u32,
    b: u32,
    c: u32,
    d: u32,
    e: u32,
    tag: u8,
}

impl Rec {
    #[inline]
    fn dispatch_from(&self) -> Option<InstId> {
        if self.b == 0 {
            None
        } else {
            Some(InstId::new(self.b - 1))
        }
    }
}

/// A full execution trace, stored as a packed record ring with side
/// tables for the rare variable-width operands.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    recs: Vec<Rec>,
    /// Actor-signal / bridge-call argument tuples, by `Rec::b` index.
    payloads: Vec<Arc<[Value]>>,
    /// Bridge function names, by `Rec::c` index.
    funcs: Vec<String>,
    mode: TraceMode,
}

// Equality is over recorded content only: two traces with the same
// events are equal regardless of recording mode.
impl PartialEq for Trace {
    fn eq(&self, other: &Trace) -> bool {
        self.recs == other.recs && self.payloads == other.payloads && self.funcs == other.funcs
    }
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Creates an empty trace with the given recording mode.
    pub fn with_mode(mode: TraceMode) -> Trace {
        Trace {
            mode,
            ..Trace::default()
        }
    }

    /// The recording mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Sets the recording mode for subsequent pushes.
    pub fn set_mode(&mut self, mode: TraceMode) {
        self.mode = mode;
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Reserves room for `n` more records.
    pub fn reserve(&mut self, n: usize) {
        self.recs.reserve(n);
    }

    /// Appends an entry. Compatibility entry point (tests, restore, the
    /// serve trace window); the execution hot path uses the typed
    /// `push_*` methods below, which skip the enum round-trip.
    pub fn push(&mut self, e: TraceEvent) {
        match e {
            TraceEvent::Create { time, inst, class } => self.push_create(time, inst, class),
            TraceEvent::Delete { time, inst } => self.push_delete(time, inst),
            TraceEvent::Dispatch {
                time,
                inst,
                from,
                event,
                seq,
                from_state,
                to_state,
            } => self.push_dispatch(time, inst, from, event, seq, from_state, to_state),
            TraceEvent::Ignored { time, inst, event } => self.push_ignored(time, inst, event),
            TraceEvent::Dropped { time, inst, event } => self.push_dropped(time, inst, event),
            TraceEvent::ActorSignal {
                time,
                actor,
                event,
                args,
            } => self.push_actor_signal(time, actor, event, args),
            TraceEvent::BridgeCall {
                time,
                actor,
                func,
                args,
            } => self.push_bridge_call(time, actor, &func, args),
        }
    }

    /// Records an instance creation.
    #[inline]
    pub fn push_create(&mut self, time: u64, inst: InstId, class: ClassId) {
        if self.mode == TraceMode::Off {
            return;
        }
        self.recs.push(Rec {
            time,
            seq: 0,
            a: inst.0,
            b: class.0,
            c: 0,
            d: 0,
            e: 0,
            tag: T_CREATE,
        });
    }

    /// Records an instance deletion.
    #[inline]
    pub fn push_delete(&mut self, time: u64, inst: InstId) {
        if self.mode == TraceMode::Off {
            return;
        }
        self.recs.push(Rec {
            time,
            seq: 0,
            a: inst.0,
            b: 0,
            c: 0,
            d: 0,
            e: 0,
            tag: T_DELETE,
        });
    }

    /// Records a dispatch (run-to-completion step).
    ///
    /// Takes the seven record fields positionally: this is the hot-path
    /// push and a params struct would be built and torn down per signal.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn push_dispatch(
        &mut self,
        time: u64,
        inst: InstId,
        from: Option<InstId>,
        event: EventId,
        seq: u64,
        from_state: StateId,
        to_state: StateId,
    ) {
        if self.mode == TraceMode::Off {
            return;
        }
        self.recs.push(Rec {
            time,
            seq,
            a: inst.0,
            b: from.map_or(0, |f| f.0 + 1),
            c: event.0,
            d: from_state.0,
            e: to_state.0,
            tag: T_DISPATCH,
        });
    }

    /// Records a declared ignore.
    #[inline]
    pub fn push_ignored(&mut self, time: u64, inst: InstId, event: EventId) {
        if self.mode == TraceMode::Off {
            return;
        }
        self.recs.push(Rec {
            time,
            seq: 0,
            a: inst.0,
            b: 0,
            c: event.0,
            d: 0,
            e: 0,
            tag: T_IGNORED,
        });
    }

    /// Records a lenient-mode drop.
    #[inline]
    pub fn push_dropped(&mut self, time: u64, inst: InstId, event: EventId) {
        if self.mode == TraceMode::Off {
            return;
        }
        self.recs.push(Rec {
            time,
            seq: 0,
            a: inst.0,
            b: 0,
            c: event.0,
            d: 0,
            e: 0,
            tag: T_DROPPED,
        });
    }

    /// Records an observable actor signal.
    #[inline]
    pub fn push_actor_signal(
        &mut self,
        time: u64,
        actor: ActorId,
        event: EventId,
        args: Arc<[Value]>,
    ) {
        if self.mode == TraceMode::Off {
            return;
        }
        let idx = self.payloads.len() as u32;
        self.payloads.push(args);
        self.recs.push(Rec {
            time,
            seq: 0,
            a: actor.0,
            b: idx,
            c: event.0,
            d: 0,
            e: 0,
            tag: T_ACTOR,
        });
    }

    /// Records an observable bridge call.
    #[inline]
    pub fn push_bridge_call(&mut self, time: u64, actor: ActorId, func: &str, args: Arc<[Value]>) {
        if self.mode == TraceMode::Off {
            return;
        }
        let pidx = self.payloads.len() as u32;
        self.payloads.push(args);
        let fidx = self.funcs.len() as u32;
        self.funcs.push(func.to_owned());
        self.recs.push(Rec {
            time,
            seq: 0,
            a: actor.0,
            b: pidx,
            c: fidx,
            d: 0,
            e: 0,
            tag: T_BRIDGE,
        });
    }

    /// Moves every record of `other` to the end of `self`, rebasing its
    /// side-table references. Used by the shard barrier merge; `other`
    /// is left empty (its side tables included).
    pub fn append(&mut self, other: &mut Trace) {
        let pbase = self.payloads.len() as u32;
        let fbase = self.funcs.len() as u32;
        self.payloads.append(&mut other.payloads);
        self.funcs.append(&mut other.funcs);
        self.recs.reserve(other.recs.len());
        for mut r in other.recs.drain(..) {
            match r.tag {
                T_ACTOR => r.b += pbase,
                T_BRIDGE => {
                    r.b += pbase;
                    r.c += fbase;
                }
                _ => {}
            }
            self.recs.push(r);
        }
    }

    /// Materializes record `i` as a [`TraceEvent`].
    pub fn event(&self, i: usize) -> TraceEvent {
        self.materialize(&self.recs[i])
    }

    fn materialize(&self, r: &Rec) -> TraceEvent {
        match r.tag {
            T_CREATE => TraceEvent::Create {
                time: r.time,
                inst: InstId::new(r.a),
                class: ClassId::new(r.b),
            },
            T_DELETE => TraceEvent::Delete {
                time: r.time,
                inst: InstId::new(r.a),
            },
            T_DISPATCH => TraceEvent::Dispatch {
                time: r.time,
                inst: InstId::new(r.a),
                from: r.dispatch_from(),
                event: EventId::new(r.c),
                seq: r.seq,
                from_state: StateId::new(r.d),
                to_state: StateId::new(r.e),
            },
            T_IGNORED => TraceEvent::Ignored {
                time: r.time,
                inst: InstId::new(r.a),
                event: EventId::new(r.c),
            },
            T_DROPPED => TraceEvent::Dropped {
                time: r.time,
                inst: InstId::new(r.a),
                event: EventId::new(r.c),
            },
            T_ACTOR => TraceEvent::ActorSignal {
                time: r.time,
                actor: ActorId::new(r.a),
                event: EventId::new(r.c),
                args: Arc::clone(&self.payloads[r.b as usize]),
            },
            T_BRIDGE => TraceEvent::BridgeCall {
                time: r.time,
                actor: ActorId::new(r.a),
                func: self.funcs[r.c as usize].clone(),
                args: Arc::clone(&self.payloads[r.b as usize]),
            },
            _ => unreachable!("corrupt trace tag {}", r.tag),
        }
    }

    /// Iterates the trace, materializing each record lazily.
    pub fn iter(&self) -> impl Iterator<Item = TraceEvent> + '_ {
        self.recs.iter().map(|r| self.materialize(r))
    }

    /// The observable projection: actor signals and bridge calls, in
    /// order, with ids resolved to names against the domain.
    pub fn observable(&self, domain: &Domain) -> Vec<ObservableEvent> {
        self.recs
            .iter()
            .filter_map(|r| match r.tag {
                T_ACTOR => {
                    let a = domain.actor(ActorId::new(r.a));
                    Some(ObservableEvent {
                        actor: a.name.clone(),
                        event: a.events[r.c as usize].name.clone(),
                        args: self.payloads[r.b as usize].to_vec(),
                    })
                }
                T_BRIDGE => Some(ObservableEvent {
                    actor: domain.actor(ActorId::new(r.a)).name.clone(),
                    event: self.funcs[r.c as usize].clone(),
                    args: self.payloads[r.b as usize].to_vec(),
                }),
                _ => None,
            })
            .collect()
    }

    /// Number of dispatches (run-to-completion steps) in the trace.
    pub fn dispatch_count(&self) -> usize {
        self.recs.iter().filter(|r| r.tag == T_DISPATCH).count()
    }

    /// Renders the full trace as a human-readable log, resolving ids to
    /// names against the domain. A debugging aid; the observable
    /// projection is what verification compares.
    pub fn render(&self, domain: &Domain) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.recs {
            let time = r.time;
            match r.tag {
                T_CREATE => {
                    let inst = InstId::new(r.a);
                    let _ = writeln!(
                        out,
                        "[{time:>6}] create {inst} : {}",
                        domain.class(ClassId::new(r.b)).name
                    );
                }
                T_DELETE => {
                    let inst = InstId::new(r.a);
                    let _ = writeln!(out, "[{time:>6}] delete {inst}");
                }
                T_DISPATCH => {
                    let inst = InstId::new(r.a);
                    let event = EventId::new(r.c);
                    let (from_state, to_state) = (StateId::new(r.d), StateId::new(r.e));
                    // The receiving class is recoverable only through the
                    // creation record; scan for it.
                    let class = self
                        .recs
                        .iter()
                        .find_map(|c| (c.tag == T_CREATE && c.a == r.a).then(|| ClassId::new(c.b)));
                    let (ev_name, s0, s1) = match class {
                        Some(c) => {
                            let cls = domain.class(c);
                            let machine = cls.state_machine.as_ref();
                            (
                                cls.events[event.index()].name.clone(),
                                machine.map_or(from_state.to_string(), |m| {
                                    m.state(from_state).name.clone()
                                }),
                                machine.map_or(to_state.to_string(), |m| {
                                    m.state(to_state).name.clone()
                                }),
                            )
                        }
                        None => (
                            event.to_string(),
                            from_state.to_string(),
                            to_state.to_string(),
                        ),
                    };
                    let from_s = r
                        .dispatch_from()
                        .map_or("<env>".to_owned(), |f| f.to_string());
                    let _ = writeln!(
                        out,
                        "[{time:>6}] {from_s} -> {inst} : {ev_name} ({s0} -> {s1})"
                    );
                }
                T_IGNORED => {
                    let (inst, event) = (InstId::new(r.a), EventId::new(r.c));
                    let _ = writeln!(out, "[{time:>6}] {inst} ignored {event}");
                }
                T_DROPPED => {
                    let (inst, event) = (InstId::new(r.a), EventId::new(r.c));
                    let _ = writeln!(out, "[{time:>6}] {inst} DROPPED {event}");
                }
                T_ACTOR => {
                    let a_decl = domain.actor(ActorId::new(r.a));
                    let _ = write!(
                        out,
                        "[{time:>6}] >> {}.{}(",
                        a_decl.name, a_decl.events[r.c as usize].name
                    );
                    for (i, a) in self.payloads[r.b as usize].iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(out, "{a}");
                    }
                    let _ = writeln!(out, ")");
                }
                T_BRIDGE => {
                    let _ = write!(
                        out,
                        "[{time:>6}] :: {}::{}(",
                        domain.actor(ActorId::new(r.a)).name,
                        self.funcs[r.c as usize]
                    );
                    for (i, a) in self.payloads[r.b as usize].iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, ", ");
                        }
                        let _ = write!(out, "{a}");
                    }
                    let _ = writeln!(out, ")");
                }
                _ => unreachable!("corrupt trace tag {}", r.tag),
            }
        }
        out
    }

    /// Counts causality violations: for each (sender, receiver) pair, the
    /// dispatch order must match the send order (send-sequence numbers
    /// strictly increasing). With the event rules on this is always zero;
    /// E5 ablations make it positive.
    pub fn causality_violations(&self) -> usize {
        use std::collections::BTreeMap;
        let mut last_seq: BTreeMap<(InstId, InstId), u64> = BTreeMap::new();
        let mut violations = 0;
        for r in &self.recs {
            if r.tag != T_DISPATCH {
                continue;
            }
            let Some(from) = r.dispatch_from() else {
                continue;
            };
            let key = (from, InstId::new(r.a));
            if let Some(prev) = last_seq.get(&key) {
                if r.seq < *prev {
                    violations += 1;
                }
            }
            let entry = last_seq.entry(key).or_insert(0);
            *entry = (*entry).max(r.seq);
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatch(from: u32, to: u32, seq: u64) -> TraceEvent {
        TraceEvent::Dispatch {
            time: 0,
            inst: InstId::new(to),
            from: Some(InstId::new(from)),
            event: EventId::new(0),
            seq,
            from_state: StateId::new(0),
            to_state: StateId::new(0),
        }
    }

    #[test]
    fn observable_filters_and_orders() {
        use xtuml_core::builder::DomainBuilder;
        use xtuml_core::value::DataType;
        let mut b = DomainBuilder::new("t");
        b.actor("OUT").event("done", &[("v", DataType::Int)]);
        b.actor("LOG").func("info", &[("msg", DataType::Str)], None);
        let d = b.build().unwrap();
        let mut t = Trace::new();
        t.push(TraceEvent::Create {
            time: 0,
            inst: InstId::new(0),
            class: ClassId::new(0),
        });
        t.push(TraceEvent::ActorSignal {
            time: 1,
            actor: ActorId::new(0),
            event: EventId::new(0),
            args: Arc::from(vec![Value::Int(1)]),
        });
        t.push(TraceEvent::BridgeCall {
            time: 2,
            actor: ActorId::new(1),
            func: "info".into(),
            args: Arc::from(vec![Value::from("x")]),
        });
        let obs = t.observable(&d);
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].actor, "OUT");
        assert_eq!(obs[1].event, "info");
        assert_eq!(obs[0].to_string(), "OUT.done(1)");
    }

    #[test]
    fn causality_clean_when_ordered() {
        let mut t = Trace::new();
        t.push(dispatch(0, 1, 1));
        t.push(dispatch(0, 1, 2));
        t.push(dispatch(2, 1, 5));
        t.push(dispatch(0, 1, 3));
        assert_eq!(t.causality_violations(), 0);
    }

    #[test]
    fn causality_violation_detected() {
        let mut t = Trace::new();
        t.push(dispatch(0, 1, 2));
        t.push(dispatch(0, 1, 1)); // arrived after a later send: violation
        assert_eq!(t.causality_violations(), 1);
    }

    #[test]
    fn dispatch_count() {
        let mut t = Trace::new();
        t.push(dispatch(0, 1, 1));
        t.push(TraceEvent::Delete {
            time: 0,
            inst: InstId::new(0),
        });
        assert_eq!(t.dispatch_count(), 1);
    }

    #[test]
    fn round_trip_through_packed_records() {
        let events = vec![
            TraceEvent::Create {
                time: 0,
                inst: InstId::new(3),
                class: ClassId::new(1),
            },
            TraceEvent::Dispatch {
                time: 1,
                inst: InstId::new(3),
                from: None,
                event: EventId::new(2),
                seq: 9,
                from_state: StateId::new(0),
                to_state: StateId::new(4),
            },
            dispatch(0, 3, 10),
            TraceEvent::Ignored {
                time: 2,
                inst: InstId::new(3),
                event: EventId::new(1),
            },
            TraceEvent::Dropped {
                time: 3,
                inst: InstId::new(3),
                event: EventId::new(0),
            },
            TraceEvent::ActorSignal {
                time: 4,
                actor: ActorId::new(0),
                event: EventId::new(0),
                args: Arc::from(vec![Value::Int(7)]),
            },
            TraceEvent::BridgeCall {
                time: 5,
                actor: ActorId::new(0),
                func: "log".into(),
                args: Arc::from(vec![Value::from("hi")]),
            },
            TraceEvent::Delete {
                time: 6,
                inst: InstId::new(3),
            },
        ];
        let mut t = Trace::new();
        for e in &events {
            t.push(e.clone());
        }
        assert_eq!(t.len(), events.len());
        let back: Vec<TraceEvent> = t.iter().collect();
        assert_eq!(back, events);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(&t.event(i), e);
        }
    }

    #[test]
    fn append_rebases_side_tables() {
        let mut a = Trace::new();
        a.push(TraceEvent::ActorSignal {
            time: 0,
            actor: ActorId::new(0),
            event: EventId::new(0),
            args: Arc::from(vec![Value::Int(1)]),
        });
        let mut b = Trace::new();
        b.push(TraceEvent::BridgeCall {
            time: 1,
            actor: ActorId::new(1),
            func: "f".into(),
            args: Arc::from(vec![Value::Int(2)]),
        });
        b.push(TraceEvent::ActorSignal {
            time: 2,
            actor: ActorId::new(0),
            event: EventId::new(1),
            args: Arc::from(vec![Value::Int(3)]),
        });
        a.append(&mut b);
        assert!(b.is_empty());
        assert_eq!(a.len(), 3);
        match a.event(1) {
            TraceEvent::BridgeCall { func, args, .. } => {
                assert_eq!(func, "f");
                assert_eq!(&args[..], &[Value::Int(2)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match a.event(2) {
            TraceEvent::ActorSignal { args, .. } => assert_eq!(&args[..], &[Value::Int(3)]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut t = Trace::with_mode(TraceMode::Off);
        t.push(dispatch(0, 1, 1));
        t.push_create(0, InstId::new(0), ClassId::new(0));
        assert!(t.is_empty());
        assert_eq!(t.dispatch_count(), 0);
        // Content equality ignores the mode.
        assert_eq!(t, Trace::new());
    }
}
