//! The model interpreter: run-to-completion signal dispatch over a whole
//! domain.
//!
//! A [`Simulation`] owns the instance population, per-instance signal
//! queues, delayed-signal timers and a stimulus script, and advances in
//! discrete steps: pick a ready instance (per the scheduling policy), pop
//! one signal respecting the event rules, look up the transition, execute
//! the destination state's actions to completion. Time advances by one
//! tick per consumed signal and jumps forward when only timers or future
//! stimuli remain.
//!
//! The dispatch hot path is allocation-light by design: state actions are
//! pre-compiled to slot-resolved code ([`CompiledProgram`]) at
//! construction, the set of ready instances is maintained incrementally
//! instead of rescanned per step, signal payloads are shared
//! (`Arc<[Value]>`) rather than cloned per delivery, and one frame buffer
//! is recycled across dispatches.

use crate::sched::{SchedPolicy, SplitMix64};
use crate::snapshot::{self, SnapError, SnapResult};
use crate::store::ObjectStore;
use crate::trace::{Trace, TraceMode};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use xtuml_core::bc::{self, BcAction, BcEntry, BcFallback, BcProgram};
use xtuml_core::code::CompiledProgram;
use xtuml_core::error::{CoreError, Result};
use xtuml_core::ids::{ActorId, AssocId, AttrId, ClassId, EventId, InstId, StateId};
use xtuml_core::interp::{self, ActionHost, ExecCtx};
use xtuml_core::model::{Domain, TransitionTarget};
use xtuml_core::value::Value;
use xtuml_obs::{Counter, Gauge, Recorder, Sink as _};

/// A queued signal. Argument payloads are reference-counted so fan-out
/// (timers, stimuli, trace records) shares one allocation.
#[derive(Debug, Clone)]
struct Envelope {
    from: Option<InstId>,
    event: EventId,
    args: Arc<[Value]>,
    seq: u64,
}

/// Per-instance signal queues. Self-directed signals have their own queue
/// so they can be consumed with priority.
#[derive(Debug, Clone, Default)]
struct InstQueues {
    self_q: VecDeque<Envelope>,
    main_q: VecDeque<Envelope>,
}

impl InstQueues {
    fn is_empty(&self) -> bool {
        self.self_q.is_empty() && self.main_q.is_empty()
    }
}

#[derive(Debug, Clone)]
struct TimerEntry {
    deadline: u64,
    seq: u64,
    from: InstId,
    to: InstId,
    event: EventId,
    args: Arc<[Value]>,
}

#[derive(Debug, Clone)]
struct Stimulus {
    time: u64,
    seq: u64,
    to: InstId,
    event: EventId,
    args: Arc<[Value]>,
}

// Stimuli live in a min-heap keyed by (time, seq); `seq` is globally
// unique, so the order is total and matches the old sorted delivery.
impl PartialEq for Stimulus {
    fn eq(&self, other: &Stimulus) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl Eq for Stimulus {}

impl PartialOrd for Stimulus {
    fn partial_cmp(&self, other: &Stimulus) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Stimulus {
    fn cmp(&self, other: &Stimulus) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Handler invoked for bridge calls on a given actor.
pub type BridgeFn = Box<dyn FnMut(&str, &[Value]) -> Result<Value>>;

/// Which action executor drives the dispatch hot path.
///
/// Both engines produce byte-identical traces; the bytecode VM is the
/// default because it is substantially faster. Actions the lowering cannot
/// encode fall back to compiled frames per-action (diagnostic `X0016`,
/// counted as `bc_fallbacks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Walk slot-resolved compiled frames (`CompiledProgram`) AST-style.
    Frames,
    /// Execute register bytecode lowered from the compiled frames.
    #[default]
    Bc,
}

/// By-arity recycling pool for signal payload buffers.
///
/// A dispatched envelope's payload `Arc` dies at the end of its dispatch:
/// [`TraceEvent::Dispatch`] records no arguments, so unless a timer or an
/// actor-trace event still holds a clone, the buffer is uniquely owned
/// again and can be handed back to the VM's next computed send instead of
/// going through the allocator twice (argument `Vec` + `Arc` payload) per
/// signal. Pooling is invisible to execution: buffers are only reissued
/// when uniquely owned, and the VM overwrites every slot before sending.
pub(crate) struct PayloadPool {
    /// `free[arity]` holds uniquely-owned buffers of exactly `arity` slots.
    free: [Vec<Arc<[Value]>>; PayloadPool::MAX_ARITY + 1],
}

impl PayloadPool {
    /// Largest pooled arity; wider signals are rare enough to take the
    /// allocator path.
    const MAX_ARITY: usize = 8;
    /// Per-arity retention cap, bounding pool memory on bursty workloads.
    const MAX_FREE: usize = 64;

    pub(crate) fn new() -> PayloadPool {
        PayloadPool {
            free: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// Pops a uniquely-owned buffer of exactly `len` slots, if one is
    /// pooled.
    #[inline]
    pub(crate) fn take(&mut self, len: usize) -> Option<Arc<[Value]>> {
        self.free.get_mut(len)?.pop()
    }

    /// Returns a dispatched payload to the pool — if nothing else (a
    /// timer, the actor trace, a literal-payload table) still holds it.
    #[inline]
    pub(crate) fn recycle(&mut self, mut args: Arc<[Value]>) {
        if let Some(lane) = self.free.get_mut(args.len()) {
            if lane.len() < Self::MAX_FREE && Arc::get_mut(&mut args).is_some() {
                lane.push(args);
            }
        }
    }
}

/// Moves `args` into a pooled buffer when one of the right arity is
/// free, avoiding the double allocation (`Vec` + `Arc`) per payload.
#[inline]
pub(crate) fn pooled_payload(pool: &mut PayloadPool, args: Vec<Value>) -> Arc<[Value]> {
    match pool.take(args.len()) {
        Some(mut buf) => {
            let slots = Arc::get_mut(&mut buf).expect("pooled buffers are uniquely owned");
            for (slot, v) in slots.iter_mut().zip(args) {
                *slot = v;
            }
            buf
        }
        None => Arc::from(args),
    }
}

/// How a resolved dispatch slot executes its action.
#[derive(Debug, Clone)]
pub(crate) enum Exec {
    /// Run the lowered bytecode action directly.
    Vm(Arc<BcAction>),
    /// Run the compiled frames. `fallback` marks slots the bytecode
    /// lowering could not encode under [`Engine::Bc`] (diagnostic
    /// X0016); those still count `BcFallbacks` per dispatch so the
    /// metrics goldens are unchanged.
    Frames { fallback: bool },
    /// The lowered body is provably effect-free ([`BcAction::is_nop`]):
    /// skip frame setup and execution entirely. The state change and
    /// trace record still happen in the shared dispatch path. `vm`
    /// records which engine the table was resolved for, so the
    /// per-dispatch `BcActions` counter stays byte-identical to a run
    /// that actually entered the VM.
    Nop { vm: bool },
}

/// One pre-resolved `(from_state, event)` dispatch decision.
#[derive(Debug, Clone)]
pub(crate) enum Slot {
    /// Transition to `to`, executing per `exec`.
    Run { to: StateId, exec: Exec },
    /// Declared ignore: consume silently.
    Ignore,
    /// Undeclared pair: error in strict mode, drop otherwise.
    CantHappen,
}

/// Dense per-class slot table, indexed `state * n_events + event`.
#[derive(Debug, Clone)]
pub(crate) struct ClassSlots {
    n_events: usize,
    slots: Vec<Slot>,
}

impl ClassSlots {
    #[inline]
    pub(crate) fn slot(&self, state: StateId, event: EventId) -> &Slot {
        &self.slots[state.index() * self.n_events + event.index()]
    }
}

/// Pre-resolved dispatch decisions for a whole domain.
///
/// Built once per engine selection at `Simulation` construction. The
/// dispatch hot path indexes it with two loads instead of walking the
/// transition table, re-checking the engine, and probing the bytecode
/// program per signal — and the slot holds a direct reference to the
/// lowered [`BcAction`], so no `Rc` of the whole program is cloned per
/// dispatch. Slots are `Arc`-backed and the table is `Sync`, so shard
/// workers share one copy by reference.
#[derive(Debug, Clone, Default)]
pub(crate) struct DispatchTable {
    /// Per class; `None` for passive classes (no state machine).
    classes: Vec<Option<ClassSlots>>,
    /// Slots resolved to the frame interpreter because the bytecode
    /// lowering bailed (X0016), under [`Engine::Bc`]. Static — decided
    /// once here, not re-discovered per signal.
    fallback_slots: usize,
}

impl DispatchTable {
    pub(crate) fn new(
        domain: &Domain,
        program: &CompiledProgram,
        bc: &BcProgram,
        engine: Engine,
    ) -> DispatchTable {
        let mut fallback_slots = 0;
        let classes = domain
            .classes
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let class = ClassId::new(ci as u32);
                let machine = c.state_machine.as_ref()?;
                let n_events = c.events.len();
                let mut slots = Vec::with_capacity(machine.states.len() * n_events);
                for s in 0..machine.states.len() {
                    for e in 0..n_events {
                        let (state, event) = (StateId::new(s as u32), EventId::new(e as u32));
                        slots.push(match program.target(class, state, event) {
                            TransitionTarget::To(to) => {
                                let exec = match engine {
                                    Engine::Bc => match bc.entry(class, to, event) {
                                        Some(BcEntry::Vm(a)) if a.is_nop() => {
                                            Exec::Nop { vm: true }
                                        }
                                        Some(BcEntry::Vm(a)) => Exec::Vm(Arc::clone(a)),
                                        // `Unsupported` (X0016) and failed
                                        // frame compiles both take the
                                        // frames path, which re-raises any
                                        // compile error lazily.
                                        _ => {
                                            fallback_slots += 1;
                                            Exec::Frames { fallback: true }
                                        }
                                    },
                                    // A lowered-and-nop body proves the
                                    // frames action it came from is
                                    // effect-free too — the frames engine
                                    // elides it the same way (no counters
                                    // fire either way on this path).
                                    Engine::Frames => match bc.entry(class, to, event) {
                                        Some(BcEntry::Vm(a)) if a.is_nop() => {
                                            Exec::Nop { vm: false }
                                        }
                                        _ => Exec::Frames { fallback: false },
                                    },
                                };
                                Slot::Run { to, exec }
                            }
                            TransitionTarget::Ignore => Slot::Ignore,
                            TransitionTarget::CantHappen => Slot::CantHappen,
                        });
                    }
                }
                Some(ClassSlots { n_events, slots })
            })
            .collect();
        DispatchTable {
            classes,
            fallback_slots,
        }
    }

    /// The slot table for `class`, or `None` for passive classes.
    #[inline]
    pub(crate) fn class(&self, class: ClassId) -> Option<&ClassSlots> {
        self.classes[class.index()].as_ref()
    }

    /// Slots that resolved to the frame interpreter under `Engine::Bc`
    /// because the lowering bailed (X0016).
    pub(crate) fn fallback_slots(&self) -> usize {
        self.fallback_slots
    }
}

/// Pre-interned span names, so `--profile` runs stop calling `format!`
/// per signal on the dispatch hot path.
#[derive(Debug, Clone)]
pub(crate) struct SpanNames {
    /// `rtc[class][event]` = `"Class.Event"`.
    rtc: Vec<Vec<String>>,
    /// `action[class][state]` = `"action Class.State"`.
    action: Vec<Vec<String>>,
}

impl SpanNames {
    pub(crate) fn new(domain: &Domain) -> SpanNames {
        let rtc = domain
            .classes
            .iter()
            .map(|c| {
                c.events
                    .iter()
                    .map(|e| format!("{}.{}", c.name, e.name))
                    .collect()
            })
            .collect();
        let action = domain
            .classes
            .iter()
            .map(|c| {
                c.state_machine.as_ref().map_or_else(Vec::new, |m| {
                    m.states
                        .iter()
                        .map(|s| format!("action {}.{}", c.name, s.name))
                        .collect()
                })
            })
            .collect();
        SpanNames { rtc, action }
    }

    #[inline]
    pub(crate) fn rtc(&self, class: ClassId, event: EventId) -> &str {
        &self.rtc[class.index()][event.index()]
    }

    #[inline]
    pub(crate) fn action(&self, class: ClassId, state: StateId) -> &str {
        &self.action[class.index()][state.index()]
    }
}

/// An executing Executable UML model. See the crate-level example.
pub struct Simulation<'d> {
    domain: &'d Domain,
    /// Slot-resolved action code, compiled once at construction.
    program: Rc<CompiledProgram>,
    /// Register bytecode lowered from `program`, once at construction.
    bc: Rc<BcProgram>,
    /// Action executor selection; [`Engine::Bc`] by default.
    engine: Engine,
    /// Pre-resolved `(class, state, event) → slot` dispatch decisions,
    /// rebuilt whenever the engine selection changes.
    table: DispatchTable,
    /// Pre-interned span names; built when a spans-enabled recorder
    /// attaches.
    spans: Option<SpanNames>,
    store: ObjectStore,
    queues: Vec<InstQueues>,
    /// Instances with at least one queued signal, kept sorted ascending by
    /// id so the scheduler's random pick indexes the same candidate list
    /// the old per-step scan produced.
    ready: Vec<InstId>,
    /// Membership mirror of `ready`, indexed by instance.
    in_ready: Vec<bool>,
    timers: Vec<TimerEntry>,
    /// Pending external stimuli, kept sorted ascending by `(time, seq)`.
    /// Injection is overwhelmingly in time order, so maintaining the
    /// order on push is one back-element compare; delivery then streams
    /// `pop_front` over contiguous memory instead of sifting a binary
    /// heap per stimulus.
    stimuli: VecDeque<Stimulus>,
    now: u64,
    send_seq: u64,
    policy: SchedPolicy,
    rng: SplitMix64,
    trace: Trace,
    bridges: BTreeMap<ActorId, BridgeFn>,
    dropped: u64,
    max_steps: u64,
    /// Recycled execution frame: taken by each dispatch, returned after.
    frame_buf: Vec<Option<Value>>,
    /// Recycled candidate buffer for filtered selects (see
    /// [`ExecCtx::scratch`]).
    scratch_buf: Vec<InstId>,
    /// Recycled signal payload buffers, fed by finished dispatches and
    /// drained by the VM's computed sends.
    payloads: PayloadPool,
    /// Telemetry sink; `None` (the default) costs one predictable branch
    /// per instrumented site — the zero-cost-when-disabled contract.
    obs: Option<Box<Recorder>>,
}

impl std::fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("domain", &self.domain.name)
            .field("now", &self.now)
            .field("live", &self.store.live_count())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl<'d> Simulation<'d> {
    /// Creates a simulation with the default (seed 0, strict) policy.
    pub fn new(domain: &'d Domain) -> Simulation<'d> {
        Simulation::with_policy(domain, SchedPolicy::default())
    }

    /// Creates a simulation with an explicit scheduling policy.
    pub fn with_policy(domain: &'d Domain, policy: SchedPolicy) -> Simulation<'d> {
        let program = Rc::new(CompiledProgram::new(domain));
        let bc = Rc::new(BcProgram::new(domain, &program));
        let table = DispatchTable::new(domain, &program, &bc, Engine::default());
        Simulation {
            domain,
            program,
            bc,
            engine: Engine::default(),
            table,
            spans: None,
            store: ObjectStore::new(domain.associations.len()),
            queues: Vec::new(),
            ready: Vec::new(),
            in_ready: Vec::new(),
            timers: Vec::new(),
            stimuli: VecDeque::new(),
            now: 0,
            send_seq: 0,
            policy,
            rng: SplitMix64::new(policy.seed),
            trace: Trace::new(),
            bridges: BTreeMap::new(),
            dropped: 0,
            max_steps: 10_000_000,
            frame_buf: Vec::new(),
            scratch_buf: Vec::new(),
            payloads: PayloadPool::new(),
            obs: None,
        }
    }

    /// Attaches a telemetry recorder; counters and (when the recorder
    /// carries a span buffer) spans are recorded from here on. Counter
    /// values are deterministic: a pure function of the seed for a given
    /// model and stimulus schedule.
    pub fn attach_recorder(&mut self, rec: Recorder) {
        if rec.spans_enabled() && self.spans.is_none() {
            self.spans = Some(SpanNames::new(self.domain));
        }
        self.obs = Some(Box::new(rec));
    }

    /// Detaches and returns the recorder, if one is attached.
    pub fn take_recorder(&mut self) -> Option<Recorder> {
        self.obs.take().map(|b| *b)
    }

    /// The domain being executed.
    pub fn domain(&self) -> &'d Domain {
        self.domain
    }

    /// Current simulation time (ticks).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The instance population (read-only).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Number of events dropped in non-strict mode.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Caps the total number of dispatch steps per `run_*` call.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps = max;
    }

    /// Selects the action executor (default [`Engine::Bc`]) and
    /// re-resolves the dispatch table for it.
    pub fn set_engine(&mut self, engine: Engine) {
        if engine != self.engine {
            self.table = DispatchTable::new(self.domain, &self.program, &self.bc, engine);
        }
        self.engine = engine;
    }

    /// Sets the trace recording mode ([`TraceMode::Full`] by default).
    ///
    /// [`TraceMode::Off`] records nothing; differential and golden
    /// comparisons require `Full`.
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace.set_mode(mode);
    }

    /// The currently selected action executor.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Actions the bytecode lowering could not encode; these dispatch via
    /// the frame interpreter instead (diagnostic `X0016`).
    pub fn bc_fallbacks(&self) -> &[BcFallback] {
        &self.bc.fallbacks
    }

    /// Number of dispatch slots statically resolved to the frame
    /// interpreter because the bytecode lowering bailed (X0016), under
    /// the current engine. Zero when the engine is [`Engine::Frames`].
    pub fn bc_fallback_slots(&self) -> usize {
        self.table.fallback_slots()
    }

    /// Registers a handler for synchronous bridge calls on `actor`.
    ///
    /// Unhandled calls are traced and return the function's declared
    /// default (zero) value.
    ///
    /// # Errors
    ///
    /// Fails if the actor is unknown.
    pub fn register_bridge(
        &mut self,
        actor: &str,
        f: impl FnMut(&str, &[Value]) -> Result<Value> + 'static,
    ) -> Result<()> {
        let id = self.domain.actor_id(actor)?;
        self.bridges.insert(id, Box::new(f));
        Ok(())
    }

    /// Creates an instance of the named class.
    ///
    /// Creation places the instance in its initial state **without**
    /// executing that state's entry action (xtUML creation semantics).
    ///
    /// # Errors
    ///
    /// Fails if the class is unknown.
    pub fn create(&mut self, class: &str) -> Result<InstId> {
        let id = self.domain.class_id(class)?;
        ActionHost::create(self, id)
    }

    /// Relates two instances across the named association.
    ///
    /// # Errors
    ///
    /// Propagates store errors (multiplicity, class mismatch, dangling).
    pub fn relate(&mut self, a: InstId, b: InstId, assoc: &str) -> Result<()> {
        let id = self.domain.assoc_id(assoc)?;
        self.store.relate(self.domain, a, b, id)
    }

    /// Schedules an external stimulus: deliver `event` to `inst` at
    /// absolute time `time` (must not be in the past).
    ///
    /// # Errors
    ///
    /// Fails on unknown events, dead instances, arity mismatches or past
    /// times.
    pub fn inject(&mut self, time: u64, inst: InstId, event: &str, args: Vec<Value>) -> Result<()> {
        if time < self.now {
            return Err(CoreError::runtime(format!(
                "cannot inject at past time {time} (now {})",
                self.now
            )));
        }
        let class = self.store.class_of(inst)?;
        let c = self.domain.class(class);
        let event_id = c
            .event_id(event)
            .ok_or_else(|| CoreError::unresolved("event", format!("{}.{event}", c.name)))?;
        if c.events[event_id.index()].params.len() != args.len() {
            return Err(CoreError::runtime(format!(
                "event `{event}` takes {} argument(s), got {}",
                c.events[event_id.index()].params.len(),
                args.len()
            )));
        }
        self.send_seq += 1;
        let args = pooled_payload(&mut self.payloads, args);
        self.stim_insert(Stimulus {
            time,
            seq: self.send_seq,
            to: inst,
            event: event_id,
            args,
        });
        if let Some(o) = self.obs.as_mut() {
            o.count(Counter::StimuliInjected, 1);
            o.gauge_max(Gauge::StimulusHeapMax, self.stimuli.len() as u64);
        }
        Ok(())
    }

    /// Reads an attribute by name.
    ///
    /// # Errors
    ///
    /// Fails on unknown attributes or dangling instances.
    pub fn attr(&self, inst: InstId, name: &str) -> Result<Value> {
        let class = self.store.class_of(inst)?;
        let c = self.domain.class(class);
        let id = c
            .attr_id(name)
            .ok_or_else(|| CoreError::unresolved("attribute", format!("{}.{name}", c.name)))?;
        self.store.attr_read(inst, id)
    }

    /// The name of the instance's current state.
    ///
    /// # Errors
    ///
    /// Fails on dangling instances or passive classes.
    pub fn state_name(&self, inst: InstId) -> Result<&str> {
        let class = self.store.class_of(inst)?;
        let machine = self
            .domain
            .class(class)
            .state_machine
            .as_ref()
            .ok_or_else(|| CoreError::runtime("passive class has no states"))?;
        Ok(&machine.state(self.store.state_of(inst)?).name)
    }

    // -- the dispatch loop --------------------------------------------------

    /// Runs until no signal, timer or stimulus remains.
    ///
    /// Returns the number of dispatch steps taken.
    ///
    /// # Errors
    ///
    /// Propagates action runtime errors and, in strict mode, can't-happen
    /// events; fails if `max_steps` is exceeded.
    pub fn run_to_quiescence(&mut self) -> Result<u64> {
        if let Some(o) = self.obs.as_mut() {
            let track = o.track;
            o.span_begin(track, "sim", "run_to_quiescence");
        }
        let r = self.run_to_quiescence_inner();
        if let Some(o) = self.obs.as_mut() {
            let track = o.track;
            o.span_end(track);
        }
        r
    }

    fn run_to_quiescence_inner(&mut self) -> Result<u64> {
        let mut steps = 0u64;
        let cap = self.max_steps.saturating_add(1);
        loop {
            self.superloop(cap, &mut steps)?;
            if steps > self.max_steps {
                return Err(CoreError::runtime(format!(
                    "exceeded max_steps ({}) — livelock?",
                    self.max_steps
                )));
            }
            if !self.step()? {
                return Ok(steps);
            }
            steps += 1;
            if steps > self.max_steps {
                return Err(CoreError::runtime(format!(
                    "exceeded max_steps ({}) — livelock?",
                    self.max_steps
                )));
            }
        }
    }

    /// Runs at most `budget - *steps` dispatch steps through the
    /// superloop, batching while no interleaving concern exists. Callers
    /// fall back to [`Simulation::step`] for delivery and time jumps.
    ///
    /// The superloop is byte-identical to per-step dispatch because its
    /// preconditions make the skipped work provably dead: with no
    /// pending timer and no stimulus due at the current time,
    /// `deliver_due` is a no-op and no time jump can occur; and when a
    /// lone ready instance absorbs a scheduler draw, the draw is still
    /// consumed (`below(1)` advances the PRNG exactly like any pick) so
    /// the random stream — and hence every later pick — is unchanged.
    /// Stimuli scheduled for the *future* are fine: the loop re-checks
    /// the (sorted) queue front after every dispatch, since each
    /// dispatch advances `now` and can make the front due.
    fn superloop(&mut self, budget: u64, steps: &mut u64) -> Result<()> {
        while *steps < budget
            && !self.ready.is_empty()
            && self.timers.is_empty()
            && self.stimuli.front().is_none_or(|s| s.time > self.now)
        {
            let pick = self.ready[self.rng.below(self.ready.len())];
            // Same-instance batch: drain `pick`'s queues in a tight
            // inner loop without re-entering ready-set bookkeeping,
            // for as long as it provably remains the only candidate.
            loop {
                let env = self.pop_envelope(pick);
                let drained = self.queues[pick.index()].is_empty();
                if drained {
                    self.unmark_ready(pick);
                }
                self.dispatch(pick, env)?;
                self.now += 1;
                *steps += 1;
                if *steps >= budget
                    || drained
                    || !self.timers.is_empty()
                    || self.stimuli.front().is_some_and(|s| s.time <= self.now)
                    || self.ready.len() != 1
                    || self.ready[0] != pick
                {
                    break;
                }
                // The scheduler would re-draw over a single candidate;
                // consume that draw to keep the stream identical.
                self.rng.below(1);
            }
        }
        Ok(())
    }

    /// Runs at most `budget` dispatch steps, batching through the
    /// superloop (the serve daemon's step path). `ran` is incremented
    /// per dispatch — also on error, so callers can account fuel.
    /// Returns `true` when the run reached quiescence before the budget
    /// was exhausted.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run_to_quiescence`], except `max_steps`
    /// does not apply (the budget is the cap).
    pub fn run_steps(&mut self, budget: u64, ran: &mut u64) -> Result<bool> {
        loop {
            self.superloop(budget, ran)?;
            if *ran >= budget {
                return Ok(false);
            }
            if !self.step()? {
                return Ok(true);
            }
            *ran += 1;
        }
    }

    /// Runs until simulation time reaches `deadline` or quiescence.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run_to_quiescence`].
    pub fn run_until(&mut self, deadline: u64) -> Result<u64> {
        let mut steps = 0u64;
        while self.now < deadline {
            if !self.step()? {
                break;
            }
            steps += 1;
            if steps > self.max_steps {
                return Err(CoreError::runtime(format!(
                    "exceeded max_steps ({}) — livelock?",
                    self.max_steps
                )));
            }
        }
        Ok(steps)
    }

    /// Performs one dispatch step; returns `false` at quiescence.
    ///
    /// # Errors
    ///
    /// Propagates action errors and strict-mode can't-happen events.
    pub fn step(&mut self) -> Result<bool> {
        loop {
            // Pure signal traffic (no pending timer or stimulus) has
            // nothing to deliver; skip the scan entirely.
            if !self.timers.is_empty() || !self.stimuli.is_empty() {
                self.deliver_due();
            }
            if self.ready.is_empty() {
                // Jump to the next timer/stimulus moment, if any.
                let next = self
                    .timers
                    .iter()
                    .map(|t| t.deadline)
                    .chain(self.stimuli.front().map(|s| s.time))
                    .min();
                match next {
                    Some(t) if t > self.now => {
                        self.now = t;
                        continue;
                    }
                    Some(_) => continue, // due now; deliver on next loop
                    None => return Ok(false),
                }
            }
            let pick = self.ready[self.rng.below(self.ready.len())];
            let env = self.pop_envelope(pick);
            if self.queues[pick.index()].is_empty() {
                self.unmark_ready(pick);
            }
            self.dispatch(pick, env)?;
            self.now += 1;
            return Ok(true);
        }
    }

    /// Inserts a stimulus, maintaining the `(time, seq)` sort. The
    /// common case — injection in nondecreasing time order — is a
    /// single compare against the back element.
    fn stim_insert(&mut self, s: Stimulus) {
        let in_order = self
            .stimuli
            .back()
            .is_none_or(|b| (b.time, b.seq) <= (s.time, s.seq));
        if in_order {
            self.stimuli.push_back(s);
        } else {
            let at = self
                .stimuli
                .partition_point(|q| (q.time, q.seq) < (s.time, s.seq));
            self.stimuli.insert(at, s);
        }
    }

    /// Moves due stimuli and timers into instance queues, in `(time, seq)`
    /// order.
    fn deliver_due(&mut self) {
        let now = self.now;
        if !self.timers.iter().any(|t| t.deadline <= now) {
            // Fast path (no due timer — in particular, pure signal
            // traffic): heap pops already come out in (time, seq) order,
            // the exact order the old collect-and-sort produced, because
            // `seq` is globally unique across timers and stimuli.
            while self.stimuli.front().is_some_and(|s| s.time <= now) {
                let s = self.stimuli.pop_front().expect("peeked above");
                if !self.store.is_alive(s.to) {
                    continue; // instance died while the stimulus was in flight
                }
                self.enqueue(
                    s.to,
                    Envelope {
                        from: None,
                        event: s.event,
                        args: s.args,
                        seq: s.seq,
                    },
                );
            }
            return;
        }
        // General path: merge due timers and due stimuli by (time, seq).
        // (time, seq, to, from, event, args)
        type Due = (u64, u64, InstId, Option<InstId>, EventId, Arc<[Value]>);
        let mut due: Vec<Due> = Vec::new();
        while self.stimuli.front().is_some_and(|s| s.time <= now) {
            let s = self.stimuli.pop_front().expect("peeked above");
            due.push((s.time, s.seq, s.to, None, s.event, s.args));
        }
        self.timers.retain(|t| {
            if t.deadline <= now {
                due.push((
                    t.deadline,
                    t.seq,
                    t.to,
                    Some(t.from),
                    t.event,
                    Arc::clone(&t.args),
                ));
                false
            } else {
                true
            }
        });
        // Deterministic delivery order: by (time, seq).
        due.sort_by_key(|(time, seq, ..)| (*time, *seq));
        for (_, seq, to, from, event, args) in due {
            if !self.store.is_alive(to) {
                continue; // instance died while the signal was in flight
            }
            if from.is_some() {
                if let Some(o) = self.obs.as_mut() {
                    o.count(Counter::TimersFired, 1);
                }
            }
            self.enqueue(
                to,
                Envelope {
                    from,
                    event,
                    args,
                    seq,
                },
            );
        }
    }

    fn enqueue(&mut self, to: InstId, env: Envelope) {
        let is_self = self.policy.self_priority && env.from == Some(to);
        let q = &mut self.queues[to.index()];
        if is_self {
            q.self_q.push_back(env);
        } else {
            q.main_q.push_back(env);
        }
        self.mark_ready(to);
    }

    /// Inserts `inst` into the sorted ready list if not already present.
    /// Only live instances reach here: every enqueue path checks liveness
    /// first, and deletion clears the queues and unmarks.
    fn mark_ready(&mut self, inst: InstId) {
        if !self.in_ready[inst.index()] {
            self.in_ready[inst.index()] = true;
            let at = self.ready.partition_point(|&r| r < inst);
            self.ready.insert(at, inst);
        }
    }

    fn unmark_ready(&mut self, inst: InstId) {
        if self.in_ready[inst.index()] {
            self.in_ready[inst.index()] = false;
            let at = self.ready.partition_point(|&r| r < inst);
            debug_assert_eq!(self.ready.get(at), Some(&inst));
            self.ready.remove(at);
        }
    }

    fn pop_envelope(&mut self, inst: InstId) -> Envelope {
        // Decide any random index *before* borrowing the queue mutably.
        let (self_len, main_len) = {
            let q = &self.queues[inst.index()];
            (q.self_q.len(), q.main_q.len())
        };
        let q_idx = if !self.policy.pair_order {
            // Ablation: pick a random position instead of the front.
            let total = self_len + main_len;
            Some(self.rng.below(total))
        } else {
            None
        };
        let q = &mut self.queues[inst.index()];
        match q_idx {
            Some(k) => {
                if k < q.self_q.len() {
                    q.self_q.remove(k).expect("index checked")
                } else {
                    let k = k - q.self_q.len();
                    q.main_q.remove(k).expect("index checked")
                }
            }
            None => {
                if !q.self_q.is_empty() {
                    q.self_q.pop_front().expect("checked nonempty")
                } else {
                    q.main_q.pop_front().expect("ready instance has a signal")
                }
            }
        }
    }

    fn dispatch(&mut self, inst: InstId, env: Envelope) -> Result<()> {
        // Detach the table so the slot borrow does not pin `self`
        // (actions need the host mutably). Dispatch is not reentrant, so
        // nothing observes the hole.
        let table = std::mem::take(&mut self.table);
        let out = self.dispatch_with(&table, inst, env);
        self.table = table;
        out
    }

    fn dispatch_with(&mut self, table: &DispatchTable, inst: InstId, env: Envelope) -> Result<()> {
        let (class, from_state) = self.store.class_state(inst)?;
        let Some(cs) = table.class(class) else {
            return Err(CoreError::runtime(format!(
                "signal sent to passive class {}",
                self.domain.class(class).name
            )));
        };
        let mut rtc_span = false;
        if let Some(o) = self.obs.as_mut() {
            o.count(Counter::SignalsDispatched, 1);
            if o.spans_enabled() {
                let track = o.track;
                match &self.spans {
                    Some(sn) => o.span_begin(track, "rtc", sn.rtc(class, env.event)),
                    None => {
                        let c = self.domain.class(class);
                        let name = format!("{}.{}", c.name, c.events[env.event.index()].name);
                        o.span_begin(track, "rtc", &name);
                    }
                }
                rtc_span = true;
            }
        }
        let out = match cs.slot(from_state, env.event) {
            Slot::Run { to, exec } => {
                let to_state = *to;
                self.store.set_state(inst, to_state)?;
                self.trace.push_dispatch(
                    self.now, inst, env.from, env.event, env.seq, from_state, to_state,
                );
                if let Some(o) = self.obs.as_mut() {
                    o.count(Counter::TransitionsFired, 1);
                    if o.spans_enabled() {
                        let track = o.track;
                        match &self.spans {
                            Some(sn) => o.span_begin(track, "action", sn.action(class, to_state)),
                            None => {
                                let c = self.domain.class(class);
                                let machine = c.state_machine.as_ref().expect("active class");
                                let name =
                                    format!("action {}.{}", c.name, machine.state(to_state).name);
                                o.span_begin(track, "action", &name);
                            }
                        }
                    }
                }
                let run = match exec {
                    Exec::Nop { vm } => {
                        // Provably effect-free body: no frame, no ctx, no
                        // VM entry. Counters must match a real execution.
                        if *vm {
                            if let Some(o) = self.obs.as_mut() {
                                o.count(Counter::BcActions, 1);
                            }
                        }
                        Ok(interp::Outcome::Completed)
                    }
                    Exec::Vm(bca) => {
                        if let Some(o) = self.obs.as_mut() {
                            o.count(Counter::BcActions, 1);
                        }
                        // Recycle one frame allocation across dispatches.
                        let mut frame = std::mem::take(&mut self.frame_buf);
                        frame.clear();
                        frame.resize(bca.n_regs, None);
                        let mut ctx = ExecCtx::with_frame(inst, class, frame);
                        ctx.scratch = std::mem::take(&mut self.scratch_buf);
                        ctx.bind_args(env.args.iter().cloned());
                        let r = bc::run_bc(self, &mut ctx, bca);
                        self.frame_buf = std::mem::take(&mut ctx.frame);
                        self.scratch_buf = std::mem::take(&mut ctx.scratch);
                        r
                    }
                    Exec::Frames { fallback } => {
                        if *fallback {
                            if let Some(o) = self.obs.as_mut() {
                                o.count(Counter::BcFallbacks, 1);
                            }
                        }
                        // The frame interpreter needs the compiled action.
                        // Clone the program handle so the action borrow
                        // does not pin `self` (which the interpreter needs
                        // mutably).
                        let program = Rc::clone(&self.program);
                        let action =
                            program.action(class, to_state, env.event).ok_or_else(|| {
                                CoreError::runtime(
                                    "internal: dispatched pair has no compiled action",
                                )
                            })??;
                        let mut frame = std::mem::take(&mut self.frame_buf);
                        frame.clear();
                        frame.resize(action.frame_len(), None);
                        let mut ctx = ExecCtx::with_frame(inst, class, frame);
                        ctx.scratch = std::mem::take(&mut self.scratch_buf);
                        ctx.bind_args(env.args.iter().cloned());
                        let r = interp::run_code(self, &mut ctx, action);
                        self.frame_buf = std::mem::take(&mut ctx.frame);
                        self.scratch_buf = std::mem::take(&mut ctx.scratch);
                        r
                    }
                };
                if let Some(o) = self.obs.as_mut() {
                    if o.spans_enabled() {
                        let track = o.track;
                        o.span_end(track);
                    }
                }
                run?;
                Ok(())
            }
            Slot::Ignore => {
                if let Some(o) = self.obs.as_mut() {
                    o.count(Counter::SignalsIgnored, 1);
                }
                self.trace.push_ignored(self.now, inst, env.event);
                Ok(())
            }
            Slot::CantHappen => {
                if self.policy.strict {
                    let c = self.domain.class(class);
                    let machine = c.state_machine.as_ref().expect("active class");
                    Err(CoreError::CantHappen {
                        class: c.name.clone(),
                        state: machine.state(from_state).name.clone(),
                        event: c.events[env.event.index()].name.clone(),
                    })
                } else {
                    self.dropped += 1;
                    if let Some(o) = self.obs.as_mut() {
                        o.count(Counter::SignalsDropped, 1);
                    }
                    self.trace.push_dropped(self.now, inst, env.event);
                    Ok(())
                }
            }
        };
        if rtc_span {
            if let Some(o) = self.obs.as_mut() {
                let track = o.track;
                o.span_end(track);
            }
        }
        // The envelope is fully consumed: offer its payload buffer to the
        // next computed send.
        self.payloads.recycle(env.args);
        out
    }

    // -- snapshot / restore -------------------------------------------------

    /// Number of pending (not yet delivered) external stimuli — the
    /// bound the serve daemon's per-session backpressure checks against.
    pub fn pending_stimuli(&self) -> usize {
        self.stimuli.len()
    }

    /// Serializes the full execution state (DESIGN §15).
    ///
    /// Captures everything execution can observe: the population, signal
    /// queues, timers, pending stimuli, the scheduler PRNG state, the
    /// trace so far, and the deterministic metrics of an attached
    /// recorder. [`Simulation::restore`] continues **byte-identically**
    /// to an uninterrupted run. Not captured (see [`crate::snapshot`]):
    /// registered bridges, wall-clock telemetry, allocation caches.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = snapshot::Writer::with_header(snapshot::KIND_SEQUENTIAL, self.domain);
        w.u64(self.policy.seed);
        w.bool(self.policy.self_priority);
        w.bool(self.policy.pair_order);
        w.bool(self.policy.strict);
        w.u32(self.policy.shards as u32);
        w.u8(match self.engine {
            Engine::Frames => 0,
            Engine::Bc => 1,
        });
        w.u64(self.now);
        w.u64(self.send_seq);
        w.u64(self.dropped);
        w.u64(self.max_steps);
        w.u64(self.rng.state());
        self.store.snap_write(&mut w);
        w.len(self.queues.len());
        for q in &self.queues {
            for half in [&q.self_q, &q.main_q] {
                w.len(half.len());
                for e in half {
                    snap_write_env(&mut w, e);
                }
            }
        }
        w.len(self.timers.len());
        for t in &self.timers {
            w.u64(t.deadline);
            w.u64(t.seq);
            w.u32(u32::from(t.from));
            w.u32(u32::from(t.to));
            w.u32(u32::from(t.event));
            snapshot::write_values(&mut w, &t.args);
        }
        // The queue invariant keeps stimuli sorted by the total
        // (time, seq) key, so plain iteration produces the same bytes
        // the old sort-then-write did.
        w.len(self.stimuli.len());
        for s in &self.stimuli {
            w.u64(s.time);
            w.u64(s.seq);
            w.u32(u32::from(s.to));
            w.u32(u32::from(s.event));
            snapshot::write_values(&mut w, &s.args);
        }
        w.len(self.trace.len());
        for e in self.trace.iter() {
            snapshot::write_trace_event(&mut w, &e);
        }
        match self.obs.as_deref() {
            Some(rec) => {
                w.bool(true);
                w.u32(rec.track);
                w.bool(rec.stream_epochs);
                snapshot::write_metrics(&mut w, &rec.metrics.to_raw());
            }
            None => w.bool(false),
        }
        w.finish()
    }

    /// Rebuilds a simulation from a [`Simulation::snapshot`] against the
    /// same domain.
    ///
    /// The restored simulation continues byte-identically to the one the
    /// snapshot was taken from. Bridges are **not** restored (re-register
    /// them); an attached recorder comes back with its deterministic
    /// metrics only (no span buffer, zeroed wall-clock timing).
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapError`] — never panics — on truncated
    /// or corrupt input, version or kind mismatch, or a snapshot taken
    /// against a different domain.
    pub fn restore(domain: &'d Domain, bytes: &[u8]) -> SnapResult<Simulation<'d>> {
        let (mut r, kind) = snapshot::Reader::open(bytes, domain)?;
        if kind != snapshot::KIND_SEQUENTIAL {
            return Err(SnapError::Corrupt(format!(
                "expected a sequential snapshot, got kind {kind}"
            )));
        }
        let policy = SchedPolicy {
            seed: r.u64()?,
            self_priority: r.bool()?,
            pair_order: r.bool()?,
            strict: r.bool()?,
            shards: r.u32()? as usize,
        };
        let engine = match r.u8()? {
            0 => Engine::Frames,
            1 => Engine::Bc,
            t => return Err(SnapError::Corrupt(format!("bad engine tag {t}"))),
        };
        let mut sim = Simulation::with_policy(domain, policy);
        sim.set_engine(engine);
        sim.now = r.u64()?;
        sim.send_seq = r.u64()?;
        sim.dropped = r.u64()?;
        sim.max_steps = r.u64()?;
        sim.rng = SplitMix64::from_state(r.u64()?);
        sim.store = ObjectStore::snap_read(&mut r)?;
        let nq = r.len(8)?;
        if nq != sim.store.id_space() {
            return Err(SnapError::Corrupt(format!(
                "{nq} instance queues for an id space of {}",
                sim.store.id_space()
            )));
        }
        sim.queues = Vec::with_capacity(nq);
        for _ in 0..nq {
            let mut q = InstQueues::default();
            for half in [&mut q.self_q, &mut q.main_q] {
                let n = r.len(10)?;
                for _ in 0..n {
                    half.push_back(snap_read_env(&mut r)?);
                }
            }
            sim.queues.push(q);
        }
        let nt = r.len(30)?;
        sim.timers = Vec::with_capacity(nt);
        for _ in 0..nt {
            sim.timers.push(TimerEntry {
                deadline: r.u64()?,
                seq: r.u64()?,
                from: InstId::new(r.u32()?),
                to: InstId::new(r.u32()?),
                event: EventId::new(r.u32()?),
                args: snapshot::read_values(&mut r)?,
            });
        }
        let ns = r.len(32)?;
        sim.stimuli.reserve(ns);
        for _ in 0..ns {
            // Snapshots write stimuli in (time, seq) order; stim_insert
            // keeps that invariant (and repairs a hand-edited snapshot).
            sim.stim_insert(Stimulus {
                time: r.u64()?,
                seq: r.u64()?,
                to: InstId::new(r.u32()?),
                event: EventId::new(r.u32()?),
                args: snapshot::read_values(&mut r)?,
            });
        }
        let ne = r.len(13)?;
        sim.trace.reserve(ne);
        for _ in 0..ne {
            sim.trace.push(snapshot::read_trace_event(&mut r)?);
        }
        if r.bool()? {
            let mut rec = Recorder::new();
            rec.track = r.u32()?;
            rec.stream_epochs = r.bool()?;
            rec.metrics = xtuml_obs::Metrics::from_raw(snapshot::read_metrics(&mut r)?);
            sim.obs = Some(Box::new(rec));
        }
        r.expect_end()?;
        // The ready set is derived state: exactly the instances with a
        // non-empty queue, ascending by id (the sorted-list invariant).
        sim.in_ready = vec![false; sim.queues.len()];
        for (i, q) in sim.queues.iter().enumerate() {
            if !q.is_empty() {
                sim.in_ready[i] = true;
                sim.ready.push(InstId::new(i as u32));
            }
        }
        Ok(sim)
    }
}

fn snap_write_env(w: &mut snapshot::Writer, e: &Envelope) {
    snapshot::write_opt_inst(w, e.from);
    w.u32(u32::from(e.event));
    w.u64(e.seq);
    snapshot::write_values(w, &e.args);
}

fn snap_read_env(r: &mut snapshot::Reader<'_>) -> SnapResult<Envelope> {
    Ok(Envelope {
        from: snapshot::read_opt_inst(r)?,
        event: EventId::new(r.u32()?),
        seq: r.u64()?,
        args: snapshot::read_values(r)?,
    })
}

impl ActionHost for Simulation<'_> {
    fn domain(&self) -> &Domain {
        self.domain
    }

    fn create(&mut self, class: ClassId) -> Result<InstId> {
        let inst = self.store.create(self.domain, class);
        self.queues.push(InstQueues::default());
        self.in_ready.push(false);
        debug_assert_eq!(self.queues.len() - 1, inst.index());
        if let Some(o) = self.obs.as_mut() {
            o.count(Counter::InstancesCreated, 1);
            o.gauge_max(Gauge::LiveInstancesMax, self.store.live_count() as u64);
        }
        self.trace.push_create(self.now, inst, class);
        Ok(inst)
    }

    fn delete(&mut self, inst: InstId) -> Result<()> {
        self.store.delete(inst)?;
        self.queues[inst.index()] = InstQueues::default();
        self.unmark_ready(inst);
        self.timers.retain(|t| t.to != inst);
        if let Some(o) = self.obs.as_mut() {
            o.count(Counter::InstancesDeleted, 1);
        }
        self.trace.push_delete(self.now, inst);
        Ok(())
    }

    fn class_of(&self, inst: InstId) -> Result<ClassId> {
        self.store.class_of(inst)
    }

    fn attr_read(&self, inst: InstId, attr: AttrId) -> Result<Value> {
        self.store.attr_read(inst, attr)
    }

    fn attr_write(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()> {
        self.store.attr_write(self.domain, inst, attr, value)
    }

    fn attr_write_typed(&mut self, inst: InstId, attr: AttrId, value: Value) -> Result<()> {
        self.store.attr_write_typed(inst, attr, value)
    }

    fn take_payload(&mut self, len: usize) -> Option<Arc<[Value]>> {
        self.payloads.take(len)
    }

    fn instances_of(&self, class: ClassId) -> Vec<InstId> {
        self.store.instances_of(class)
    }

    fn related(&self, inst: InstId, assoc: AssocId) -> Result<Vec<InstId>> {
        self.store.related(inst, assoc)
    }

    fn each_instance(&self, class: ClassId, f: &mut dyn FnMut(InstId)) {
        self.store.instances_iter(class).for_each(f);
    }

    fn first_instance_of(&self, class: ClassId) -> Option<InstId> {
        self.store.first_instance_of(class)
    }

    fn related_each(&self, inst: InstId, assoc: AssocId, f: &mut dyn FnMut(InstId)) -> Result<()> {
        self.store.related_iter(inst, assoc)?.for_each(f);
        Ok(())
    }

    fn relate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()> {
        self.store.relate(self.domain, a, b, assoc)
    }

    fn unrelate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> Result<()> {
        self.store.unrelate(a, b, assoc)
    }

    fn send(&mut self, from: InstId, to: InstId, event: EventId, args: Vec<Value>) -> Result<()> {
        self.send_arc(from, to, event, Arc::from(args))
    }

    fn send_arc(
        &mut self,
        from: InstId,
        to: InstId,
        event: EventId,
        args: Arc<[Value]>,
    ) -> Result<()> {
        self.store.class_of(to)?; // liveness check
        self.send_seq += 1;
        let env = Envelope {
            from: Some(from),
            event,
            args,
            seq: self.send_seq,
        };
        self.enqueue(to, env);
        if let Some(o) = self.obs.as_mut() {
            o.count(Counter::SignalsSent, 1);
            if from == to {
                o.count(Counter::SelfSignals, 1);
            }
            o.gauge_max(Gauge::ReadySetMax, self.ready.len() as u64);
        }
        Ok(())
    }

    fn send_actor(
        &mut self,
        from: InstId,
        actor: ActorId,
        event: EventId,
        args: Vec<Value>,
    ) -> Result<()> {
        self.send_actor_arc(from, actor, event, Arc::from(args))
    }

    fn send_actor_arc(
        &mut self,
        _from: InstId,
        actor: ActorId,
        event: EventId,
        args: Arc<[Value]>,
    ) -> Result<()> {
        if let Some(o) = self.obs.as_mut() {
            o.count(Counter::ActorSignals, 1);
        }
        self.trace.push_actor_signal(self.now, actor, event, args);
        Ok(())
    }

    fn send_delayed(
        &mut self,
        from: InstId,
        to: InstId,
        event: EventId,
        args: Vec<Value>,
        delay: i64,
    ) -> Result<()> {
        self.store.class_of(to)?;
        self.send_seq += 1;
        self.timers.push(TimerEntry {
            deadline: self.now + delay as u64,
            seq: self.send_seq,
            from,
            to,
            event,
            args: Arc::from(args),
        });
        if let Some(o) = self.obs.as_mut() {
            o.count(Counter::TimersSet, 1);
            o.gauge_max(Gauge::TimerListMax, self.timers.len() as u64);
        }
        Ok(())
    }

    fn cancel_delayed(&mut self, inst: InstId, event: EventId) -> Result<()> {
        let before = self.timers.len();
        self.timers.retain(|t| !(t.to == inst && t.event == event));
        if let Some(o) = self.obs.as_mut() {
            o.count(
                Counter::TimersCancelled,
                (before - self.timers.len()) as u64,
            );
        }
        Ok(())
    }

    fn bridge_call(&mut self, actor: ActorId, func: &str, args: Vec<Value>) -> Result<Value> {
        let a = self.domain.actor(actor);
        let decl = a
            .func(func)
            .ok_or_else(|| CoreError::unresolved("bridge function", func))?;
        let ret_ty = decl.ret;
        if let Some(o) = self.obs.as_mut() {
            o.count(Counter::BridgeCalls, 1);
        }
        self.trace
            .push_bridge_call(self.now, actor, func, Arc::from(args.as_slice()));
        if let Some(handler) = self.bridges.get_mut(&actor) {
            return handler(func, &args);
        }
        Ok(match ret_ty {
            Some(t) => Value::default_for(t),
            None => Value::Bool(false),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use xtuml_core::builder::{pipeline_domain, DomainBuilder};
    use xtuml_core::value::DataType;

    fn counter_domain() -> Domain {
        let mut b = DomainBuilder::new("demo");
        b.actor("OUT").event("done", &[("v", DataType::Int)]);
        b.class("Counter")
            .attr("n", DataType::Int)
            .event("Bump", &[])
            .event("Reset", &[])
            .state("Idle", "")
            .state("Bumping", "self.n = self.n + 1; gen done(self.n) to OUT;")
            .state("Zero", "self.n = 0;")
            .initial("Idle")
            .transition("Idle", "Bump", "Bumping")
            .transition("Bumping", "Bump", "Bumping")
            .transition("Bumping", "Reset", "Zero")
            .transition("Zero", "Bump", "Bumping")
            .ignore("Idle", "Reset");
        b.build().unwrap()
    }

    #[test]
    fn basic_dispatch_and_observables() {
        let d = counter_domain();
        let mut sim = Simulation::new(&d);
        let c = sim.create("Counter").unwrap();
        sim.inject(0, c, "Bump", vec![]).unwrap();
        sim.inject(1, c, "Bump", vec![]).unwrap();
        sim.inject(2, c, "Reset", vec![]).unwrap();
        sim.inject(3, c, "Bump", vec![]).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.attr(c, "n").unwrap(), Value::Int(1));
        assert_eq!(sim.state_name(c).unwrap(), "Bumping");
        let obs = sim.trace().observable(&d);
        assert_eq!(obs.len(), 3);
        assert_eq!(obs[0].args, vec![Value::Int(1)]);
        assert_eq!(obs[1].args, vec![Value::Int(2)]);
        assert_eq!(obs[2].args, vec![Value::Int(1)]);
    }

    #[test]
    fn ignore_consumes_silently() {
        let d = counter_domain();
        let mut sim = Simulation::new(&d);
        let c = sim.create("Counter").unwrap();
        sim.inject(0, c, "Reset", vec![]).unwrap(); // ignored in Idle
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.state_name(c).unwrap(), "Idle");
        assert!(sim
            .trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::Ignored { .. })));
    }

    #[test]
    fn cant_happen_errors_in_strict_mode() {
        let mut b = DomainBuilder::new("m");
        b.class("C")
            .event("E", &[])
            .event("F", &[])
            .state("S", "")
            .initial("S")
            .transition("S", "E", "S");
        let d = b.build().unwrap();
        let mut sim = Simulation::new(&d);
        let c = sim.create("C").unwrap();
        sim.inject(0, c, "F", vec![]).unwrap();
        let err = sim.run_to_quiescence().unwrap_err();
        assert!(matches!(err, CoreError::CantHappen { .. }));
    }

    #[test]
    fn cant_happen_dropped_in_lenient_mode() {
        let mut b = DomainBuilder::new("m");
        b.class("C")
            .event("E", &[])
            .event("F", &[])
            .state("S", "")
            .initial("S")
            .transition("S", "E", "S");
        let d = b.build().unwrap();
        let mut sim = Simulation::with_policy(
            &d,
            SchedPolicy {
                strict: false,
                ..SchedPolicy::default()
            },
        );
        let c = sim.create("C").unwrap();
        sim.inject(0, c, "F", vec![]).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.dropped_events(), 1);
    }

    #[test]
    fn timers_fire_in_order() {
        let mut b = DomainBuilder::new("m");
        b.actor("OUT").event("fired", &[("tag", DataType::Int)]);
        b.class("T")
            .event("Arm", &[])
            .event("Late", &[("tag", DataType::Int)])
            .state("Idle", "")
            .state(
                "Armed",
                "gen Late(2) to self after 20;\n\
                 gen Late(1) to self after 10;",
            )
            .state("Fired", "gen fired(rcvd.tag) to OUT;")
            .initial("Idle")
            .transition("Idle", "Arm", "Armed")
            .transition("Armed", "Late", "Fired")
            .transition("Fired", "Late", "Fired");
        let d = b.build().unwrap();
        let mut sim = Simulation::new(&d);
        let t = sim.create("T").unwrap();
        sim.inject(0, t, "Arm", vec![]).unwrap();
        sim.run_to_quiescence().unwrap();
        let obs = sim.trace().observable(&d);
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].args, vec![Value::Int(1)]);
        assert_eq!(obs[1].args, vec![Value::Int(2)]);
        assert!(sim.now() >= 20);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut b = DomainBuilder::new("m");
        b.actor("OUT").event("fired", &[]);
        b.class("T")
            .event("Arm", &[])
            .event("Disarm", &[])
            .event("Late", &[])
            .state("Idle", "")
            .state("Armed", "gen Late() to self after 50;")
            .state("Safe", "cancel Late;")
            .state("Boom", "gen fired() to OUT;")
            .initial("Idle")
            .transition("Idle", "Arm", "Armed")
            .transition("Armed", "Disarm", "Safe")
            .transition("Armed", "Late", "Boom");
        let d = b.build().unwrap();
        let mut sim = Simulation::new(&d);
        let t = sim.create("T").unwrap();
        sim.inject(0, t, "Arm", vec![]).unwrap();
        sim.inject(1, t, "Disarm", vec![]).unwrap();
        sim.run_to_quiescence().unwrap();
        assert!(sim.trace().observable(&d).is_empty());
        assert_eq!(sim.state_name(t).unwrap(), "Safe");
    }

    #[test]
    fn self_events_preempt_external_ones() {
        // In state Work, the instance sends itself Finish. An external
        // Next is already queued. With self-priority, Finish must be
        // consumed first.
        let mut b = DomainBuilder::new("m");
        b.actor("OUT").event("seen", &[("which", DataType::Int)]);
        b.class("W")
            .event("Go", &[])
            .event("Next", &[])
            .event("Finish", &[])
            .state("Idle", "")
            .state("Work", "gen Finish() to self;")
            .state("Done", "gen seen(1) to OUT;")
            .state("Nexted", "gen seen(2) to OUT;")
            .initial("Idle")
            .transition("Idle", "Go", "Work")
            .transition("Work", "Finish", "Done")
            .transition("Work", "Next", "Nexted")
            .transition("Done", "Next", "Nexted")
            .ignore("Nexted", "Finish");
        let d = b.build().unwrap();
        let mut sim = Simulation::new(&d);
        let w = sim.create("W").unwrap();
        sim.inject(0, w, "Go", vec![]).unwrap();
        sim.inject(0, w, "Next", vec![]).unwrap();
        sim.run_to_quiescence().unwrap();
        let obs = sim.trace().observable(&d);
        let order: Vec<i64> = obs.iter().map(|o| o.args[0].as_int().unwrap()).collect();
        assert_eq!(order, vec![1, 2], "self event must be consumed first");
    }

    #[test]
    fn same_seed_same_trace_different_seed_may_differ() {
        let d = pipeline_domain(4).unwrap();
        let run = |seed: u64| {
            let mut sim = Simulation::with_policy(&d, SchedPolicy::seeded(seed));
            let insts: Vec<InstId> = (0..4)
                .map(|k| sim.create(&format!("Stage{k}")).unwrap())
                .collect();
            for k in 0..3 {
                sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
                    .unwrap();
            }
            for i in 0..8 {
                sim.inject(i, insts[0], "Feed", vec![Value::Int(i as i64)])
                    .unwrap();
            }
            sim.run_to_quiescence().unwrap();
            sim.trace().clone()
        };
        let t1 = run(1);
        let t2 = run(1);
        assert_eq!(t1, t2, "same seed must reproduce the trace exactly");
        // Observable outputs must be identical across seeds for this
        // deterministic pipeline (it is confluent).
        let t3 = run(99);
        assert_eq!(
            t1.observable(&d),
            t3.observable(&d),
            "pipeline output is interleaving-independent"
        );
    }

    #[test]
    fn causality_holds_with_rules_on() {
        let d = pipeline_domain(3).unwrap();
        let mut sim = Simulation::new(&d);
        let insts: Vec<InstId> = (0..3)
            .map(|k| sim.create(&format!("Stage{k}")).unwrap())
            .collect();
        for k in 0..2 {
            sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
                .unwrap();
        }
        for i in 0..20 {
            sim.inject(i, insts[0], "Feed", vec![Value::Int(0)])
                .unwrap();
        }
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.trace().causality_violations(), 0);
    }

    #[test]
    fn pair_order_ablation_can_violate_causality() {
        // One sender fires many ordered signals at one receiver; with FIFO
        // off, some pair must eventually be dispatched out of order.
        let mut b = DomainBuilder::new("m");
        b.class("Recv")
            .attr("last", DataType::Int)
            .event("Msg", &[("k", DataType::Int)])
            .state("Idle", "")
            .state("Got", "self.last = rcvd.k;")
            .initial("Idle")
            .transition("Idle", "Msg", "Got")
            .transition("Got", "Msg", "Got");
        b.class("Send")
            .event("Go", &[])
            .state("Idle", "")
            .state(
                "Burst",
                "select any r from Recv;\n\
                 k = 0;\n\
                 while (k < 50) { gen Msg(k) to r; k = k + 1; }",
            )
            .initial("Idle")
            .transition("Idle", "Go", "Burst");
        let d = b.build().unwrap();
        let mut violated = false;
        for seed in 0..10 {
            let mut sim = Simulation::with_policy(
                &d,
                SchedPolicy {
                    pair_order: false,
                    ..SchedPolicy::seeded(seed)
                },
            );
            let _r = sim.create("Recv").unwrap();
            let s = sim.create("Send").unwrap();
            sim.inject(0, s, "Go", vec![]).unwrap();
            sim.run_to_quiescence().unwrap();
            if sim.trace().causality_violations() > 0 {
                violated = true;
                break;
            }
        }
        assert!(violated, "ablating pair order must eventually reorder");
    }

    #[test]
    fn delete_drops_in_flight_signals() {
        let mut b = DomainBuilder::new("m");
        b.actor("OUT").event("late", &[]);
        b.class("Victim")
            .event("Poke", &[])
            .state("Idle", "")
            .state("Poked", "gen late() to OUT;")
            .initial("Idle")
            .transition("Idle", "Poke", "Poked")
            .transition("Poked", "Poke", "Poked");
        b.class("Killer")
            .event("Go", &[])
            .state("Idle", "")
            .state(
                "Kill",
                "select any v from Victim;\n\
                 gen Poke() to v after 100;\n\
                 delete v;",
            )
            .initial("Idle")
            .transition("Idle", "Go", "Kill");
        let d = b.build().unwrap();
        let mut sim = Simulation::new(&d);
        let _v = sim.create("Victim").unwrap();
        let k = sim.create("Killer").unwrap();
        sim.inject(0, k, "Go", vec![]).unwrap();
        sim.run_to_quiescence().unwrap();
        assert!(sim.trace().observable(&d).is_empty());
    }

    #[test]
    fn bridge_handler_receives_calls() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut b = DomainBuilder::new("m");
        b.actor("MATH")
            .func("abs", &[("v", DataType::Int)], Some(DataType::Int));
        b.class("C")
            .attr("r", DataType::Int)
            .event("E", &[])
            .state("Idle", "")
            .state("Calc", "self.r = MATH::abs(-5);")
            .initial("Idle")
            .transition("Idle", "E", "Calc");
        let d = b.build().unwrap();
        let mut sim = Simulation::new(&d);
        let calls = Rc::new(RefCell::new(0));
        let calls2 = calls.clone();
        sim.register_bridge("MATH", move |func, args| {
            *calls2.borrow_mut() += 1;
            assert_eq!(func, "abs");
            Ok(Value::Int(args[0].as_int()?.abs()))
        })
        .unwrap();
        let c = sim.create("C").unwrap();
        sim.inject(0, c, "E", vec![]).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.attr(c, "r").unwrap(), Value::Int(5));
        assert_eq!(*calls.borrow(), 1);
    }

    #[test]
    fn unregistered_bridge_returns_default() {
        let mut b = DomainBuilder::new("m");
        b.actor("MATH")
            .func("abs", &[("v", DataType::Int)], Some(DataType::Int));
        b.class("C")
            .attr("r", DataType::Int)
            .event("E", &[])
            .state("Idle", "")
            .state("Calc", "self.r = MATH::abs(-5) + 7;")
            .initial("Idle")
            .transition("Idle", "E", "Calc");
        let d = b.build().unwrap();
        let mut sim = Simulation::new(&d);
        let c = sim.create("C").unwrap();
        sim.inject(0, c, "E", vec![]).unwrap();
        sim.run_to_quiescence().unwrap();
        assert_eq!(sim.attr(c, "r").unwrap(), Value::Int(7));
    }

    #[test]
    fn inject_validates_event_and_time() {
        let d = counter_domain();
        let mut sim = Simulation::new(&d);
        let c = sim.create("Counter").unwrap();
        assert!(sim.inject(0, c, "Nope", vec![]).is_err());
        assert!(sim.inject(0, c, "Bump", vec![Value::Int(1)]).is_err());
        sim.inject(5, c, "Bump", vec![]).unwrap();
        sim.run_to_quiescence().unwrap();
        assert!(sim.inject(0, c, "Bump", vec![]).is_err(), "past time");
    }

    #[test]
    fn max_steps_guards_livelock() {
        let mut b = DomainBuilder::new("m");
        b.class("Loop")
            .event("E", &[])
            .state("A", "gen E() to self;")
            .initial("A")
            .transition("A", "E", "A");
        let d = b.build().unwrap();
        let mut sim = Simulation::new(&d);
        sim.set_max_steps(100);
        let c = sim.create("Loop").unwrap();
        sim.inject(0, c, "E", vec![]).unwrap();
        let err = sim.run_to_quiescence().unwrap_err();
        assert!(err.to_string().contains("max_steps"));
    }

    #[test]
    fn snapshot_mid_run_continues_byte_identically() {
        let d = pipeline_domain(4).unwrap();
        let setup = |sim: &mut Simulation| {
            let insts: Vec<InstId> = (0..4)
                .map(|k| sim.create(&format!("Stage{k}")).unwrap())
                .collect();
            for k in 0..3 {
                sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
                    .unwrap();
            }
            for i in 0..12 {
                sim.inject(i, insts[0], "Feed", vec![Value::Int(i as i64)])
                    .unwrap();
            }
        };
        let mut reference = Simulation::with_policy(&d, SchedPolicy::seeded(7));
        setup(&mut reference);
        reference.run_to_quiescence().unwrap();

        for cut in [0u64, 1, 5, 11] {
            let mut sim = Simulation::with_policy(&d, SchedPolicy::seeded(7));
            setup(&mut sim);
            for _ in 0..cut {
                assert!(sim.step().unwrap());
            }
            let bytes = sim.snapshot();
            let mut restored = Simulation::restore(&d, &bytes).unwrap();
            restored.run_to_quiescence().unwrap();
            assert_eq!(
                restored.trace(),
                reference.trace(),
                "divergence after restoring at step {cut}"
            );
            assert_eq!(restored.now(), reference.now());
            // A second snapshot of the same state is byte-identical.
            let mut again = Simulation::restore(&d, &bytes).unwrap();
            assert_eq!(again.snapshot(), bytes);
            again.run_to_quiescence().unwrap();
            assert_eq!(again.trace(), reference.trace());
        }
    }

    #[test]
    fn corrupt_snapshots_error_structurally() {
        let d = counter_domain();
        let mut sim = Simulation::new(&d);
        let c = sim.create("Counter").unwrap();
        sim.inject(0, c, "Bump", vec![]).unwrap();
        let bytes = sim.snapshot();
        // Every truncation must produce SnapError, never a panic.
        for cut in 0..bytes.len() {
            assert!(Simulation::restore(&d, &bytes[..cut]).is_err());
        }
        // Trailing garbage is rejected too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(Simulation::restore(&d, &long).is_err());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let d = counter_domain();
        let mut sim = Simulation::new(&d);
        let c = sim.create("Counter").unwrap();
        for i in 0..100 {
            sim.inject(i, c, "Bump", vec![]).unwrap();
        }
        sim.run_until(10).unwrap();
        assert!(sim.now() >= 10);
        let n = sim.attr(c, "n").unwrap().as_int().unwrap();
        assert!(n < 100);
    }
}
