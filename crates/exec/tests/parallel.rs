//! Determinism contract of the sharded engine.
//!
//! The guarantee under test: a sharded run's trace is a pure function of
//! `(seed, shards)` — the worker count (`jobs`) must never appear in the
//! output. Single-shard runs must reproduce the classic sequential
//! schedule byte-for-byte, and on confluent models the observable
//! projection must agree between the sequential and sharded schedules.

use xtuml_core::builder::{pipeline_domain, DomainBuilder};
use xtuml_core::model::Domain;
use xtuml_core::value::{DataType, Value};
use xtuml_exec::{shard_safety, SchedPolicy, ShardedSimulation, Simulation};

const SEEDS: u64 = 16;

/// Runs the sharded pipeline and renders its full trace.
fn sharded_pipeline_trace(
    domain: &Domain,
    stages: usize,
    seed: u64,
    shards: usize,
    jobs: usize,
) -> String {
    let policy = SchedPolicy::seeded(seed).with_shards(shards);
    let mut sim = ShardedSimulation::with_policy(domain, policy);
    let insts: Vec<_> = (0..stages)
        .map(|k| sim.create(&format!("Stage{k}")).unwrap())
        .collect();
    for k in 0..stages - 1 {
        sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
            .unwrap();
    }
    for i in 0..12 {
        sim.inject(i, insts[0], "Feed", vec![Value::Int(i as i64)])
            .unwrap();
    }
    sim.run_to_quiescence(jobs).unwrap();
    sim.trace().render(domain)
}

#[test]
fn trace_is_invariant_under_worker_count() {
    let stages = 6;
    let domain = pipeline_domain(stages).unwrap();
    for shards in [2, 4, 8] {
        for seed in 0..SEEDS {
            let reference = sharded_pipeline_trace(&domain, stages, seed, shards, 1);
            for jobs in [2, 4, 8] {
                let got = sharded_pipeline_trace(&domain, stages, seed, shards, jobs);
                assert_eq!(
                    reference, got,
                    "seed {seed} shards {shards}: jobs=1 vs jobs={jobs} diverged"
                );
            }
        }
    }
}

#[test]
fn single_shard_reproduces_the_sequential_schedule() {
    let stages = 5;
    let domain = pipeline_domain(stages).unwrap();
    for seed in 0..SEEDS {
        let sharded = sharded_pipeline_trace(&domain, stages, seed, 1, 4);
        let mut sim = Simulation::with_policy(&domain, SchedPolicy::seeded(seed));
        let insts: Vec<_> = (0..stages)
            .map(|k| sim.create(&format!("Stage{k}")).unwrap())
            .collect();
        for k in 0..stages - 1 {
            sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
                .unwrap();
        }
        for i in 0..12 {
            sim.inject(i, insts[0], "Feed", vec![Value::Int(i as i64)])
                .unwrap();
        }
        sim.run_to_quiescence().unwrap();
        assert_eq!(
            sim.trace().render(&domain),
            sharded,
            "seed {seed}: shards=1 must replay the sequential engine exactly"
        );
    }
}

#[test]
fn sharded_runs_are_reproducible_and_distinct_across_shard_counts() {
    let stages = 6;
    let domain = pipeline_domain(stages).unwrap();
    for seed in 0..4 {
        let a = sharded_pipeline_trace(&domain, stages, seed, 4, 2);
        let b = sharded_pipeline_trace(&domain, stages, seed, 4, 2);
        assert_eq!(a, b, "same (seed, shards) must reproduce");
    }
}

#[test]
fn observable_output_agrees_between_sequential_and_sharded() {
    // The pipeline is confluent: every legal interleaving produces the
    // same observable outputs in the same order. The sharded schedule is
    // one more legal interleaving, so its observable projection must
    // match the sequential one.
    let stages = 6;
    let domain = pipeline_domain(stages).unwrap();
    let run_observable = |shards: usize, seed: u64| {
        let policy = SchedPolicy::seeded(seed).with_shards(shards);
        let mut sim = ShardedSimulation::with_policy(&domain, policy);
        let insts: Vec<_> = (0..stages)
            .map(|k| sim.create(&format!("Stage{k}")).unwrap())
            .collect();
        for k in 0..stages - 1 {
            sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
                .unwrap();
        }
        for i in 0..12 {
            sim.inject(i, insts[0], "Feed", vec![Value::Int(i as i64)])
                .unwrap();
        }
        sim.run_to_quiescence(2).unwrap();
        sim.trace().observable(&domain)
    };
    let sequential = run_observable(1, 0);
    assert!(!sequential.is_empty());
    for shards in [2, 4, 8] {
        for seed in 0..4 {
            assert_eq!(
                run_observable(shards, seed),
                sequential,
                "confluent pipeline must produce identical observables (shards {shards}, seed {seed})"
            );
        }
    }
}

#[test]
fn sharded_runs_preserve_causality() {
    let stages = 8;
    let domain = pipeline_domain(stages).unwrap();
    for (shards, seed) in [(2, 1u64), (4, 7), (8, 13)] {
        let policy = SchedPolicy::seeded(seed).with_shards(shards);
        let mut sim = ShardedSimulation::with_policy(&domain, policy);
        let insts: Vec<_> = (0..stages)
            .map(|k| sim.create(&format!("Stage{k}")).unwrap())
            .collect();
        for k in 0..stages - 1 {
            sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
                .unwrap();
        }
        for i in 0..20 {
            sim.inject(i, insts[0], "Feed", vec![Value::Int(0)])
                .unwrap();
        }
        sim.run_to_quiescence(4).unwrap();
        assert_eq!(
            sim.trace().causality_violations(),
            0,
            "shards {shards} seed {seed}"
        );
    }
}

#[test]
fn shard_local_livelock_errors_instead_of_hanging() {
    // An action that unconditionally signals itself never quiesces, so
    // the shard's epoch can never end. The epoch must enforce the step
    // budget itself — the sequential engine errors with the same
    // message — and the error must be jobs-invariant like everything
    // else.
    let mut b = DomainBuilder::new("m");
    b.class("L")
        .event("Tick", &[])
        .state("Idle", "")
        .state("Spin", "gen Tick() to self;")
        .initial("Idle")
        .transition("Idle", "Tick", "Spin")
        .transition("Spin", "Tick", "Spin");
    let domain = b.build().unwrap();
    shard_safety(&domain).unwrap();

    let run = |shards: usize, jobs: usize| {
        let policy = SchedPolicy::seeded(0).with_shards(shards);
        let mut sim = ShardedSimulation::with_policy(&domain, policy);
        sim.set_max_steps(10_000);
        let insts: Vec<_> = (0..4).map(|_| sim.create("L").unwrap()).collect();
        for t in &insts {
            sim.inject(0, *t, "Tick", vec![]).unwrap();
        }
        sim.run_to_quiescence(jobs).unwrap_err().to_string()
    };
    for shards in [2usize, 4] {
        let reference = run(shards, 1);
        assert!(reference.contains("livelock"), "{reference}");
        for jobs in [2usize, 4] {
            assert_eq!(reference, run(shards, jobs), "shards {shards}");
        }
    }
}

#[test]
fn shard_safety_accepts_signal_only_models_and_rejects_mutation() {
    let domain = pipeline_domain(4).unwrap();
    shard_safety(&domain).unwrap();

    // Creating a class something selects over is rejected (the created
    // instance would be visible to other shards' selects)...
    let mut b = DomainBuilder::new("m");
    b.class("Spawner")
        .event("Go", &[])
        .event("Probe", &[])
        .state("Idle", "")
        .state("Spawning", "v = create Spawner;")
        .state("Probing", "select many vs from Spawner;")
        .initial("Idle")
        .transition("Idle", "Go", "Spawning")
        .transition("Spawning", "Probe", "Probing");
    let err = shard_safety(&b.build().unwrap()).unwrap_err();
    assert!(err.to_string().contains("creates an instance"), "{err}");

    // ...a *confined* create (nothing selects the class) is admitted...
    let mut b = DomainBuilder::new("m");
    b.class("Spawner")
        .event("Go", &[])
        .state("Idle", "")
        .state("Spawning", "v = create Spawner;")
        .initial("Idle")
        .transition("Idle", "Go", "Spawning");
    shard_safety(&b.build().unwrap()).unwrap();

    // ...and writing another instance's attribute through a `select`
    // binding stays rejected: no shard placement makes it local.
    let mut b = DomainBuilder::new("m");
    b.class("Writer")
        .attr("x", DataType::Int)
        .event("Go", &[])
        .state("Idle", "")
        .state("Writing", "select any o from Writer;\no.x = 1;")
        .initial("Idle")
        .transition("Idle", "Go", "Writing");
    let err = shard_safety(&b.build().unwrap()).unwrap_err();
    assert!(err.to_string().contains("non-self attribute"), "{err}");
}

#[test]
fn unsafe_model_is_rejected_before_running() {
    // `delete` is never admitted: other shards replicate the population
    // and would keep dispatching to the deleted instance.
    let mut b = DomainBuilder::new("m");
    b.class("Reaper")
        .event("Go", &[])
        .state("Idle", "")
        .state("Reaping", "select any v from Reaper;\ndelete v;")
        .initial("Idle")
        .transition("Idle", "Go", "Reaping");
    let domain = b.build().unwrap();
    let policy = SchedPolicy::seeded(0).with_shards(4);
    let mut sim = ShardedSimulation::with_policy(&domain, policy);
    let s = sim.create("Reaper").unwrap();
    sim.inject(0, s, "Go", vec![]).unwrap();
    let err = sim.run_to_quiescence(2).unwrap_err();
    assert!(err.to_string().contains("not shard-safe"), "{err}");
}

/// A model admitted by the effect analysis (confined create + write to
/// the created instance): it must actually run sharded, stay
/// jobs-invariant, and allocate shard-congruent ids.
#[test]
fn admitted_create_runs_sharded_and_is_jobs_invariant() {
    let mut b = DomainBuilder::new("m");
    b.actor("OUT").event("spawned", &[("tag", DataType::Int)]);
    b.class("P")
        .event("Go", &[("tag", DataType::Int)])
        .state("Idle", "")
        .state(
            "Spawning",
            "k = create K;\nk.x = rcvd.tag;\ngen spawned(k.x) to OUT;",
        )
        .initial("Idle")
        .transition("Idle", "Go", "Spawning");
    b.class("K").attr("x", DataType::Int);
    let domain = b.build().unwrap();
    shard_safety(&domain).unwrap();

    let run = |shards: usize, jobs: usize| {
        let policy = SchedPolicy::seeded(7).with_shards(shards);
        let mut sim = ShardedSimulation::with_policy(&domain, policy);
        let insts: Vec<_> = (0..6).map(|_| sim.create("P").unwrap()).collect();
        for (i, p) in insts.iter().enumerate() {
            sim.inject(0, *p, "Go", vec![Value::Int(i as i64)]).unwrap();
        }
        sim.run_to_quiescence(jobs).unwrap();
        assert!(sim.runtime_fallback().is_none());
        (sim.trace().render(&domain), sim.trace().observable(&domain))
    };
    for shards in [2usize, 4] {
        let (trace_j1, obs_j1) = run(shards, 1);
        for jobs in [2usize, 4] {
            let (trace_jn, obs_jn) = run(shards, jobs);
            assert_eq!(trace_j1, trace_jn, "shards {shards} jobs {jobs}");
            assert_eq!(obs_j1, obs_jn);
        }
        // Every spawner reported the tag it stored in its private K —
        // creation is shard-local, so no write was lost or aliased.
        let mut tags: Vec<i64> = obs_j1.iter().map(|o| o.args[0].as_int().unwrap()).collect();
        tags.sort_unstable();
        assert_eq!(tags, (0..6).collect::<Vec<i64>>(), "shards {shards}");
    }
}

/// Colocation-admitted navigation: the model writes a child attribute
/// only via one association. With colocated links it runs sharded; with
/// a link crossing shards it silently delegates to the sequential
/// engine and reports why.
#[test]
fn coloc_admission_checks_links_at_runtime() {
    let mut b = DomainBuilder::new("m");
    b.actor("OUT").event("sum", &[("v", DataType::Int)]);
    b.class("P")
        .event("Go", &[("v", DataType::Int)])
        .state("Idle", "")
        .state(
            "Writing",
            "any(self -> C[R1]).w = rcvd.v;\ngen sum(any(self -> C[R1]).w) to OUT;",
        )
        .initial("Idle")
        .transition("Idle", "Go", "Writing");
    b.class("C").attr("w", DataType::Int);
    b.association(
        "R1",
        "P",
        xtuml_core::model::Multiplicity::One,
        "C",
        xtuml_core::model::Multiplicity::One,
    );
    let domain = b.build().unwrap();
    shard_safety(&domain).unwrap();

    // Colocated population: parent 2k and child 2k+1 share a shard at
    // shards=2? No — 2k and 2k+1 differ mod 2. Interleave so pairs are
    // (0,2), (1,3): same parity, same shard at shards=2.
    let run = |coloc: bool, jobs: usize| {
        let policy = SchedPolicy::seeded(5).with_shards(2);
        let mut sim = ShardedSimulation::with_policy(&domain, policy);
        if coloc {
            let p0 = sim.create("P").unwrap(); // id 0
            let p1 = sim.create("P").unwrap(); // id 1
            let c0 = sim.create("C").unwrap(); // id 2
            let c1 = sim.create("C").unwrap(); // id 3
            sim.relate(p0, c0, "R1").unwrap(); // 0-2: same shard
            sim.relate(p1, c1, "R1").unwrap(); // 1-3: same shard
            sim.inject(0, p0, "Go", vec![Value::Int(10)]).unwrap();
            sim.inject(0, p1, "Go", vec![Value::Int(20)]).unwrap();
        } else {
            let p0 = sim.create("P").unwrap(); // id 0
            let c0 = sim.create("C").unwrap(); // id 1: crosses shards
            sim.relate(p0, c0, "R1").unwrap();
            sim.inject(0, p0, "Go", vec![Value::Int(10)]).unwrap();
        }
        sim.run_to_quiescence(jobs).unwrap();
        let fb = sim.runtime_fallback().map(str::to_owned);
        (sim.trace().render(&domain), fb)
    };
    let (t1, fb1) = run(true, 1);
    let (t2, fb2) = run(true, 2);
    assert_eq!(t1, t2, "colocated run must be jobs-invariant");
    assert!(fb1.is_none() && fb2.is_none());
    assert!(t1.contains("sum"), "{t1}");

    let (_, fb) = run(false, 2);
    let reason = fb.expect("cross-shard link must trigger runtime fallback");
    assert!(reason.contains("R1"), "{reason}");
}

/// Sets up the standard pipeline workload on a sharded simulation.
fn setup_pipeline(sim: &mut ShardedSimulation<'_>, stages: usize) {
    let insts: Vec<_> = (0..stages)
        .map(|k| sim.create(&format!("Stage{k}")).unwrap())
        .collect();
    for k in 0..stages - 1 {
        sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
            .unwrap();
    }
    for i in 0..12 {
        sim.inject(i, insts[0], "Feed", vec![Value::Int(i as i64)])
            .unwrap();
    }
}

#[test]
fn epoch_paused_run_matches_uninterrupted_run() {
    // run_epochs(jobs, 1) pauses at every barrier; driving the run one
    // epoch at a time must reproduce the uninterrupted trace exactly.
    let stages = 6;
    let domain = pipeline_domain(stages).unwrap();
    for (shards, seed) in [(2usize, 3u64), (4, 11)] {
        let reference = sharded_pipeline_trace(&domain, stages, seed, shards, 2);
        let policy = SchedPolicy::seeded(seed).with_shards(shards);
        let mut sim = ShardedSimulation::with_policy(&domain, policy);
        setup_pipeline(&mut sim, stages);
        let mut pauses = 0u32;
        while sim.run_epochs(2, 1).unwrap().is_none() {
            pauses += 1;
            assert!(pauses < 10_000, "runaway epoch loop");
        }
        assert!(pauses > 0, "pipeline must take more than one epoch");
        assert!(sim.runtime_fallback().is_none());
        assert_eq!(sim.trace().render(&domain), reference, "shards {shards}");
    }
}

#[test]
fn snapshot_at_every_barrier_restores_byte_identically() {
    // Snapshot + restore at every epoch barrier, continuing each time in
    // the restored engine: the final trace must be byte-identical to an
    // uninterrupted run, and re-snapshotting a restored engine must
    // reproduce the snapshot bytes exactly.
    let stages = 6;
    let domain = pipeline_domain(stages).unwrap();
    for (shards, seed) in [(2usize, 3u64), (4, 11)] {
        let reference = sharded_pipeline_trace(&domain, stages, seed, shards, 2);
        let policy = SchedPolicy::seeded(seed).with_shards(shards);
        let mut sim = ShardedSimulation::with_policy(&domain, policy);
        setup_pipeline(&mut sim, stages);
        let mut restores = 0u32;
        let total = loop {
            match sim.run_epochs(2, 1).unwrap() {
                Some(total) => break total,
                None => {
                    let bytes = sim.snapshot();
                    sim = ShardedSimulation::restore(&domain, &bytes).unwrap();
                    assert_eq!(sim.snapshot(), bytes, "re-snapshot must be stable");
                    restores += 1;
                    assert!(restores < 10_000, "runaway epoch loop");
                }
            }
        };
        assert!(restores > 0 && total > 0);
        assert_eq!(sim.trace().render(&domain), reference, "shards {shards}");

        // A post-quiescence snapshot round-trips the finished run too.
        let done = sim.snapshot();
        let back = ShardedSimulation::restore(&domain, &done).unwrap();
        assert_eq!(back.trace().render(&domain), reference);
        assert_eq!(back.now(), sim.now());
    }
}

#[test]
fn sharded_snapshot_preserves_timers_and_metrics() {
    // Timer-armed model: pause/snapshot/restore at every barrier while
    // timers are pending, with a recorder attached; the trace and the
    // deterministic metrics must match the uninterrupted run.
    let mut b = DomainBuilder::new("m");
    b.actor("OUT").event("fired", &[("tag", DataType::Int)]);
    b.class("T")
        .event("Arm", &[("tag", DataType::Int)])
        .event("Disarm", &[])
        .event("Late", &[("tag", DataType::Int)])
        .state("Idle", "")
        .state("Armed", "gen Late(rcvd.tag) to self after 10;")
        .state("Safe", "cancel Late;")
        .state("Fired", "gen fired(rcvd.tag) to OUT;")
        .initial("Idle")
        .transition("Idle", "Arm", "Armed")
        .transition("Armed", "Disarm", "Safe")
        .transition("Armed", "Late", "Fired");
    let domain = b.build().unwrap();
    let setup = |sim: &mut ShardedSimulation<'_>| {
        let insts: Vec<_> = (0..4).map(|_| sim.create("T").unwrap()).collect();
        for (i, t) in insts.iter().enumerate() {
            sim.inject(0, *t, "Arm", vec![Value::Int(i as i64)])
                .unwrap();
        }
        sim.inject(1, insts[2], "Disarm", vec![]).unwrap();
    };

    let policy = SchedPolicy::seeded(3).with_shards(4);
    let mut plain = ShardedSimulation::with_policy(&domain, policy);
    plain.attach_recorder(xtuml_obs::Recorder::new());
    setup(&mut plain);
    plain.run_to_quiescence(2).unwrap();
    let want_trace = plain.trace().render(&domain);
    let want_metrics = plain.take_recorder().unwrap().metrics.to_json();

    let mut sim = ShardedSimulation::with_policy(&domain, policy);
    sim.attach_recorder(xtuml_obs::Recorder::new());
    setup(&mut sim);
    let mut restores = 0u32;
    while sim.run_epochs(2, 1).unwrap().is_none() {
        let bytes = sim.snapshot();
        sim = ShardedSimulation::restore(&domain, &bytes).unwrap();
        restores += 1;
        assert!(restores < 10_000, "runaway epoch loop");
    }
    assert!(restores > 0);
    assert_eq!(sim.trace().render(&domain), want_trace);
    assert_eq!(
        sim.take_recorder().unwrap().metrics.to_json(),
        want_metrics,
        "deterministic metrics must survive snapshot/restore"
    );
}

#[test]
fn timers_and_cancellation_work_sharded() {
    // One instance per shard arms a timer; one disarms before it fires.
    let mut b = DomainBuilder::new("m");
    b.actor("OUT").event("fired", &[("tag", DataType::Int)]);
    b.class("T")
        .event("Arm", &[("tag", DataType::Int)])
        .event("Disarm", &[])
        .event("Late", &[("tag", DataType::Int)])
        .state("Idle", "")
        .state("Armed", "gen Late(rcvd.tag) to self after 10;")
        .state("Safe", "cancel Late;")
        .state("Fired", "gen fired(rcvd.tag) to OUT;")
        .initial("Idle")
        .transition("Idle", "Arm", "Armed")
        .transition("Armed", "Disarm", "Safe")
        .transition("Armed", "Late", "Fired");
    let domain = b.build().unwrap();
    let run = |shards: usize, jobs: usize| {
        let policy = SchedPolicy::seeded(3).with_shards(shards);
        let mut sim = ShardedSimulation::with_policy(&domain, policy);
        let insts: Vec<_> = (0..4).map(|_| sim.create("T").unwrap()).collect();
        for (i, t) in insts.iter().enumerate() {
            sim.inject(0, *t, "Arm", vec![Value::Int(i as i64)])
                .unwrap();
        }
        // Disarm instance 2 before its timer can fire.
        sim.inject(1, insts[2], "Disarm", vec![]).unwrap();
        sim.run_to_quiescence(jobs).unwrap();
        (sim.trace().render(&domain), sim.trace().observable(&domain))
    };
    let (trace_j1, obs) = run(4, 1);
    let (trace_j4, obs_j4) = run(4, 4);
    assert_eq!(trace_j1, trace_j4, "timer traces must be jobs-invariant");
    assert_eq!(obs, obs_j4);
    let tags: Vec<i64> = obs.iter().map(|o| o.args[0].as_int().unwrap()).collect();
    assert_eq!(tags.len(), 3, "three timers fire, one was cancelled");
    assert!(!tags.contains(&2), "cancelled timer must not fire");
}
