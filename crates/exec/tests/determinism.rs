//! Determinism and golden-trace regression tests.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Seed determinism**: for a fixed model and [`SchedPolicy`] seed the
//!    rendered trace is byte-identical across runs — and across internal
//!    rewrites of the scheduler (the incremental ready set must present
//!    the same candidate order as the old per-step scan).
//! 2. **Render stability**: the golden files were captured before trace
//!    events switched from embedded name strings to ids; id-based events
//!    must render to exactly the same text.
//!
//! Regenerate goldens with:
//! `GOLDEN_BLESS=1 cargo test -p xtuml-exec --test determinism`

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use xtuml_core::builder::{pipeline_domain, DomainBuilder};
use xtuml_core::ids::InstId;
use xtuml_core::model::Domain;
use xtuml_core::value::{DataType, Value};
use xtuml_exec::{SchedPolicy, Simulation};

/// Renders the full trace plus the observable projection as one string.
fn snapshot(sim: &Simulation, domain: &Domain) -> String {
    let mut out = sim.trace().render(domain);
    out.push_str("--- observable ---\n");
    for o in sim.trace().observable(domain) {
        let _ = writeln!(out, "{o}");
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed golden file, or rewrites the
/// file when `GOLDEN_BLESS` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; regenerate with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "trace diverged from golden {name}; if the change is intentional \
         regenerate with GOLDEN_BLESS=1"
    );
}

/// Runs the 4-stage pipeline workload under the given seed and snapshots
/// the trace.
fn pipeline_snapshot(seed: u64) -> String {
    let d = pipeline_domain(4).unwrap();
    let mut sim = Simulation::with_policy(&d, SchedPolicy::seeded(seed));
    let insts: Vec<InstId> = (0..4)
        .map(|k| sim.create(&format!("Stage{k}")).unwrap())
        .collect();
    for k in 0..3 {
        sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
            .unwrap();
    }
    for i in 0..8 {
        sim.inject(i, insts[0], "Feed", vec![Value::Int(i as i64)])
            .unwrap();
    }
    sim.run_to_quiescence().unwrap();
    snapshot(&sim, &d)
}

/// A model exercising every trace-event kind: creates, deletes, timers,
/// an ignored event, actor signals, and bridge calls.
fn kitchen_sink_snapshot(seed: u64) -> String {
    let mut b = DomainBuilder::new("sink");
    b.actor("OUT").event("done", &[("v", DataType::Int)]).func(
        "log",
        &[("v", DataType::Int)],
        None,
    );
    b.class("Worker")
        .attr("n", DataType::Int)
        .event("Go", &[("v", DataType::Int)])
        .event("Tick", &[])
        .event("Stop", &[])
        .state("Idle", "")
        .state(
            "Busy",
            "self.n = rcvd.v;\n\
             OUT::log(self.n);\n\
             gen Tick() to self after 5;",
        )
        .state(
            "Winding",
            "gen done(self.n) to OUT;\n\
             gen Stop() to self;",
        )
        .state("Gone", "delete self;")
        .initial("Idle")
        .transition("Idle", "Go", "Busy")
        .transition("Busy", "Tick", "Winding")
        .transition("Winding", "Stop", "Gone")
        .ignore("Busy", "Go");
    let d = b.build().unwrap();
    let mut sim = Simulation::with_policy(&d, SchedPolicy::seeded(seed));
    let w1 = sim.create("Worker").unwrap();
    let w2 = sim.create("Worker").unwrap();
    sim.inject(0, w1, "Go", vec![Value::Int(10)]).unwrap();
    sim.inject(0, w2, "Go", vec![Value::Int(20)]).unwrap();
    sim.inject(1, w1, "Go", vec![Value::Int(99)]).unwrap(); // ignored in Busy
    sim.run_to_quiescence().unwrap();
    snapshot(&sim, &d)
}

#[test]
fn pipeline_trace_matches_golden_for_fixed_seeds() {
    for seed in [1u64, 42] {
        check_golden(
            &format!("pipeline_seed{seed}.txt"),
            &pipeline_snapshot(seed),
        );
    }
}

#[test]
fn kitchen_sink_trace_matches_golden() {
    check_golden("kitchen_sink_seed7.txt", &kitchen_sink_snapshot(7));
}

#[test]
fn same_seed_reruns_are_byte_identical() {
    assert_eq!(pipeline_snapshot(9), pipeline_snapshot(9));
    assert_eq!(kitchen_sink_snapshot(9), kitchen_sink_snapshot(9));
}
