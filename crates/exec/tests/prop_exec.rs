//! Property tests for the execution substrate: the object store against a
//! simple reference model, and interpreter determinism.
//!
//! Runs offline on the in-repo `xtuml-prop` harness; reproduce a failure
//! with the `XTUML_PROP_SEED` value printed on panic.

use std::collections::BTreeSet;
use xtuml_core::builder::{pipeline_domain, DomainBuilder};
use xtuml_core::ids::{AttrId, ClassId, InstId};
use xtuml_core::value::{DataType, Value};
use xtuml_exec::{ObjectStore, SchedPolicy, Simulation};
use xtuml_prop::Gen;

#[derive(Debug, Clone)]
enum StoreOp {
    Create(u8),       // class index
    Delete(u8),       // instance ordinal (mod created)
    Write(u8, i64),   // instance ordinal, value
    Relate(u8, u8),   // instance ordinals
    Unrelate(u8, u8), // instance ordinals
}

fn store_op(g: &mut Gen) -> StoreOp {
    match g.below(5) {
        0 => StoreOp::Create(g.below(2) as u8),
        1 => StoreOp::Delete(g.next_u64() as u8),
        2 => StoreOp::Write(g.next_u64() as u8, g.int_in(-100, 99)),
        3 => StoreOp::Relate(g.next_u64() as u8, g.next_u64() as u8),
        _ => StoreOp::Unrelate(g.next_u64() as u8, g.next_u64() as u8),
    }
}

fn two_class_domain() -> xtuml_core::Domain {
    let mut b = DomainBuilder::new("t");
    b.class("A").attr("x", DataType::Int);
    b.class("B").attr("x", DataType::Int);
    b.association(
        "R1",
        "A",
        xtuml_core::Multiplicity::Many,
        "B",
        xtuml_core::Multiplicity::Many,
    );
    b.build().unwrap()
}

/// The store agrees with a naive reference model under arbitrary
/// operation sequences (liveness, attribute values, link symmetry).
#[test]
fn prop_store_matches_reference() {
    xtuml_prop::run("store_matches_reference", |g| {
        let n_ops = g.index(60);
        let ops: Vec<StoreOp> = (0..n_ops).map(|_| store_op(g)).collect();
        let domain = two_class_domain();
        let mut store = ObjectStore::new(domain.associations.len());
        // Reference: (class, value, alive) per instance + link set.
        let mut reference: Vec<(u8, i64, bool)> = Vec::new();
        let mut links: BTreeSet<(usize, usize)> = BTreeSet::new();
        let r1 = domain.assoc_id("R1").unwrap();

        for op in ops {
            match op {
                StoreOp::Create(class) => {
                    let id = store.create(&domain, ClassId::new(u32::from(class)));
                    assert_eq!(id.index(), reference.len());
                    reference.push((class, 0, true));
                }
                StoreOp::Delete(ord) => {
                    if reference.is_empty() {
                        continue;
                    }
                    let i = usize::from(ord) % reference.len();
                    let result = store.delete(InstId::new(i as u32));
                    assert_eq!(result.is_ok(), reference[i].2);
                    if reference[i].2 {
                        reference[i].2 = false;
                        links.retain(|(a, b)| *a != i && *b != i);
                    }
                }
                StoreOp::Write(ord, v) => {
                    if reference.is_empty() {
                        continue;
                    }
                    let i = usize::from(ord) % reference.len();
                    let result = store.attr_write(
                        &domain,
                        InstId::new(i as u32),
                        AttrId::new(0),
                        Value::Int(v),
                    );
                    assert_eq!(result.is_ok(), reference[i].2);
                    if reference[i].2 {
                        reference[i].1 = v;
                    }
                }
                StoreOp::Relate(oa, ob) => {
                    if reference.is_empty() {
                        continue;
                    }
                    let a = usize::from(oa) % reference.len();
                    let b = usize::from(ob) % reference.len();
                    let (ca, cb) = (reference[a].0, reference[b].0);
                    let ok_classes = ca != cb; // R1 links A with B
                    let key = if ca == 0 { (a, b) } else { (b, a) };
                    let expect_ok =
                        reference[a].2 && reference[b].2 && ok_classes && !links.contains(&key);
                    let result =
                        store.relate(&domain, InstId::new(a as u32), InstId::new(b as u32), r1);
                    assert_eq!(result.is_ok(), expect_ok, "relate {a} {b}");
                    if expect_ok {
                        links.insert(key);
                    }
                }
                StoreOp::Unrelate(oa, ob) => {
                    if reference.is_empty() {
                        continue;
                    }
                    let a = usize::from(oa) % reference.len();
                    let b = usize::from(ob) % reference.len();
                    let existed = links.remove(&(a, b)) || links.remove(&(b, a));
                    let result = store.unrelate(InstId::new(a as u32), InstId::new(b as u32), r1);
                    assert_eq!(result.is_ok(), existed);
                }
            }
            // Global invariants after every op.
            let live = reference.iter().filter(|(_, _, alive)| *alive).count();
            assert_eq!(store.live_count(), live);
            for (i, (class, v, alive)) in reference.iter().enumerate() {
                let id = InstId::new(i as u32);
                assert_eq!(store.is_alive(id), *alive);
                if *alive {
                    assert_eq!(store.class_of(id).unwrap().index(), usize::from(*class));
                    assert_eq!(store.attr_read(id, AttrId::new(0)).unwrap(), Value::Int(*v));
                }
            }
            for &(a, b) in &links {
                let related = store.related(InstId::new(a as u32), r1).unwrap();
                assert!(related.contains(&InstId::new(b as u32)));
            }
        }
    });
}

/// Same seed ⇒ byte-identical trace; and live instance counts match
/// across seeds (the pipeline never creates/deletes at run time).
#[test]
fn prop_sim_determinism() {
    xtuml_prop::run("sim_determinism", |g| {
        let stages = g.int_in(1, 4) as usize;
        let feeds = g.index(6);
        let seed = g.next_u64();
        let domain = pipeline_domain(stages).unwrap();
        let run = |seed: u64| {
            let mut sim = Simulation::with_policy(&domain, SchedPolicy::seeded(seed));
            let insts: Vec<InstId> = (0..stages)
                .map(|k| sim.create(&format!("Stage{k}")).unwrap())
                .collect();
            for k in 0..stages.saturating_sub(1) {
                sim.relate(insts[k], insts[k + 1], &format!("R{}", k + 1))
                    .unwrap();
            }
            for i in 0..feeds {
                sim.inject(i as u64, insts[0], "Feed", vec![Value::Int(i as i64)])
                    .unwrap();
            }
            sim.run_to_quiescence().unwrap();
            (sim.trace().clone(), sim.store().live_count())
        };
        let (t1, live1) = run(seed);
        let (t2, live2) = run(seed);
        assert_eq!(&t1, &t2);
        assert_eq!(live1, live2);
        assert_eq!(live1, stages);
        assert_eq!(t1.dispatch_count(), feeds * stages);
        assert_eq!(t1.causality_violations(), 0);
    });
}
