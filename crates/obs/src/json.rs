//! A minimal JSON reader: just enough to validate the documents this
//! crate emits (Chrome trace profiles, JSONL metric streams) without
//! external dependencies or a Python interpreter in CI.

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are kept as raw text — validation does
/// not need arithmetic, and raw text avoids float round-tripping.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as written.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = false;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                digits |= b.is_ascii_digit();
                self.pos += 1;
            } else {
                break;
            }
        }
        if !digits {
            return Err(self.err("malformed number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        Ok(Value::Num(text.to_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // documents; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-utf8 string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Validates a Chrome trace-event document: well-formed JSON, a
/// non-empty `traceEvents` array, and every event an object with `ph`,
/// `pid`, `tid` and `name` (complete `"X"` events also need `ts` and
/// `dur`). Returns the event count.
pub fn check_chrome_trace(src: &str) -> Result<usize, String> {
    let doc = parse(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing `traceEvents` array")?;
    if events.is_empty() {
        return Err("`traceEvents` is empty".to_owned());
    }
    for (i, ev) in events.iter().enumerate() {
        for key in ["ph", "pid", "tid", "name"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i} lacks `{key}`"));
            }
        }
        if ev.get("ph").and_then(Value::as_str) == Some("X") {
            for key in ["ts", "dur"] {
                if !matches!(ev.get(key), Some(Value::Num(_))) {
                    return Err(format!("complete event {i} lacks numeric `{key}`"));
                }
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_rejects() {
        assert!(parse(r#"{"a": [1, 2.5, -3e2], "b": "x\n\"y\""}"#).is_ok());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"a\": }").is_err());
    }

    #[test]
    fn chrome_checks() {
        assert!(check_chrome_trace(r#"{"traceEvents": []}"#).is_err());
        assert!(check_chrome_trace(r#"{"other": 1}"#).is_err());
        let ok =
            r#"{"traceEvents": [{"ph": "X", "pid": 1, "tid": 0, "name": "a", "ts": 1, "dur": 2}]}"#;
        assert_eq!(check_chrome_trace(ok), Ok(1));
        let bad = r#"{"traceEvents": [{"ph": "X", "pid": 1, "tid": 0, "name": "a", "ts": 1}]}"#;
        assert!(check_chrome_trace(bad).is_err());
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some(s));
    }
}
