//! # xtuml-obs — observability for the xtUML execution stack
//!
//! The paper's argument is that a repeatable mapping from model to
//! implementation makes system behavior *inspectable* rather than
//! hand-waved. This crate supplies the inspection layer: deterministic
//! **counters/gauges/histograms** ([`metrics`]), wall-clock **spans**
//! exported as Perfetto-loadable Chrome trace JSON ([`profile`]), and a
//! **JSONL** metric stream — all dependency-free.
//!
//! ## The determinism contract
//!
//! Everything in [`Metrics`] is a pure function of `(seed, shards)`:
//! counts never depend on `--jobs`, host speed or wall time, so
//! snapshots can be golden-tested and diffed across machines.
//! Wall-clock data ([`Timing`], spans) is nondeterministic by nature
//! and is kept in separate structures and output sections.
//!
//! ## The sink seam
//!
//! Instrumented components write through the [`Sink`] trait.
//! [`NullSink`] is the compile-time-cheap disabled path — every method
//! is an empty inline body and `enabled()` is `false`, so call sites
//! can skip argument construction entirely. [`Recorder`] is the real
//! sink: counters plus an optional span buffer. Hot loops (the
//! interpreter dispatcher, the sharded engine) hold an
//! `Option<Recorder>` — `None` costs one predictable branch per site,
//! which is what the bench overhead gate in `ci.sh` enforces.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod json;
pub mod metrics;
pub mod profile;

pub use json::{check_chrome_trace, escape, parse, Value};
pub use metrics::{
    Counter, EpochRow, Gauge, Hist, HistKind, Metrics, MetricsRaw, ShardLane, Timing, COUNTERS,
    GAUGES, HISTS, HIST_BUCKETS,
};
pub use profile::{Clock, SpanBuf, SpanEvent};

/// The seam instrumented components report through.
///
/// All methods have no-op defaults so sinks implement only what they
/// store; `enabled()` lets call sites skip expensive argument
/// construction (formatting span names, say) when nothing listens.
pub trait Sink {
    /// True when this sink records anything at all.
    fn enabled(&self) -> bool {
        false
    }

    /// True when span recording specifically is on.
    fn spans_enabled(&self) -> bool {
        false
    }

    /// The sink's home track (trace lane) for spans opened on its behalf
    /// by components that do not manage tracks themselves (e.g. the
    /// fork-join pool).
    fn track(&self) -> u32 {
        0
    }

    /// Adds `delta` to a counter.
    #[inline]
    fn count(&mut self, c: Counter, delta: u64) {
        let _ = (c, delta);
    }

    /// Raises a high-water gauge.
    #[inline]
    fn gauge_max(&mut self, g: Gauge, v: u64) {
        let _ = (g, v);
    }

    /// Records a histogram observation.
    #[inline]
    fn observe(&mut self, h: HistKind, v: u64) {
        let _ = (h, v);
    }

    /// Opens a wall-clock span on `track`.
    #[inline]
    fn span_begin(&mut self, track: u32, cat: &'static str, name: &str) {
        let _ = (track, cat, name);
    }

    /// Closes the innermost open span on `track`.
    #[inline]
    fn span_end(&mut self, track: u32) {
        let _ = track;
    }
}

/// The disabled path: every method is an empty inline body.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {}

/// A recording sink: deterministic metrics, wall-clock timing, and an
/// optional span buffer. `Send`, so shard workers can own one each;
/// the coordinator folds them back with [`Recorder::absorb`] in shard
/// order, keeping merged snapshots independent of worker scheduling.
#[derive(Debug, Clone)]
pub struct Recorder {
    /// Deterministic counters/gauges/histograms/lanes.
    pub metrics: Metrics,
    /// Wall-clock measurements (segregated from `metrics`).
    pub timing: Timing,
    /// Default track for spans recorded through the [`Sink`] methods.
    pub track: u32,
    /// When true, the sharded engine appends per-epoch rows to
    /// `metrics.epoch_rows` (sized for JSONL streaming, off by default).
    pub stream_epochs: bool,
    spans: Option<SpanBuf>,
}

impl Recorder {
    /// A counters-only recorder (no span buffer).
    pub fn new() -> Recorder {
        Recorder {
            metrics: Metrics::new(),
            timing: Timing::default(),
            track: 0,
            stream_epochs: false,
            spans: None,
        }
    }

    /// A recorder that also captures spans on `clock`.
    pub fn with_spans(clock: Clock) -> Recorder {
        Recorder {
            spans: Some(SpanBuf::new(clock)),
            ..Recorder::new()
        }
    }

    /// A child recorder for one shard: same configuration, span buffer
    /// on the same clock, default track `shard + 1` (track 0 is the
    /// coordinator).
    pub fn fork_shard(&self, shard: u32) -> Recorder {
        Recorder {
            metrics: Metrics::new(),
            timing: Timing::default(),
            track: shard + 1,
            stream_epochs: self.stream_epochs,
            spans: self.spans.as_ref().map(|b| SpanBuf::new(b.clock())),
        }
    }

    /// Folds a child recorder back in (metrics add, spans append).
    pub fn absorb(&mut self, child: Recorder) {
        self.metrics.merge(&child.metrics);
        self.timing.merge(&child.timing);
        if let (Some(mine), Some(theirs)) = (self.spans.as_mut(), child.spans) {
            mine.absorb(theirs);
        }
    }

    /// The span buffer, when spans are on.
    pub fn spans(&self) -> Option<&SpanBuf> {
        self.spans.as_ref()
    }

    /// The span clock, when spans are on.
    pub fn clock(&self) -> Option<Clock> {
        self.spans.as_ref().map(|b| b.clock())
    }

    /// Renders captured spans as a Chrome trace-event document with one
    /// named lane per entry in `tracks`.
    pub fn to_chrome_json(&self, process: &str, tracks: &[(u32, String)]) -> Option<String> {
        self.spans
            .as_ref()
            .map(|b| b.to_chrome_json(process, tracks))
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Sink for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn spans_enabled(&self) -> bool {
        self.spans.is_some()
    }

    fn track(&self) -> u32 {
        self.track
    }

    #[inline]
    fn count(&mut self, c: Counter, delta: u64) {
        self.metrics.add(c, delta);
    }

    #[inline]
    fn gauge_max(&mut self, g: Gauge, v: u64) {
        self.metrics.gauge_max(g, v);
    }

    #[inline]
    fn observe(&mut self, h: HistKind, v: u64) {
        self.metrics.observe(h, v);
    }

    #[inline]
    fn span_begin(&mut self, track: u32, cat: &'static str, name: &str) {
        if let Some(buf) = self.spans.as_mut() {
            buf.begin(track, cat, name);
        }
    }

    #[inline]
    fn span_end(&mut self, track: u32) {
        if let Some(buf) = self.spans.as_mut() {
            buf.end(track);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.count(Counter::SignalsSent, 1);
        s.span_begin(0, "x", "y");
        s.span_end(0);
    }

    #[test]
    fn recorder_fork_and_absorb() {
        let mut root = Recorder::with_spans(Clock::start());
        let mut a = root.fork_shard(0);
        let mut b = root.fork_shard(1);
        assert_eq!(a.track, 1);
        assert_eq!(b.track, 2);
        a.count(Counter::SignalsDispatched, 3);
        a.span_begin(a.track, "shard", "epoch 0");
        a.span_end(a.track);
        b.count(Counter::SignalsDispatched, 4);
        root.absorb(a);
        root.absorb(b);
        assert_eq!(root.metrics.get(Counter::SignalsDispatched), 7);
        assert_eq!(root.spans().unwrap().events().len(), 1);
    }

    #[test]
    fn snapshot_lists_full_catalogue() {
        let r = Recorder::new();
        let json = r.metrics.to_json();
        for c in COUNTERS {
            assert!(json.contains(c.name()), "missing {}", c.name());
        }
        assert!(parse(&json).is_ok());
    }
}
