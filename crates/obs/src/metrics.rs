//! Deterministic metrics: counters, high-water gauges, log₂ histograms
//! and per-shard lanes.
//!
//! Everything in [`Metrics`] is a pure function of `(seed, shards)` for
//! a given model and stimulus schedule — worker count (`--jobs`) and
//! host speed must never leak in. Wall-clock measurements live in the
//! separate [`Timing`] struct and are rendered under a distinct
//! `"timing"` key so golden tests and cross-host comparisons can pin
//! the deterministic part byte-for-byte.

use crate::json::escape;
use std::fmt::Write as _;

/// The deterministic counter catalogue.
///
/// Counters are append-only: new entries go at the end so snapshot
/// layouts stay comparable across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Signal envelopes consumed by the dispatcher (fired + ignored + dropped).
    SignalsDispatched,
    /// Dispatches that actually took a transition and ran an action.
    TransitionsFired,
    /// Dispatches consumed by an `Ignore` transition cell.
    SignalsIgnored,
    /// Signals dropped (can't-happen cells, dead targets).
    SignalsDropped,
    /// Instance-to-instance signals sent by actions.
    SignalsSent,
    /// Signals an instance sent to itself (priority queue).
    SelfSignals,
    /// Signals emitted to external actors.
    ActorSignals,
    /// Bridge (wired function) calls made by actions.
    BridgeCalls,
    /// Timers armed (`send_delayed`).
    TimersSet,
    /// Timers cancelled before firing.
    TimersCancelled,
    /// Timers that fired and delivered their signal.
    TimersFired,
    /// External stimuli injected from the schedule.
    StimuliInjected,
    /// Instances created (setup plus action-driven).
    InstancesCreated,
    /// Instances deleted by actions.
    InstancesDeleted,
    /// Barrier-synchronised epochs executed by the sharded engine.
    Epochs,
    /// Signals routed across a shard boundary at a barrier.
    CrossShardSignals,
    /// Signals routed back into their sending shard at a barrier.
    LocalShardSignals,
    /// Sum over epochs of the busiest shard's dispatch count
    /// (denominator for the epoch-imbalance ratio).
    EpochMaxDispatches,
    /// Per-shard epochs that exhausted their dispatch budget.
    BudgetExhausted,
    /// Runs that fell back to sequential execution (shard-unsafe model).
    ShardFallbacks,
    /// Fallback because an action creates an instance.
    FallbackCreate,
    /// Fallback because an action deletes an instance.
    FallbackDelete,
    /// Fallback because an action relates instances.
    FallbackRelate,
    /// Fallback because an action unrelates instances.
    FallbackUnrelate,
    /// Fallback because an action reads a non-self attribute.
    FallbackNonSelfRead,
    /// Fallback because an action writes a non-self attribute.
    FallbackNonSelfWrite,
    /// Fork-join scopes opened on the worker pool.
    PoolScopes,
    /// Tasks distributed across fork-join scopes.
    PoolTasks,
    /// Hardware cycles simulated by the co-simulation executive.
    CosimHwCycles,
    /// CPU cycles consumed by the co-simulated software partition.
    CosimCpuCycles,
    /// Bus messages delivered sw→hw.
    CosimMsgsSwToHw,
    /// Bus messages delivered hw→sw.
    CosimMsgsHwToSw,
    /// Total bus beats moved by the co-simulation bridge.
    CosimBusBeats,
    /// Model compilations performed by the MDA pipeline.
    MdaCompiles,
    /// Action dispatches executed by the bytecode VM engine.
    BcActions,
    /// Action dispatches that fell back from the VM to compiled frames.
    BcFallbacks,
    /// Sharded runs the effect analysis admitted to `shards > 1`
    /// (counted once per run that actually executes sharded; the
    /// `fallback_*` reasons above count the denied side).
    ShardAdmitted,
}

/// Every counter, in snapshot order.
pub const COUNTERS: &[Counter] = &[
    Counter::SignalsDispatched,
    Counter::TransitionsFired,
    Counter::SignalsIgnored,
    Counter::SignalsDropped,
    Counter::SignalsSent,
    Counter::SelfSignals,
    Counter::ActorSignals,
    Counter::BridgeCalls,
    Counter::TimersSet,
    Counter::TimersCancelled,
    Counter::TimersFired,
    Counter::StimuliInjected,
    Counter::InstancesCreated,
    Counter::InstancesDeleted,
    Counter::Epochs,
    Counter::CrossShardSignals,
    Counter::LocalShardSignals,
    Counter::EpochMaxDispatches,
    Counter::BudgetExhausted,
    Counter::ShardFallbacks,
    Counter::FallbackCreate,
    Counter::FallbackDelete,
    Counter::FallbackRelate,
    Counter::FallbackUnrelate,
    Counter::FallbackNonSelfRead,
    Counter::FallbackNonSelfWrite,
    Counter::PoolScopes,
    Counter::PoolTasks,
    Counter::CosimHwCycles,
    Counter::CosimCpuCycles,
    Counter::CosimMsgsSwToHw,
    Counter::CosimMsgsHwToSw,
    Counter::CosimBusBeats,
    Counter::MdaCompiles,
    Counter::BcActions,
    Counter::BcFallbacks,
    Counter::ShardAdmitted,
];

impl Counter {
    /// Snapshot key (stable, snake_case).
    pub fn name(self) -> &'static str {
        match self {
            Counter::SignalsDispatched => "signals_dispatched",
            Counter::TransitionsFired => "transitions_fired",
            Counter::SignalsIgnored => "signals_ignored",
            Counter::SignalsDropped => "signals_dropped",
            Counter::SignalsSent => "signals_sent",
            Counter::SelfSignals => "self_signals",
            Counter::ActorSignals => "actor_signals",
            Counter::BridgeCalls => "bridge_calls",
            Counter::TimersSet => "timers_set",
            Counter::TimersCancelled => "timers_cancelled",
            Counter::TimersFired => "timers_fired",
            Counter::StimuliInjected => "stimuli_injected",
            Counter::InstancesCreated => "instances_created",
            Counter::InstancesDeleted => "instances_deleted",
            Counter::Epochs => "epochs",
            Counter::CrossShardSignals => "cross_shard_signals",
            Counter::LocalShardSignals => "local_shard_signals",
            Counter::EpochMaxDispatches => "epoch_max_dispatches",
            Counter::BudgetExhausted => "budget_exhausted",
            Counter::ShardFallbacks => "shard_fallbacks",
            Counter::FallbackCreate => "fallback_create",
            Counter::FallbackDelete => "fallback_delete",
            Counter::FallbackRelate => "fallback_relate",
            Counter::FallbackUnrelate => "fallback_unrelate",
            Counter::FallbackNonSelfRead => "fallback_non_self_read",
            Counter::FallbackNonSelfWrite => "fallback_non_self_write",
            Counter::PoolScopes => "pool_scopes",
            Counter::PoolTasks => "pool_tasks",
            Counter::CosimHwCycles => "cosim_hw_cycles",
            Counter::CosimCpuCycles => "cosim_cpu_cycles",
            Counter::CosimMsgsSwToHw => "cosim_msgs_sw_to_hw",
            Counter::CosimMsgsHwToSw => "cosim_msgs_hw_to_sw",
            Counter::CosimBusBeats => "cosim_bus_beats",
            Counter::MdaCompiles => "mda_compiles",
            Counter::BcActions => "bc_actions",
            Counter::BcFallbacks => "bc_fallbacks",
            Counter::ShardAdmitted => "shard_admitted",
        }
    }
}

/// High-water-mark gauges (deterministic maxima, not wall-clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Deepest the pending-stimulus heap ever got.
    StimulusHeapMax,
    /// Largest ready set observed by the scheduler.
    ReadySetMax,
    /// Most armed timers alive at once.
    TimerListMax,
    /// Most live instances at once.
    LiveInstancesMax,
    /// Largest single-barrier outbox (cross-shard routing burst).
    OutboxBurstMax,
}

/// Every gauge, in snapshot order.
pub const GAUGES: &[Gauge] = &[
    Gauge::StimulusHeapMax,
    Gauge::ReadySetMax,
    Gauge::TimerListMax,
    Gauge::LiveInstancesMax,
    Gauge::OutboxBurstMax,
];

impl Gauge {
    /// Snapshot key (stable, snake_case).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::StimulusHeapMax => "stimulus_heap_max",
            Gauge::ReadySetMax => "ready_set_max",
            Gauge::TimerListMax => "timer_list_max",
            Gauge::LiveInstancesMax => "live_instances_max",
            Gauge::OutboxBurstMax => "outbox_burst_max",
        }
    }
}

/// Histogram families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistKind {
    /// Dispatches per shard per epoch (shape of the load balance).
    EpochDispatches,
    /// Cross-shard signals routed per shard per epoch.
    EpochOutbox,
}

/// Every histogram family, in snapshot order.
pub const HISTS: &[HistKind] = &[HistKind::EpochDispatches, HistKind::EpochOutbox];

impl HistKind {
    /// Snapshot key (stable, snake_case).
    pub fn name(self) -> &'static str {
        match self {
            HistKind::EpochDispatches => "epoch_dispatches",
            HistKind::EpochOutbox => "epoch_outbox",
        }
    }
}

/// Number of log₂ buckets: bucket 0 holds value 0, bucket `i` holds
/// values in `[2^(i-1), 2^i)`, the last bucket is open-ended.
pub const HIST_BUCKETS: usize = 18;

/// A log₂ histogram of `u64` observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Log₂ buckets (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Hist {
    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
        let b = if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[b] += 1;
    }

    /// Folds another histogram in.
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// Per-shard deterministic totals, merged at barriers in shard order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLane {
    /// Shard index.
    pub shard: u32,
    /// Dispatches executed by this shard.
    pub dispatches: u64,
    /// Signals this shard sent (before routing).
    pub sent: u64,
    /// Of those, signals that crossed to another shard.
    pub cross_shard: u64,
    /// Epochs in which this shard dispatched at least one signal.
    pub epochs_active: u64,
}

/// One per-epoch, per-shard row for the JSONL stream (opt-in: only
/// recorded when epoch streaming is enabled, since long runs produce
/// many rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochRow {
    /// Epoch index.
    pub epoch: u64,
    /// Shard index.
    pub shard: u32,
    /// Dispatches this shard executed in this epoch.
    pub dispatches: u64,
    /// Signals this shard routed out at the closing barrier.
    pub outbox: u64,
}

/// The deterministic metrics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: Vec<u64>,
    gauges: Vec<u64>,
    hists: Vec<Hist>,
    /// Per-shard lanes, in shard order (empty for unsharded runs).
    pub lanes: Vec<ShardLane>,
    /// Per-epoch rows (populated only when epoch streaming is on).
    pub epoch_rows: Vec<EpochRow>,
}

/// The raw backing arrays of a [`Metrics`] snapshot, in catalogue order
/// — the serialization surface for simulation snapshots. All fields are
/// public so serializers can walk them without this crate knowing any
/// wire format; [`Metrics::from_raw`] re-normalizes lengths, so a raw
/// block written by an older catalogue still loads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRaw {
    /// Counter values, in [`COUNTERS`] order.
    pub counters: Vec<u64>,
    /// Gauge high-water marks, in [`GAUGES`] order.
    pub gauges: Vec<u64>,
    /// Histograms, in [`HISTS`] order.
    pub hists: Vec<Hist>,
    /// Per-shard lanes, in shard order.
    pub lanes: Vec<ShardLane>,
    /// Per-epoch rows.
    pub epoch_rows: Vec<EpochRow>,
}

impl Metrics {
    /// An all-zero snapshot.
    pub fn new() -> Metrics {
        Metrics {
            counters: vec![0; COUNTERS.len()],
            gauges: vec![0; GAUGES.len()],
            hists: vec![Hist::default(); HISTS.len()],
            lanes: Vec::new(),
            epoch_rows: Vec::new(),
        }
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, delta: u64) {
        self.counters[c as usize] += delta;
    }

    /// Reads a counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Raises a gauge to `v` if `v` is a new high-water mark.
    #[inline]
    pub fn gauge_max(&mut self, g: Gauge, v: u64) {
        let slot = &mut self.gauges[g as usize];
        if v > *slot {
            *slot = v;
        }
    }

    /// Reads a gauge.
    #[inline]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&mut self, h: HistKind, v: u64) {
        self.hists[h as usize].observe(v);
    }

    /// Reads a histogram.
    pub fn hist(&self, h: HistKind) -> &Hist {
        &self.hists[h as usize]
    }

    /// The per-shard lane for `shard`, grown on demand.
    pub fn lane_mut(&mut self, shard: u32) -> &mut ShardLane {
        let want = shard as usize + 1;
        while self.lanes.len() < want {
            let next = self.lanes.len() as u32;
            self.lanes.push(ShardLane {
                shard: next,
                ..ShardLane::default()
            });
        }
        &mut self.lanes[shard as usize]
    }

    /// Extracts the raw backing arrays (for serialization).
    pub fn to_raw(&self) -> MetricsRaw {
        MetricsRaw {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            hists: self.hists.clone(),
            lanes: self.lanes.clone(),
            epoch_rows: self.epoch_rows.clone(),
        }
    }

    /// Rebuilds a snapshot from raw arrays, padding or truncating the
    /// catalogued vectors to the current catalogue lengths so a block
    /// recorded under an older (append-only) catalogue still loads.
    pub fn from_raw(raw: MetricsRaw) -> Metrics {
        let mut counters = raw.counters;
        counters.resize(COUNTERS.len(), 0);
        let mut gauges = raw.gauges;
        gauges.resize(GAUGES.len(), 0);
        let mut hists = raw.hists;
        hists.resize(HISTS.len(), Hist::default());
        Metrics {
            counters,
            gauges,
            hists,
            lanes: raw.lanes,
            epoch_rows: raw.epoch_rows,
        }
    }

    /// Folds `other` in: counters and histograms add, gauges take the
    /// max, lanes merge by shard index. The fold is commutative, so the
    /// merged snapshot does not depend on worker scheduling.
    pub fn merge(&mut self, other: &Metrics) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            *a = (*a).max(*b);
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
        for lane in &other.lanes {
            let mine = self.lane_mut(lane.shard);
            mine.dispatches += lane.dispatches;
            mine.sent += lane.sent;
            mine.cross_shard += lane.cross_shard;
            mine.epochs_active += lane.epochs_active;
        }
        self.epoch_rows.extend(other.epoch_rows.iter().copied());
        self.epoch_rows.sort_by_key(|r| (r.epoch, r.shard));
    }

    /// Epoch load imbalance in `[0, 1]`: `0` means every shard matched
    /// the busiest shard every epoch; `1` means all work sat on one
    /// shard of many. Returns `None` for unsharded runs.
    pub fn epoch_imbalance(&self) -> Option<f64> {
        let shards = self.lanes.len() as u64;
        let max_sum = self.get(Counter::EpochMaxDispatches);
        if shards < 2 || max_sum == 0 {
            return None;
        }
        let total: u64 = self.lanes.iter().map(|l| l.dispatches).sum();
        let ideal = (max_sum * shards) as f64;
        Some(1.0 - total as f64 / ideal)
    }

    /// Fraction of routed signals that crossed a shard boundary.
    pub fn cross_shard_frac(&self) -> Option<f64> {
        let cross = self.get(Counter::CrossShardSignals);
        let local = self.get(Counter::LocalShardSignals);
        if cross + local == 0 {
            return None;
        }
        Some(cross as f64 / (cross + local) as f64)
    }

    /// Renders the deterministic snapshot as pretty-printed JSON. The
    /// full catalogue is emitted (zeros included) in catalogue order,
    /// so equal runs produce byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {\n");
        for (i, c) in COUNTERS.iter().enumerate() {
            let comma = if i + 1 == COUNTERS.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{}\": {}{}", c.name(), self.get(*c), comma);
        }
        out.push_str("  },\n  \"gauges\": {\n");
        for (i, g) in GAUGES.iter().enumerate() {
            let comma = if i + 1 == GAUGES.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{}\": {}{}", g.name(), self.gauge(*g), comma);
        }
        out.push_str("  },\n  \"hists\": {\n");
        for (i, h) in HISTS.iter().enumerate() {
            let comma = if i + 1 == HISTS.len() { "" } else { "," };
            let hist = self.hist(*h);
            let _ = write!(
                out,
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"buckets\": [",
                h.name(),
                hist.count,
                hist.sum,
                hist.max
            );
            for (j, b) in hist.buckets.iter().enumerate() {
                let bc = if j + 1 == HIST_BUCKETS { "" } else { ", " };
                let _ = write!(out, "{b}{bc}");
            }
            let _ = writeln!(out, "]}}{comma}");
        }
        out.push_str("  },\n  \"per_shard\": [");
        for (i, l) in self.lanes.iter().enumerate() {
            let comma = if i + 1 == self.lanes.len() { "" } else { "," };
            let _ = write!(
                out,
                "\n    {{\"shard\": {}, \"dispatches\": {}, \"sent\": {}, \"cross_shard\": {}, \"epochs_active\": {}}}{}",
                l.shard, l.dispatches, l.sent, l.cross_shard, l.epochs_active, comma
            );
        }
        if !self.lanes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the deterministic snapshot for humans: the counter
    /// catalogue, gauges, derived ratios and per-shard lanes.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for c in COUNTERS {
            let _ = writeln!(out, "  {:<26} {}", c.name(), self.get(*c));
        }
        out.push_str("gauges:\n");
        for g in GAUGES {
            let _ = writeln!(out, "  {:<26} {}", g.name(), self.gauge(*g));
        }
        if let Some(im) = self.epoch_imbalance() {
            let _ = writeln!(out, "derived:\n  {:<26} {:.3}", "epoch_imbalance", im);
            if let Some(cf) = self.cross_shard_frac() {
                let _ = writeln!(out, "  {:<26} {:.3}", "cross_shard_frac", cf);
            }
        }
        if !self.lanes.is_empty() {
            out.push_str("per-shard:\n");
            for l in &self.lanes {
                let _ = writeln!(
                    out,
                    "  shard {:<3} dispatches {:<8} sent {:<8} cross {:<8} active-epochs {}",
                    l.shard, l.dispatches, l.sent, l.cross_shard, l.epochs_active
                );
            }
        }
        out
    }

    /// Streams the snapshot as JSONL rows (one metric per line),
    /// prefixed by a `run` header row built from `header` key/value
    /// pairs (values are emitted raw, so pass pre-rendered JSON).
    pub fn to_jsonl(&self, header: &[(&str, String)]) -> String {
        let mut out = String::new();
        out.push_str("{\"kind\": \"run\"");
        for (k, v) in header {
            let _ = write!(out, ", \"{}\": {}", escape(k), v);
        }
        out.push_str("}\n");
        for c in COUNTERS {
            let _ = writeln!(
                out,
                "{{\"kind\": \"counter\", \"name\": \"{}\", \"value\": {}}}",
                c.name(),
                self.get(*c)
            );
        }
        for g in GAUGES {
            let _ = writeln!(
                out,
                "{{\"kind\": \"gauge\", \"name\": \"{}\", \"value\": {}}}",
                g.name(),
                self.gauge(*g)
            );
        }
        for l in &self.lanes {
            let _ = writeln!(
                out,
                "{{\"kind\": \"shard\", \"shard\": {}, \"dispatches\": {}, \"sent\": {}, \"cross_shard\": {}, \"epochs_active\": {}}}",
                l.shard, l.dispatches, l.sent, l.cross_shard, l.epochs_active
            );
        }
        for r in &self.epoch_rows {
            let _ = writeln!(
                out,
                "{{\"kind\": \"epoch\", \"epoch\": {}, \"shard\": {}, \"dispatches\": {}, \"outbox\": {}}}",
                r.epoch, r.shard, r.dispatches, r.outbox
            );
        }
        out
    }
}

/// Wall-clock measurements. **Nondeterministic by nature** — kept out
/// of [`Metrics`] so the deterministic snapshot stays pinnable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timing {
    /// Wall time of the whole run, nanoseconds.
    pub run_wall_ns: u64,
    /// Summed barrier wait: per epoch, coordinator epoch wall time
    /// minus each shard's own busy time (idle shards wait longer).
    pub barrier_wait_ns: u64,
    /// Epochs that contributed barrier measurements.
    pub epochs_timed: u64,
}

impl Timing {
    /// Folds another timing block in.
    pub fn merge(&mut self, other: &Timing) {
        self.run_wall_ns += other.run_wall_ns;
        self.barrier_wait_ns += other.barrier_wait_ns;
        self.epochs_timed += other.epochs_timed;
    }

    /// One JSONL row, flagged nondeterministic.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"kind\": \"timing\", \"deterministic\": false, \"run_wall_ns\": {}, \"barrier_wait_ns\": {}, \"epochs_timed\": {}}}\n",
            self.run_wall_ns, self.barrier_wait_ns, self.epochs_timed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_are_log2() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[11], 1); // 1024
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1); // clamp
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Metrics::new();
        a.add(Counter::SignalsSent, 3);
        a.gauge_max(Gauge::ReadySetMax, 5);
        a.lane_mut(1).dispatches = 7;
        let mut b = Metrics::new();
        b.add(Counter::SignalsSent, 4);
        b.gauge_max(Gauge::ReadySetMax, 2);
        b.lane_mut(0).dispatches = 9;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.get(Counter::SignalsSent), 7);
        assert_eq!(ab.gauge(Gauge::ReadySetMax), 5);
        assert_eq!(ab.lanes.len(), 2);
    }

    #[test]
    fn imbalance_ratio() {
        let mut m = Metrics::new();
        // Two shards, two epochs; busiest shard did 10 each epoch,
        // other shard idle: imbalance = 1 - 20/(2*20) = 0.5.
        m.lane_mut(0).dispatches = 20;
        m.lane_mut(1).dispatches = 0;
        m.add(Counter::EpochMaxDispatches, 20);
        assert_eq!(m.epoch_imbalance(), Some(0.5));
    }

    #[test]
    fn catalogue_names_are_unique() {
        let mut names: Vec<&str> = COUNTERS.iter().map(|c| c.name()).collect();
        names.extend(GAUGES.iter().map(|g| g.name()));
        names.extend(HISTS.iter().map(|h| h.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(n, names.len());
    }
}
