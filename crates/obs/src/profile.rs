//! Scoped wall-clock spans and Chrome trace-event export.
//!
//! Spans are recorded into per-thread [`SpanBuf`]s that all share one
//! [`Clock`] origin (Rust's `Instant` is monotonic across threads), so
//! merged buffers line up on a common timeline. The export format is
//! the Chrome trace-event JSON understood by Perfetto and
//! `chrome://tracing`: complete events (`"ph": "X"`) on one process,
//! with the track id (`tid`) carrying the shard lane.

use crate::json::escape;
use std::fmt::Write as _;
use std::time::Instant;

/// A shared time origin for span timestamps.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    origin: Instant,
}

impl Clock {
    /// Starts a new timeline at "now".
    pub fn start() -> Clock {
        Clock {
            origin: Instant::now(),
        }
    }

    /// Microseconds since the origin.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Nanoseconds since the origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::start()
    }
}

/// One completed span on a track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Display name.
    pub name: String,
    /// Category (filterable in Perfetto).
    pub cat: &'static str,
    /// Track (Chrome `tid`); the sharded engine uses shard id + 1,
    /// track 0 is the coordinator.
    pub track: u32,
    /// Start, microseconds on the shared clock.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// A span buffer bound to a shared [`Clock`]. `Send`, so shard workers
/// can each own one; the coordinator merges them after the join.
#[derive(Debug, Clone)]
pub struct SpanBuf {
    clock: Clock,
    events: Vec<SpanEvent>,
    open: Vec<(u32, usize)>,
}

impl SpanBuf {
    /// A new buffer on `clock`.
    pub fn new(clock: Clock) -> SpanBuf {
        SpanBuf {
            clock,
            events: Vec::new(),
            open: Vec::new(),
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Opens a span on `track`; pair with [`SpanBuf::end`].
    pub fn begin(&mut self, track: u32, cat: &'static str, name: &str) {
        let idx = self.events.len();
        self.events.push(SpanEvent {
            name: name.to_owned(),
            cat,
            track,
            ts_us: self.clock.now_us(),
            dur_us: 0,
        });
        self.open.push((track, idx));
    }

    /// Closes the innermost open span on `track`. Unmatched ends are
    /// ignored rather than panicking — telemetry must never take the
    /// simulation down.
    pub fn end(&mut self, track: u32) {
        if let Some(pos) = self.open.iter().rposition(|&(t, _)| t == track) {
            let (_, idx) = self.open.remove(pos);
            let now = self.clock.now_us();
            let ev = &mut self.events[idx];
            ev.dur_us = now.saturating_sub(ev.ts_us);
        }
    }

    /// Completed events so far (open spans have `dur_us == 0`).
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Moves all events out of `other` into `self`.
    pub fn absorb(&mut self, other: SpanBuf) {
        self.events.extend(other.events);
    }

    /// Renders the merged buffer as a Chrome trace-event JSON document.
    ///
    /// `tracks` names the lanes (`(tid, name)`); every event's `tid`
    /// should appear. The result loads in Perfetto as one process with
    /// one named thread track per entry.
    pub fn to_chrome_json(&self, process: &str, tracks: &[(u32, String)]) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let _ = write!(
            out,
            "{{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \"args\": {{\"name\": \"{}\"}}}}",
            escape(process)
        );
        for (tid, name) in tracks {
            let _ = write!(
                out,
                ",\n{{\"ph\": \"M\", \"pid\": 1, \"tid\": {}, \"name\": \"thread_name\", \"args\": {{\"name\": \"{}\"}}}}",
                tid,
                escape(name)
            );
        }
        for ev in &self.events {
            let _ = write!(
                out,
                ",\n{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"cat\": \"{}\", \"name\": \"{}\", \"ts\": {}, \"dur\": {}}}",
                ev.track,
                escape(ev.cat),
                escape(&ev.name),
                ev.ts_us,
                ev.dur_us
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close() {
        let mut buf = SpanBuf::new(Clock::start());
        buf.begin(0, "test", "outer");
        buf.begin(0, "test", "inner");
        buf.end(0);
        buf.end(0);
        buf.end(0); // unmatched: ignored
        assert_eq!(buf.events().len(), 2);
        assert_eq!(buf.events()[0].name, "outer");
        assert!(buf.events()[0].dur_us >= buf.events()[1].dur_us);
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let clock = Clock::start();
        let mut buf = SpanBuf::new(clock);
        buf.begin(1, "shard", "epoch \"0\"");
        buf.end(1);
        let mut other = SpanBuf::new(clock);
        other.begin(2, "shard", "epoch 0");
        other.end(2);
        buf.absorb(other);
        let json = buf.to_chrome_json("xtuml", &[(1, "shard 0".into()), (2, "shard 1".into())]);
        let events = crate::json::check_chrome_trace(&json).expect("valid trace");
        // 1 process_name + 2 thread_name + 2 spans.
        assert_eq!(events, 5);
    }
}
