//! Golden-file tests for the generated C and VHDL.
//!
//! The model compiler must be *repeatable* (paper §4): the same model and
//! marks always produce byte-identical text. These tests pin the exact
//! output for a reference design. Regenerate the goldens after an
//! intentional codegen change with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p xtuml-mda --test golden
//! ```

use xtuml_core::marks::{keys, ElemRef, MarkSet};
use xtuml_lang::parse_domain;
use xtuml_mda::ModelCompiler;

const MODEL: &str = r#"
domain Golden;

actor HOST {
    signal irq(code: int);
}

class Dma {
    attr busy: bool;
    attr words: int = 0;

    event Kick(count: int);
    event Done();

    initial Idle;

    state Idle {
        self.busy = false;
    }
    state Moving {
        self.busy = true;
        self.words = self.words + rcvd.count;
        gen Done() to self after 4;
    }
    state Finished {
        self.busy = false;
        gen irq(0) to HOST;
        c = any(self -> Ctrl[R1]);
        gen Moved(self.words) to c;
    }

    on Idle: Kick -> Moving;
    on Moving: Done -> Finished;
    on Finished: Kick -> Moving;
    on Moving: Kick ignore;
}

class Ctrl {
    attr total: int = 0;

    event Moved(words: int);

    initial Watching;

    state Watching {
    }
    state Counting {
        self.total = self.total + rcvd.words;
    }

    on Watching: Moved -> Counting;
    on Counting: Moved -> Counting;
}

assoc R1: Dma one -- Ctrl one;
"#;

fn design() -> (xtuml_core::Domain, MarkSet) {
    let domain = parse_domain(MODEL).expect("golden model parses");
    let mut marks = MarkSet::new();
    marks.mark_hardware("Dma");
    marks.set(ElemRef::class("Dma"), keys::QUEUE_DEPTH, 4i64);
    marks.set(ElemRef::domain(), keys::BUS_LATENCY, 2i64);
    (domain, marks)
}

fn check_golden(name: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}; run with BLESS_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "generated {name} changed; if intentional, re-bless with BLESS_GOLDEN=1"
    );
}

#[test]
fn generated_c_matches_golden() {
    let (domain, marks) = design();
    let d = ModelCompiler::new().compile(&domain, &marks).unwrap();
    check_golden("golden.c", &d.c_code);
}

#[test]
fn generated_vhdl_matches_golden() {
    let (domain, marks) = design();
    let d = ModelCompiler::new().compile(&domain, &marks).unwrap();
    check_golden("golden.vhd", &d.vhdl_code);
}

#[test]
fn golden_design_is_behaviourally_sound_too() {
    use xtuml_exec::SchedPolicy;
    use xtuml_verify::{check_equivalence, run_compiled, run_model, TestCase};

    let (domain, marks) = design();
    let mut tc = TestCase::new("golden-scenario");
    let dma = tc.create("Dma");
    let ctrl = tc.create("Ctrl");
    tc.relate(dma, ctrl, "R1");
    tc.inject(0, dma, "Kick", vec![xtuml_core::Value::Int(16)]);
    // The 4-unit timer is 4 abstract ticks on the model but 4 µs (200 hw
    // cycles at 50 MHz) in co-simulation; space the second kick beyond
    // both horizons so the `ignore` row is not exercised differently.
    tc.inject(1000, dma, "Kick", vec![xtuml_core::Value::Int(32)]);

    let model = run_model(&domain, SchedPolicy::default(), &tc).unwrap();
    let d = ModelCompiler::new().compile(&domain, &marks).unwrap();
    let imp = run_compiled(&d, &tc).unwrap();
    let report = check_equivalence(&model, &imp);
    assert!(report.is_equivalent(), "{:?}", report.divergences);
    assert_eq!(model.iter().filter(|e| e.event == "irq").count(), 2);
}
