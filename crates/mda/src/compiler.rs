//! The model compiler: repeatable mapping rules from marked model to
//! implementation (paper §4).

use crate::analysis;
use crate::hw::HwPartition;
use crate::interface::InterfaceSpec;
use crate::partition::{Partition, Side};
use crate::swpart::SwPartition;
use crate::system::CompiledSystem;
use crate::{cgen, icd, vgen, MdaError, Result};
use std::collections::BTreeMap;
use xtuml_core::ids::ClassId;
use xtuml_core::marks::{keys, ElemRef, MarkSet};
use xtuml_core::model::Domain;
use xtuml_cosim::{Bridge, CoClock};

/// Platform parameters resolved from domain-level marks (with defaults).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformParams {
    /// CPU clock (kHz); mark `cpuKhz`, default 100 MHz.
    pub cpu_khz: u64,
    /// Hardware clock (kHz); mark `hwKhz`, default 50 MHz.
    pub hw_khz: u64,
    /// One-way bus latency in hw cycles; mark `busLatency`, default 4.
    pub bus_latency: u64,
    /// Bridge FIFO depth; mark `fifoDepth`, default 64.
    pub fifo_depth: usize,
    /// Hardware cycles per model time unit (µs): `hw_khz / 1000`.
    pub cycles_per_unit: u64,
    /// Per-class hardware event-FIFO depths (mark `queueDepth`).
    pub class_depth: BTreeMap<ClassId, usize>,
    /// Per-class software priorities (mark `priority`).
    pub prio: BTreeMap<ClassId, u8>,
    /// Default hardware event-FIFO depth.
    pub default_depth: usize,
}

impl PlatformParams {
    /// Resolves platform parameters from marks.
    pub fn from_marks(domain: &Domain, marks: &MarkSet) -> PlatformParams {
        let dref = ElemRef::domain();
        let cpu_khz = marks.get_int_or(&dref, keys::CPU_KHZ, 100_000).max(1) as u64;
        let hw_khz = marks.get_int_or(&dref, keys::HW_KHZ, 50_000).max(1) as u64;
        let bus_latency = marks.get_int_or(&dref, keys::BUS_LATENCY, 4).max(0) as u64;
        let fifo_depth = marks.get_int_or(&dref, "fifoDepth", 64).max(1) as usize;
        let mut class_depth = BTreeMap::new();
        let mut prio = BTreeMap::new();
        for (i, class) in domain.classes.iter().enumerate() {
            let cref = ElemRef::class(&class.name);
            let id = ClassId::new(i as u32);
            if let Some(d) = marks.get(&cref, keys::QUEUE_DEPTH).and_then(|v| v.as_int()) {
                class_depth.insert(id, d.max(1) as usize);
            }
            if let Some(p) = marks.get(&cref, keys::PRIORITY).and_then(|v| v.as_int()) {
                prio.insert(id, p.clamp(1, 255) as u8);
            }
        }
        PlatformParams {
            cpu_khz,
            hw_khz,
            bus_latency,
            fifo_depth,
            cycles_per_unit: (hw_khz / 1000).max(1),
            class_depth,
            prio,
            default_depth: 16,
        }
    }
}

/// The output of one model-compilation: partition, interface, generated
/// text, and the ability to instantiate an executable system.
#[derive(Debug)]
pub struct CompiledDesign<'d> {
    /// The compiled domain.
    pub domain: &'d Domain,
    /// The mark-derived partition.
    pub partition: Partition,
    /// The generated interface (single source of truth for both halves).
    pub interface: InterfaceSpec,
    /// Resolved platform parameters.
    pub params: PlatformParams,
    /// The generated C translation unit for the software half.
    pub c_code: String,
    /// The generated VHDL for the hardware half (entities + bridge).
    pub vhdl_code: String,
    /// The generated Interface Control Document (markdown).
    pub icd: String,
    /// The options the design was compiled with.
    pub options: CompilerOptions,
}

impl<'d> CompiledDesign<'d> {
    /// Instantiates the executable co-simulated system (the same lowering
    /// the generated text describes).
    pub fn instantiate(&self) -> CompiledSystem<'d> {
        let hw = HwPartition::new(
            self.domain,
            self.partition.clone(),
            self.interface.clone(),
            self.params.cycles_per_unit,
            self.params.default_depth,
            self.params.class_depth.clone(),
        );
        let bridge_cfg = self
            .interface
            .to_bridge_config(self.params.fifo_depth, self.params.bus_latency);
        let mut sw = SwPartition::new(
            self.domain,
            self.partition.clone(),
            self.interface.clone(),
            &bridge_cfg,
            self.params.cycles_per_unit,
            self.params.cpu_khz,
            self.params.prio.clone(),
        );
        if self.options.scramble_bridge_rx {
            sw.set_scramble_rx(true);
        }
        let bridge = Bridge::new(&bridge_cfg);
        let clock = CoClock::new(self.params.hw_khz, self.params.cpu_khz);
        CompiledSystem::new(self.domain, self.partition.clone(), hw, sw, bridge, clock)
    }

    /// Lines of generated C (codegen size metric, experiment E6).
    pub fn c_lines(&self) -> usize {
        self.c_code.lines().count()
    }

    /// Lines of generated VHDL (codegen size metric, experiment E6).
    pub fn vhdl_lines(&self) -> usize {
        self.vhdl_code.lines().count()
    }
}

/// Compiler options.
///
/// The single option exists for experiment E5's sake: a deliberately
/// *broken* mapping that fails to preserve per-pair signal order across
/// the bridge. The paper requires the model compiler to preserve "the
/// desired sequencing specified in the models"; compiling with
/// `scramble_bridge_rx` demonstrates that the verification layer catches
/// a compiler that does not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompilerOptions {
    /// Break per-pair order for bridge-delivered events (E5 ablation).
    pub scramble_bridge_rx: bool,
}

/// The model compiler. Stateless: mapping rules are repeatable by
/// construction — compiling the same model and marks twice yields
/// identical output.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelCompiler {
    options: CompilerOptions,
}

impl ModelCompiler {
    /// Creates a compiler with the stock mapping rules.
    pub fn new() -> ModelCompiler {
        ModelCompiler::default()
    }

    /// Creates a compiler with explicit options (E5 ablations).
    pub fn with_options(options: CompilerOptions) -> ModelCompiler {
        ModelCompiler { options }
    }

    /// Compiles a domain under a mark set.
    ///
    /// # Errors
    ///
    /// Returns [`MdaError::Mapping`] on mapping-rule violations (see the
    /// crate docs) and propagates analysis errors.
    pub fn compile<'d>(&self, domain: &'d Domain, marks: &MarkSet) -> Result<CompiledDesign<'d>> {
        let partition = Partition::from_marks(domain, marks);
        self.check_locality(domain, &partition)?;
        let interface = InterfaceSpec::derive(domain, &partition)?;
        let params = PlatformParams::from_marks(domain, marks);
        let c_code = cgen::generate_c(domain, &partition, &interface, &params);
        let vhdl_code = vgen::generate_vhdl(domain, &partition, &interface, &params);
        let icd = icd::generate_icd(domain, &partition, &interface, &params);
        Ok(CompiledDesign {
            domain,
            partition,
            interface,
            params,
            c_code,
            vhdl_code,
            icd,
            options: self.options,
        })
    }

    /// [`ModelCompiler::compile`] with telemetry: one `mda_compiles`
    /// count per invocation, plus per-phase spans (`partition`,
    /// `interface`, `cgen`, `vgen`, `icd`) on the sink's track so a
    /// profile shows where compile time goes.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`ModelCompiler::compile`].
    pub fn compile_obs<'d>(
        &self,
        sink: &mut dyn xtuml_obs::Sink,
        domain: &'d Domain,
        marks: &MarkSet,
    ) -> Result<CompiledDesign<'d>> {
        if sink.enabled() {
            sink.count(xtuml_obs::Counter::MdaCompiles, 1);
        }
        if !sink.spans_enabled() {
            return self.compile(domain, marks);
        }
        let track = sink.track();
        let phase = |sink: &mut dyn xtuml_obs::Sink, name: &str| {
            sink.span_end(track);
            sink.span_begin(track, "mda", name);
        };
        sink.span_begin(track, "mda", "mda.compile");
        sink.span_begin(track, "mda", "partition");
        let partition = Partition::from_marks(domain, marks);
        let locality = self.check_locality(domain, &partition);
        phase(sink, "interface");
        let interface = InterfaceSpec::derive(domain, &partition);
        phase(sink, "cgen");
        let params = PlatformParams::from_marks(domain, marks);
        let (c_code, interface) = match (locality, interface) {
            (Err(e), _) | (_, Err(e)) => {
                sink.span_end(track);
                sink.span_end(track);
                return Err(e);
            }
            (Ok(()), Ok(i)) => {
                let c = cgen::generate_c(domain, &partition, &i, &params);
                (c, i)
            }
        };
        phase(sink, "vgen");
        let vhdl_code = vgen::generate_vhdl(domain, &partition, &interface, &params);
        phase(sink, "icd");
        let icd = icd::generate_icd(domain, &partition, &interface, &params);
        sink.span_end(track);
        sink.span_end(track);
        Ok(CompiledDesign {
            domain,
            partition,
            interface,
            params,
            c_code,
            vhdl_code,
            icd,
            options: self.options,
        })
    }

    /// Mapping rule: create/delete/select/relate must be partition-local.
    fn check_locality(&self, domain: &Domain, partition: &Partition) -> Result<()> {
        for (ci, class) in domain.classes.iter().enumerate() {
            let id = ClassId::new(ci as u32);
            let my_side = partition.side(id);
            let usage = analysis::analyze_class(domain, id)?;
            let check = |set: &std::collections::BTreeSet<ClassId>, what: &str| -> Result<()> {
                for t in set {
                    if partition.side(*t) != my_side {
                        return Err(MdaError::mapping(format!(
                            "class {} ({my_side}) {what} class {} ({}); \
                             {what} must be partition-local",
                            class.name,
                            domain.class(*t).name,
                            partition.side(*t),
                        )));
                    }
                }
                Ok(())
            };
            check(&usage.creates, "creates")?;
            check(&usage.deletes, "deletes")?;
            check(&usage.selects, "selects")?;
            check(&usage.relates, "relates")?;
        }
        let _ = Side::Hw;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::builder::DomainBuilder;
    use xtuml_core::model::Multiplicity;
    use xtuml_core::value::DataType;

    fn ping_pong() -> Domain {
        let mut b = DomainBuilder::new("pp");
        b.actor("SINK").event("out", &[("v", DataType::Int)]);
        b.class("Ping")
            .attr("count", DataType::Int)
            .event("Start", &[("n", DataType::Int)])
            .event("Pong", &[("v", DataType::Int)])
            .state("Idle", "")
            .state(
                "Serving",
                "self.count = rcvd.n;\n\
                 q = any(self -> Pong_[R1]);\n\
                 gen Ping_(self.count) to q;",
            )
            .state(
                "Rally",
                "if (rcvd.v > 0) {\n\
                     q = any(self -> Pong_[R1]);\n\
                     gen Ping_(rcvd.v) to q;\n\
                 }\n\
                 else {\n\
                     gen out(rcvd.v) to SINK;\n\
                 }",
            )
            .initial("Idle")
            .transition("Idle", "Start", "Serving")
            .transition("Serving", "Pong", "Rally")
            .transition("Rally", "Pong", "Rally");
        b.class("Pong_")
            .event("Ping_", &[("v", DataType::Int)])
            .state("Wait", "")
            .state(
                "Return",
                "p = any(self -> Ping[R1]);\n\
                 gen Pong(rcvd.v - 1) to p;",
            )
            .initial("Wait")
            .transition("Wait", "Ping_", "Return")
            .transition("Return", "Ping_", "Return");
        b.association("R1", "Ping", Multiplicity::One, "Pong_", Multiplicity::One);
        b.build().unwrap()
    }

    #[test]
    fn compile_homogeneous_sw() {
        let d = ping_pong();
        let design = ModelCompiler::new().compile(&d, &MarkSet::new()).unwrap();
        assert!(design.interface.channels.is_empty());
        assert!(design.c_code.contains("Ping"));
        assert!(design.partition.is_homogeneous());
    }

    #[test]
    fn compile_split_generates_channels_and_text() {
        let d = ping_pong();
        let mut m = MarkSet::new();
        m.mark_hardware("Pong_");
        let design = ModelCompiler::new().compile(&d, &m).unwrap();
        assert_eq!(design.interface.channels.len(), 2);
        assert!(design.c_lines() > 20);
        assert!(design.vhdl_lines() > 20);
        assert!(design.vhdl_code.contains("entity"));
        assert!(design.c_code.contains("#include"));
    }

    #[test]
    fn compilation_is_repeatable() {
        let d = ping_pong();
        let mut m = MarkSet::new();
        m.mark_hardware("Pong_");
        let c = ModelCompiler::new();
        let d1 = c.compile(&d, &m).unwrap();
        let d2 = c.compile(&d, &m).unwrap();
        assert_eq!(d1.c_code, d2.c_code);
        assert_eq!(d1.vhdl_code, d2.vhdl_code);
        assert_eq!(d1.interface, d2.interface);
    }

    #[test]
    fn split_system_runs_and_matches_rally_count() {
        let d = ping_pong();
        let mut m = MarkSet::new();
        m.mark_hardware("Pong_");
        let design = ModelCompiler::new().compile(&d, &m).unwrap();
        let mut sys = design.instantiate();
        let ping = sys.create("Ping").unwrap();
        let pong = sys.create("Pong_").unwrap();
        sys.relate(ping, pong, "R1").unwrap();
        sys.inject(0, ping, "Start", vec![xtuml_core::Value::Int(5)])
            .unwrap();
        let stats = sys.run_to_quiescence().unwrap();
        let obs = sys.observables();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].actor, "SINK");
        assert_eq!(obs[0].args, vec![xtuml_core::Value::Int(0)]);
        // 5 rallies = 5 sw→hw messages + 5 hw→sw replies... plus the
        // serve: 6 crossings toward hw, 6 back minus the terminal one.
        assert!(stats.msgs_sw_to_hw >= 5);
        assert!(stats.msgs_hw_to_sw >= 5);
        assert!(stats.hw_cycles > 0);
    }

    #[test]
    fn all_software_system_runs_too() {
        let d = ping_pong();
        let design = ModelCompiler::new().compile(&d, &MarkSet::new()).unwrap();
        let mut sys = design.instantiate();
        let ping = sys.create("Ping").unwrap();
        let pong = sys.create("Pong_").unwrap();
        sys.relate(ping, pong, "R1").unwrap();
        sys.inject(0, ping, "Start", vec![xtuml_core::Value::Int(3)])
            .unwrap();
        let stats = sys.run_to_quiescence().unwrap();
        assert_eq!(stats.msgs_sw_to_hw, 0);
        let obs = sys.observables();
        assert_eq!(obs.len(), 1);
    }

    #[test]
    fn all_hardware_system_runs_too() {
        let d = ping_pong();
        let mut m = MarkSet::new();
        m.mark_hardware("Ping");
        m.mark_hardware("Pong_");
        let design = ModelCompiler::new().compile(&d, &m).unwrap();
        let mut sys = design.instantiate();
        let ping = sys.create("Ping").unwrap();
        let pong = sys.create("Pong_").unwrap();
        sys.relate(ping, pong, "R1").unwrap();
        sys.inject(0, ping, "Start", vec![xtuml_core::Value::Int(4)])
            .unwrap();
        sys.run_to_quiescence().unwrap();
        let obs = sys.observables();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].args, vec![xtuml_core::Value::Int(0)]);
    }

    #[test]
    fn cross_partition_create_rejected() {
        let mut b = DomainBuilder::new("bad");
        b.class("Maker")
            .event("Go", &[])
            .state("S", "x = create Widget;")
            .initial("S")
            .transition("S", "Go", "S");
        b.class("Widget");
        let d = b.build().unwrap();
        let mut m = MarkSet::new();
        m.mark_hardware("Widget");
        let err = ModelCompiler::new().compile(&d, &m).unwrap_err();
        assert!(err.to_string().contains("creates"));
        // Same model with both on one side is fine.
        assert!(ModelCompiler::new().compile(&d, &MarkSet::new()).is_ok());
    }

    #[test]
    fn cross_partition_select_rejected() {
        let mut b = DomainBuilder::new("bad");
        b.class("Finder")
            .event("Go", &[])
            .state("S", "select many xs from Widget;")
            .initial("S")
            .transition("S", "Go", "S");
        b.class("Widget");
        let d = b.build().unwrap();
        let mut m = MarkSet::new();
        m.mark_hardware("Finder");
        let err = ModelCompiler::new().compile(&d, &m).unwrap_err();
        assert!(err.to_string().contains("selects"));
    }

    #[test]
    fn platform_params_resolve_marks() {
        let d = ping_pong();
        let mut m = MarkSet::new();
        m.set(ElemRef::domain(), keys::CPU_KHZ, 200_000i64);
        m.set(ElemRef::domain(), keys::BUS_LATENCY, 9i64);
        m.set(ElemRef::class("Ping"), keys::PRIORITY, 2i64);
        m.set(ElemRef::class("Pong_"), keys::QUEUE_DEPTH, 4i64);
        let p = PlatformParams::from_marks(&d, &m);
        assert_eq!(p.cpu_khz, 200_000);
        assert_eq!(p.hw_khz, 50_000);
        assert_eq!(p.bus_latency, 9);
        assert_eq!(p.prio[&d.class_id("Ping").unwrap()], 2);
        assert_eq!(p.class_depth[&d.class_id("Pong_").unwrap()], 4);
    }
}
