//! The shared partition host: one `ActionHost` implementation used by
//! *both* generated partitions.
//!
//! Running a state action produces *effects* — local signals, cross-
//! partition signals, timers, cancellations, observable actor outputs.
//! The host buffers them during the run-to-completion block and the
//! side-specific executor (hardware FSM array or software dispatch loop)
//! routes them afterwards. Because routing happens after the block
//! completes, the paper's run-to-completion and cause-before-effect rules
//! hold on both substrates by construction.

use crate::partition::{Partition, Side};
use crate::{MdaError, Result};
use std::rc::Rc;
use xtuml_core::code::CompiledProgram;
use xtuml_core::error::{CoreError, Result as CoreResult};
use xtuml_core::ids::{ActorId, AssocId, AttrId, ClassId, EventId, InstId};
use xtuml_core::interp::{self, ActionHost, ExecCtx};
use xtuml_core::model::{Domain, TransitionTarget};
use xtuml_core::value::Value;
use xtuml_exec::trace::ObservableEvent;
use xtuml_exec::ObjectStore;

/// A locally-routed signal effect.
#[derive(Debug, Clone)]
pub(crate) struct LocalSend {
    pub from: InstId,
    pub to: InstId,
    pub event: EventId,
    pub args: Vec<Value>,
}

/// A signal that must cross the bridge.
#[derive(Debug, Clone)]
pub(crate) struct CrossSend {
    pub to: InstId,
    pub event: EventId,
    pub args: Vec<Value>,
}

/// A delayed signal (timer), deadline in absolute hardware cycles.
#[derive(Debug, Clone)]
pub(crate) struct DelayedSend {
    pub deadline: u64,
    pub from: InstId,
    pub to: InstId,
    pub event: EventId,
    pub args: Vec<Value>,
}

/// Effects accumulated by one dispatched action block.
#[derive(Debug, Default)]
pub(crate) struct Effects {
    pub local: Vec<LocalSend>,
    pub cross: Vec<CrossSend>,
    pub delayed: Vec<DelayedSend>,
    pub cancels: Vec<(InstId, EventId)>,
}

/// The per-partition execution state shared by both lowerings.
pub(crate) struct PCore<'d> {
    pub domain: &'d Domain,
    /// Slot-resolved action code shared with the abstract interpreter's
    /// representation: both substrates execute identical compiled blocks.
    pub program: Rc<CompiledProgram>,
    pub side: Side,
    pub partition: Partition,
    pub store: ObjectStore,
    /// Current hardware time (mirrored in by the executor each step).
    pub now: u64,
    /// Hardware cycles per model time unit (timer scaling).
    pub cycles_per_unit: u64,
    /// Observable outputs: `(hw time, sequence, event)`.
    pub observables: Vec<(u64, u64, ObservableEvent)>,
    seq: u64,
    effects: Effects,
}

impl<'d> PCore<'d> {
    pub fn new(
        domain: &'d Domain,
        side: Side,
        partition: Partition,
        cycles_per_unit: u64,
    ) -> PCore<'d> {
        PCore {
            domain,
            program: Rc::new(CompiledProgram::new(domain)),
            side,
            partition,
            store: ObjectStore::new(domain.associations.len()),
            now: 0,
            cycles_per_unit: cycles_per_unit.max(1),
            observables: Vec::new(),
            seq: 0,
            effects: Effects::default(),
        }
    }

    /// Dispatches one event to a local instance: transition lookup, state
    /// change, action execution. Returns the action's step count (the
    /// substrate cost model input) and leaves effects buffered.
    ///
    /// # Errors
    ///
    /// Propagates action runtime errors; a can't-happen event is an error
    /// (the generated implementations are strict).
    pub fn dispatch(&mut self, to: InstId, event: EventId, args: Vec<Value>) -> Result<u64> {
        let class = self.store.class_of(to)?;
        let c = self.domain.class(class);
        let Some(machine) = c.state_machine.as_ref() else {
            return Err(MdaError::mapping(format!(
                "signal delivered to passive class {}",
                c.name
            )));
        };
        let from_state = self.store.state_of(to)?;
        match self.program.target(class, from_state, event) {
            TransitionTarget::To(to_state) => {
                self.store.set_state(to, to_state)?;
                let program = Rc::clone(&self.program);
                let action = program.action(class, to_state, event).ok_or_else(|| {
                    CoreError::runtime("internal: dispatched pair has no compiled action")
                })??;
                let mut ctx = ExecCtx::new(to, action);
                ctx.bind_args(args);
                interp::run_code(self, &mut ctx, action)?;
                Ok(ctx.steps)
            }
            TransitionTarget::Ignore => Ok(1),
            TransitionTarget::CantHappen => Err(MdaError::Core(CoreError::CantHappen {
                class: c.name.clone(),
                state: machine.state(from_state).name.clone(),
                event: c.events[event.index()].name.clone(),
            })),
        }
    }

    /// Drains the effects buffered by the last dispatch.
    pub fn take_effects(&mut self) -> Effects {
        std::mem::take(&mut self.effects)
    }

    /// Converts a model delay (abstract time units ≙ microseconds) into
    /// hardware cycles, at least one.
    pub fn delay_to_cycles(&self, delay: i64) -> u64 {
        ((delay as u64).saturating_mul(self.cycles_per_unit)).max(1)
    }

    /// Records an observable output at the current time.
    pub fn observe(&mut self, actor: &str, event: &str, args: Vec<Value>) {
        self.seq += 1;
        self.observables.push((
            self.now,
            self.seq,
            ObservableEvent {
                actor: actor.to_owned(),
                event: event.to_owned(),
                args,
            },
        ));
    }
}

impl ActionHost for PCore<'_> {
    fn domain(&self) -> &Domain {
        self.domain
    }

    fn create(&mut self, class: ClassId) -> CoreResult<InstId> {
        if self.partition.side(class) != self.side {
            return Err(CoreError::runtime(format!(
                "mapping rule: cannot create remote-partition class {}",
                self.domain.class(class).name
            )));
        }
        Ok(self.store.create(self.domain, class))
    }

    fn delete(&mut self, inst: InstId) -> CoreResult<()> {
        if self.store.is_proxy(inst) {
            return Err(CoreError::runtime(
                "mapping rule: cannot delete a remote-partition instance",
            ));
        }
        self.store.delete(inst)
    }

    fn class_of(&self, inst: InstId) -> CoreResult<ClassId> {
        self.store.class_of(inst)
    }

    fn attr_read(&self, inst: InstId, attr: AttrId) -> CoreResult<Value> {
        self.store.attr_read(inst, attr)
    }

    fn attr_write(&mut self, inst: InstId, attr: AttrId, value: Value) -> CoreResult<()> {
        self.store.attr_write(self.domain, inst, attr, value)
    }

    fn instances_of(&self, class: ClassId) -> Vec<InstId> {
        self.store.instances_of(class)
    }

    fn related(&self, inst: InstId, assoc: AssocId) -> CoreResult<Vec<InstId>> {
        self.store.related(inst, assoc)
    }

    fn each_instance(&self, class: ClassId, f: &mut dyn FnMut(InstId)) {
        self.store.instances_iter(class).for_each(f);
    }

    fn first_instance_of(&self, class: ClassId) -> Option<InstId> {
        self.store.first_instance_of(class)
    }

    fn related_each(
        &self,
        inst: InstId,
        assoc: AssocId,
        f: &mut dyn FnMut(InstId),
    ) -> CoreResult<()> {
        self.store.related_iter(inst, assoc)?.for_each(f);
        Ok(())
    }

    fn relate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> CoreResult<()> {
        if self.store.is_proxy(a) || self.store.is_proxy(b) {
            return Err(CoreError::runtime(
                "mapping rule: cannot relate across the partition boundary at run time",
            ));
        }
        self.store.relate(self.domain, a, b, assoc)
    }

    fn unrelate(&mut self, a: InstId, b: InstId, assoc: AssocId) -> CoreResult<()> {
        if self.store.is_proxy(a) || self.store.is_proxy(b) {
            return Err(CoreError::runtime(
                "mapping rule: cannot unrelate across the partition boundary at run time",
            ));
        }
        self.store.unrelate(a, b, assoc)
    }

    fn send(
        &mut self,
        from: InstId,
        to: InstId,
        event: EventId,
        args: Vec<Value>,
    ) -> CoreResult<()> {
        let class = self.store.class_of(to)?;
        if self.partition.side(class) == self.side {
            self.effects.local.push(LocalSend {
                from,
                to,
                event,
                args,
            });
        } else {
            self.effects.cross.push(CrossSend { to, event, args });
        }
        Ok(())
    }

    fn send_actor(
        &mut self,
        _from: InstId,
        actor: ActorId,
        event: EventId,
        args: Vec<Value>,
    ) -> CoreResult<()> {
        let a = self.domain.actor(actor);
        let name = a.name.clone();
        let ev = a.events[event.index()].name.clone();
        self.observe(&name, &ev, args);
        Ok(())
    }

    fn send_delayed(
        &mut self,
        from: InstId,
        to: InstId,
        event: EventId,
        args: Vec<Value>,
        delay: i64,
    ) -> CoreResult<()> {
        self.store.class_of(to)?;
        let deadline = self.now + self.delay_to_cycles(delay);
        self.effects.delayed.push(DelayedSend {
            deadline,
            from,
            to,
            event,
            args,
        });
        Ok(())
    }

    fn cancel_delayed(&mut self, inst: InstId, event: EventId) -> CoreResult<()> {
        // Remove same-dispatch delayed sends, and record the cancel for
        // timers already armed by the executor.
        self.effects
            .delayed
            .retain(|d| !(d.to == inst && d.event == event));
        self.effects.cancels.push((inst, event));
        Ok(())
    }

    fn bridge_call(&mut self, actor: ActorId, func: &str, args: Vec<Value>) -> CoreResult<Value> {
        let a = self.domain.actor(actor);
        let decl = a
            .func(func)
            .ok_or_else(|| CoreError::unresolved("bridge function", func))?;
        let ret = decl.ret;
        let name = a.name.clone();
        self.observe(&name, func, args);
        Ok(match ret {
            Some(t) => Value::default_for(t),
            None => Value::Bool(false),
        })
    }
}
