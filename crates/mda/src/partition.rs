//! The hardware/software partition, derived from marks.

use std::collections::BTreeSet;
use xtuml_core::ids::ClassId;
use xtuml_core::marks::MarkSet;
use xtuml_core::model::Domain;

/// Which implementation technology a class is mapped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The software partition (generated C on the CPU model).
    Sw,
    /// The hardware partition (generated VHDL on the RTL model).
    Hw,
}

impl Side {
    /// The other side.
    pub fn other(self) -> Side {
        match self {
            Side::Sw => Side::Hw,
            Side::Hw => Side::Sw,
        }
    }
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::Sw => write!(f, "software"),
            Side::Hw => write!(f, "hardware"),
        }
    }
}

/// The partition of a domain's classes, derived purely from the
/// `isHardware` marks — the model itself is untouched (paper §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    sides: Vec<Side>, // index = ClassId
    hw: BTreeSet<ClassId>,
    sw: BTreeSet<ClassId>,
}

impl Partition {
    /// Derives the partition: a class is hardware iff marked
    /// `isHardware = true`; everything else (including passive classes)
    /// defaults to software.
    pub fn from_marks(domain: &Domain, marks: &MarkSet) -> Partition {
        let mut sides = Vec::with_capacity(domain.classes.len());
        let mut hw = BTreeSet::new();
        let mut sw = BTreeSet::new();
        for (i, class) in domain.classes.iter().enumerate() {
            let id = ClassId::new(i as u32);
            let side = if marks.is_hardware(&class.name) {
                hw.insert(id);
                Side::Hw
            } else {
                sw.insert(id);
                Side::Sw
            };
            sides.push(side);
        }
        Partition { sides, hw, sw }
    }

    /// The side a class is mapped to.
    ///
    /// # Panics
    ///
    /// Panics on a class id from a different domain.
    pub fn side(&self, class: ClassId) -> Side {
        self.sides[class.index()]
    }

    /// Classes mapped to hardware, ascending.
    pub fn hw_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.hw.iter().copied()
    }

    /// Classes mapped to software, ascending.
    pub fn sw_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.sw.iter().copied()
    }

    /// Number of hardware classes.
    pub fn hw_count(&self) -> usize {
        self.hw.len()
    }

    /// Number of software classes.
    pub fn sw_count(&self) -> usize {
        self.sw.len()
    }

    /// True when the whole domain lives on one side (no bridge needed).
    pub fn is_homogeneous(&self) -> bool {
        self.hw.is_empty() || self.sw.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::builder::DomainBuilder;

    fn domain() -> Domain {
        let mut b = DomainBuilder::new("d");
        b.class("A");
        b.class("B");
        b.class("C");
        b.build().unwrap()
    }

    #[test]
    fn default_is_all_software() {
        let d = domain();
        let p = Partition::from_marks(&d, &MarkSet::new());
        assert_eq!(p.sw_count(), 3);
        assert_eq!(p.hw_count(), 0);
        assert!(p.is_homogeneous());
        assert_eq!(p.side(ClassId::new(0)), Side::Sw);
    }

    #[test]
    fn marks_move_classes() {
        let d = domain();
        let mut m = MarkSet::new();
        m.mark_hardware("B");
        let p = Partition::from_marks(&d, &m);
        assert_eq!(p.side(d.class_id("B").unwrap()), Side::Hw);
        assert_eq!(p.side(d.class_id("A").unwrap()), Side::Sw);
        assert!(!p.is_homogeneous());
        assert_eq!(p.hw_classes().count(), 1);
    }

    #[test]
    fn repartition_is_only_a_mark_change() {
        let d = domain();
        let mut m = MarkSet::new();
        m.mark_hardware("A");
        let p1 = Partition::from_marks(&d, &m);
        m.toggle_hardware("A");
        m.mark_hardware("C");
        let p2 = Partition::from_marks(&d, &m);
        assert_ne!(p1, p2);
        assert_eq!(p2.side(d.class_id("A").unwrap()), Side::Sw);
        assert_eq!(p2.side(d.class_id("C").unwrap()), Side::Hw);
    }

    #[test]
    fn side_other() {
        assert_eq!(Side::Hw.other(), Side::Sw);
        assert_eq!(Side::Sw.other(), Side::Hw);
        assert_eq!(Side::Hw.to_string(), "hardware");
    }
}
