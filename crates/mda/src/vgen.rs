//! VHDL generation for the hardware partition.
//!
//! Emits one design file in the style a hardware-targeting xtUML model
//! compiler would produce: a package with channel/opcode constants derived
//! from the shared interface spec, one entity per hardware class (state
//! register + event FIFO + a clocked FSM process whose action bodies are
//! translated statement-by-statement), and the bridge register-file entity
//! with the same address map the generated C driver uses.
//!
//! As with the C side, the text is validated by golden tests and size
//! metrics; the executable hardware partition ([`crate::hw`]) is the same
//! lowering run on the RTL substrate.

use crate::compiler::PlatformParams;
use crate::interface::InterfaceSpec;
use crate::partition::{Partition, Side};
use std::fmt::Write as _;
use xtuml_core::action::{Block, Expr, GenTarget, LValue, Stmt};
use xtuml_core::ids::ClassId;
use xtuml_core::model::{Class, Domain, TransitionTarget};
use xtuml_core::value::{BinOp, DataType, UnOp, Value};
use xtuml_cosim::RegisterFile;

fn v_type(ty: DataType) -> &'static str {
    match ty {
        DataType::Bool => "std_logic",
        DataType::Int => "signed(63 downto 0)",
        DataType::Real => "real",
        // Strings and references degrade to ids; strings cannot cross the
        // boundary and hardware-local strings are a mapping error the
        // compiler rejects earlier.
        DataType::Str => "string",
        DataType::Inst(_) => "unsigned(31 downto 0)",
        DataType::Set(_) => "inst_set_t",
    }
}

fn v_literal(v: &Value) -> String {
    match v {
        Value::Bool(b) => if *b { "'1'" } else { "'0'" }.to_owned(),
        Value::Int(i) => format!("to_signed({i}, 64)"),
        Value::Real(r) => format!("{r:?}"),
        Value::Str(s) => format!("{s:?}"),
        Value::Inst(..) => "NO_INST".to_owned(),
        Value::Set(..) => "EMPTY_SET".to_owned(),
    }
}

fn v_expr(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => v_literal(v),
        Expr::Var(n) => format!("v_{n}"),
        Expr::SelfRef => "self_id".to_owned(),
        Expr::Selected => "sel_id".to_owned(),
        Expr::Param(n) => format!("evt_{n}"),
        Expr::Attr(base, n) => match base.as_ref() {
            Expr::SelfRef => format!("r_{n}"),
            other => format!("attr_read({}, A_{n})", v_expr(other)),
        },
        Expr::Nav(base, class, assoc) => {
            format!("nav({}, C_{class}, {assoc})", v_expr(base))
        }
        Expr::Unary(op, e) => match op {
            UnOp::Neg => format!("(-{})", v_expr(e)),
            UnOp::Not => format!("(not {})", v_expr(e)),
            UnOp::Cardinality => format!("set_size({})", v_expr(e)),
            UnOp::Empty => format!("set_empty({})", v_expr(e)),
            UnOp::NotEmpty => format!("(not set_empty({}))", v_expr(e)),
            UnOp::Any => format!("set_first({})", v_expr(e)),
            UnOp::ToInt => format!("to_int({})", v_expr(e)),
            UnOp::ToReal => format!("to_real({})", v_expr(e)),
            UnOp::ToStr => format!("to_string({})", v_expr(e)),
        },
        Expr::Binary(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "mod",
                BinOp::Eq => "=",
                BinOp::Ne => "/=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "and",
                BinOp::Or => "or",
            };
            format!("({} {o} {})", v_expr(a), v_expr(b))
        }
        Expr::BridgeCall(actor, func, args) => {
            let mut s = format!("bridge_{actor}_{func}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&v_expr(a));
            }
            s.push(')');
            s
        }
    }
}

fn v_block(out: &mut String, block: &Block, indent: usize) {
    for stmt in &block.stmts {
        v_stmt(out, stmt, indent);
    }
}

fn v_stmt(out: &mut String, stmt: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match stmt {
        Stmt::Assign { lhs, expr, .. } => {
            let l = match lhs {
                LValue::Var(n) => format!("v_{n}"),
                LValue::Attr(base, n) => match base {
                    Expr::SelfRef => format!("r_{n}"),
                    other => format!("attr_slot({}, A_{n})", v_expr(other)),
                },
            };
            let _ = writeln!(out, "{pad}{l} := {};", v_expr(expr));
        }
        Stmt::Create { var, class, .. } => {
            // Hardware populations are static; a runtime create in a
            // hardware class allocates from the pre-provisioned pool.
            let _ = writeln!(out, "{pad}v_{var} := pool_alloc(C_{class});");
        }
        Stmt::Delete { expr, .. } => {
            let _ = writeln!(out, "{pad}pool_free({});", v_expr(expr));
        }
        Stmt::SelectAny {
            var, class, filter, ..
        } => {
            let f = filter.as_ref().map_or("ALWAYS".to_owned(), v_expr);
            let _ = writeln!(out, "{pad}v_{var} := select_any(C_{class}, {f});");
        }
        Stmt::SelectMany {
            var, class, filter, ..
        } => {
            let f = filter.as_ref().map_or("ALWAYS".to_owned(), v_expr);
            let _ = writeln!(out, "{pad}v_{var} := select_many(C_{class}, {f});");
        }
        Stmt::Relate { a, b, assoc, .. } => {
            let _ = writeln!(out, "{pad}link({}, {}, {assoc});", v_expr(a), v_expr(b));
        }
        Stmt::Unrelate { a, b, assoc, .. } => {
            let _ = writeln!(out, "{pad}unlink({}, {}, {assoc});", v_expr(a), v_expr(b));
        }
        Stmt::Generate {
            event,
            args,
            target,
            delay,
            ..
        } => {
            let args_s: Vec<String> = args.iter().map(v_expr).collect();
            let payload = if args_s.is_empty() {
                "(others => (others => '0'))".to_owned()
            } else {
                format!("pack({})", args_s.join(", "))
            };
            match (target, delay) {
                (GenTarget::Actor(a), _) => {
                    let _ = writeln!(out, "{pad}actor_{a}_{event} <= '1';");
                    if !args_s.is_empty() {
                        let _ = writeln!(
                            out,
                            "{pad}actor_{a}_{event}_data <= {};",
                            args_s.join(" & ")
                        );
                    }
                }
                (GenTarget::Inst(t), None) => {
                    let _ = writeln!(out, "{pad}emit_event(E_{event}, {}, {payload});", v_expr(t));
                }
                (GenTarget::Inst(t), Some(d)) => {
                    let _ = writeln!(
                        out,
                        "{pad}arm_timer(E_{event}, {}, {} * CYCLES_PER_UNIT, {payload});",
                        v_expr(t),
                        v_expr(d)
                    );
                }
            }
        }
        Stmt::Cancel { event, .. } => {
            let _ = writeln!(out, "{pad}cancel_timer(E_{event}, self_id);");
        }
        Stmt::If {
            arms, otherwise, ..
        } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                let kw = if i == 0 { "if" } else { "elsif" };
                let _ = writeln!(out, "{pad}{kw} {} then", v_expr(cond));
                v_block(out, body, indent + 1);
            }
            if let Some(body) = otherwise {
                let _ = writeln!(out, "{pad}else");
                v_block(out, body, indent + 1);
            }
            let _ = writeln!(out, "{pad}end if;");
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while {} loop", v_expr(cond));
            v_block(out, body, indent + 1);
            let _ = writeln!(out, "{pad}end loop;");
        }
        Stmt::ForEach { var, set, body, .. } => {
            let _ = writeln!(out, "{pad}for v_{var} in set_iter({}) loop", v_expr(set));
            v_block(out, body, indent + 1);
            let _ = writeln!(out, "{pad}end loop;");
        }
        Stmt::Break { .. } => {
            let _ = writeln!(out, "{pad}exit;");
        }
        Stmt::Continue { .. } => {
            let _ = writeln!(out, "{pad}next;");
        }
        Stmt::Return { .. } => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::ExprStmt { expr, .. } => {
            let _ = writeln!(out, "{pad}dummy := {};", v_expr(expr));
        }
    }
}

fn gen_entity(out: &mut String, class: &Class, params: &PlatformParams, class_id: ClassId) {
    let depth = params
        .class_depth
        .get(&class_id)
        .copied()
        .unwrap_or(params.default_depth);
    let _ = writeln!(out, "-- ---- class {} ----", class.name);
    let _ = writeln!(out, "entity {}_fsm is", class.name);
    let _ = writeln!(out, "    generic (QUEUE_DEPTH : positive := {depth});");
    let _ = writeln!(out, "    port (");
    let _ = writeln!(out, "        clk        : in  std_logic;");
    let _ = writeln!(out, "        rst_n      : in  std_logic;");
    let _ = writeln!(out, "        evt_valid  : in  std_logic;");
    let _ = writeln!(out, "        evt_kind   : in  event_kind_t;");
    let _ = writeln!(out, "        evt_data   : in  payload_t;");
    let _ = writeln!(out, "        evt_ready  : out std_logic;");
    let _ = writeln!(out, "        out_valid  : out std_logic;");
    let _ = writeln!(out, "        out_kind   : out event_kind_t;");
    let _ = writeln!(out, "        out_data   : out payload_t");
    let _ = writeln!(out, "    );");
    let _ = writeln!(out, "end entity;\n");

    let _ = writeln!(out, "architecture rtl of {}_fsm is", class.name);
    let Some(machine) = &class.state_machine else {
        let _ = writeln!(out, "begin\nend architecture;\n");
        return;
    };
    let states: Vec<String> = machine
        .states
        .iter()
        .map(|s| format!("S_{}", s.name))
        .collect();
    let _ = writeln!(out, "    type state_t is ({});", states.join(", "));
    let _ = writeln!(
        out,
        "    signal state : state_t := S_{};",
        machine.state(machine.initial).name
    );
    for a in &class.attributes {
        let _ = writeln!(out, "    signal r_{} : {};", a.name, v_type(a.ty));
    }
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "    fsm : process (clk)");
    let _ = writeln!(out, "    begin");
    let _ = writeln!(out, "        if rising_edge(clk) then");
    let _ = writeln!(out, "            if rst_n = '0' then");
    let _ = writeln!(
        out,
        "                state <= S_{};",
        machine.state(machine.initial).name
    );
    let _ = writeln!(out, "            elsif evt_valid = '1' then");
    let _ = writeln!(out, "                case state is");
    for (si, s) in machine.states.iter().enumerate() {
        let _ = writeln!(out, "                when S_{} =>", s.name);
        let _ = writeln!(out, "                    case evt_kind is");
        let mut any = false;
        for t in &machine.transitions {
            if t.from.index() != si {
                continue;
            }
            any = true;
            let ev = &class.events[t.event.index()].name;
            match t.target {
                TransitionTarget::To(to) => {
                    let to_s = &machine.state(to).name;
                    let _ = writeln!(out, "                    when E_{ev} =>");
                    let _ = writeln!(out, "                        state <= S_{to_s};");
                    let _ = writeln!(out, "                        -- entry actions of {to_s}:");
                    let mut body = String::new();
                    v_block(&mut body, &machine.state(to).action, 6);
                    out.push_str(&body);
                }
                TransitionTarget::Ignore => {
                    let _ = writeln!(out, "                    when E_{ev} => null; -- ignore");
                }
                TransitionTarget::CantHappen => {}
            }
        }
        // Undeclared (state, event) pairs are specification errors.
        let _ = any;
        let _ = writeln!(out, "                    when others => cant_happen;");
        let _ = writeln!(out, "                    end case;");
    }
    let _ = writeln!(out, "                end case;");
    let _ = writeln!(out, "            end if;");
    let _ = writeln!(out, "        end if;");
    let _ = writeln!(out, "    end process;");
    let _ = writeln!(out, "end architecture;\n");
}

fn gen_bridge(out: &mut String, domain: &Domain, iface: &InterfaceSpec) {
    let _ = writeln!(
        out,
        "-- ==== GENERATED BRIDGE REGISTER FILE — single source: interface spec ===="
    );
    let _ = writeln!(out, "entity xtuml_bridge is");
    let _ = writeln!(out, "    port (");
    let _ = writeln!(out, "        clk     : in  std_logic;");
    let _ = writeln!(out, "        rst_n   : in  std_logic;");
    let _ = writeln!(out, "        bus_addr  : in  unsigned(11 downto 0);");
    let _ = writeln!(
        out,
        "        bus_wdata : in  std_logic_vector(31 downto 0);"
    );
    let _ = writeln!(out, "        bus_we    : in  std_logic;");
    let _ = writeln!(out, "        bus_rdata : out std_logic_vector(31 downto 0)");
    let _ = writeln!(out, "    );");
    let _ = writeln!(out, "end entity;\n");
    let _ = writeln!(out, "architecture rtl of xtuml_bridge is");
    for ch in &iface.channels {
        let class = &domain.class(ch.target_class).name;
        let event = &domain.class(ch.target_class).events[ch.event.index()].name;
        let _ = writeln!(
            out,
            "    constant CH_{class}_{event} : natural := {}; -- {} , {} word(s)",
            ch.id, ch.dir, ch.payload_words
        );
        if ch.dir == xtuml_cosim::Direction::SwToHw {
            for w in 0..ch.payload_words {
                let _ = writeln!(
                    out,
                    "    constant ADDR_{class}_{event}_W{w} : natural := 16#{:03X}#;",
                    RegisterFile::tx_data_addr(ch.id, w)
                );
            }
            let _ = writeln!(
                out,
                "    constant ADDR_{class}_{event}_BELL : natural := 16#{:03X}#;",
                RegisterFile::tx_doorbell_addr(ch.id)
            );
        }
    }
    let _ = writeln!(out, "    constant ADDR_RX_STATUS  : natural := 16#100#;");
    let _ = writeln!(out, "    constant ADDR_RX_CHANNEL : natural := 16#101#;");
    let _ = writeln!(out, "    constant ADDR_RX_DATA0   : natural := 16#102#;");
    let _ = writeln!(out, "    constant ADDR_RX_POP     : natural := 16#10F#;");
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "    -- Doorbell decode, RX FIFO head mux, etc.");
    let _ = writeln!(out, "end architecture;\n");
}

/// Generates the hardware partition's VHDL design file.
pub fn generate_vhdl(
    domain: &Domain,
    partition: &Partition,
    iface: &InterfaceSpec,
    params: &PlatformParams,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- Generated by the xtuml model compiler — DO NOT EDIT.\n\
         -- Domain: {}\n\
         -- Hardware partition ({} class(es)); clock {} kHz.",
        domain.name,
        partition.hw_count(),
        params.hw_khz
    );
    out.push_str("library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n");

    // Shared package: event kinds, channels, timing.
    let _ = writeln!(out, "package xtuml_pkg is");
    let _ = writeln!(
        out,
        "    constant CYCLES_PER_UNIT : natural := {};",
        params.cycles_per_unit
    );
    for (ci, class) in domain.classes.iter().enumerate() {
        let _ = writeln!(out, "    constant C_{} : natural := {};", class.name, ci);
        if partition.side(ClassId::new(ci as u32)) == Side::Hw {
            for e in &class.events {
                let _ = writeln!(out, "    -- event E_{} of {}", e.name, class.name);
            }
        }
    }
    let _ = writeln!(out, "end package;\n");

    for (ci, class) in domain.classes.iter().enumerate() {
        let id = ClassId::new(ci as u32);
        if partition.side(id) == Side::Hw {
            gen_entity(&mut out, class, params, id);
        }
    }

    gen_bridge(&mut out, domain, iface);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::builder::DomainBuilder;
    use xtuml_core::marks::MarkSet;
    use xtuml_core::model::Multiplicity;

    fn split_design() -> crate::CompiledDesign<'static> {
        // Leak the domain: tests want a 'static design for brevity.
        let mut b = DomainBuilder::new("vg");
        b.class("Ctrl")
            .event("Kick", &[])
            .state("I", "")
            .state("R", "f = any(self -> Filt[R1]); gen Work(2) to f;")
            .initial("I")
            .transition("I", "Kick", "R")
            .transition("R", "Kick", "R");
        b.class("Filt")
            .attr("acc", DataType::Int)
            .event("Work", &[("n", DataType::Int)])
            .state("W", "")
            .state(
                "X",
                "self.acc = self.acc + rcvd.n;\n\
                 if (self.acc > 10) { self.acc = 0; }\n\
                 gen Work(1) to self after 5;",
            )
            .initial("W")
            .transition("W", "Work", "X")
            .transition("X", "Work", "X");
        b.association("R1", "Ctrl", Multiplicity::One, "Filt", Multiplicity::One);
        let domain = Box::leak(Box::new(b.build().unwrap()));
        let mut m = MarkSet::new();
        m.mark_hardware("Filt");
        crate::ModelCompiler::new().compile(domain, &m).unwrap()
    }

    #[test]
    fn vhdl_has_package_entity_and_fsm() {
        let v = split_design().vhdl_code;
        assert!(v.contains("package xtuml_pkg is"));
        assert!(v.contains("entity Filt_fsm is"));
        assert!(v.contains("architecture rtl of Filt_fsm is"));
        assert!(v.contains("type state_t is (S_W, S_X);"));
        assert!(v.contains("signal r_acc : signed(63 downto 0);"));
        assert!(v.contains("if rising_edge(clk) then"));
        assert!(v.contains("when E_Work =>"));
        assert!(v.contains("state <= S_X;"));
    }

    #[test]
    fn software_classes_get_no_entity() {
        let v = split_design().vhdl_code;
        assert!(!v.contains("entity Ctrl_fsm"));
    }

    #[test]
    fn actions_translate_to_vhdl() {
        let v = split_design().vhdl_code;
        assert!(v.contains("r_acc := (r_acc + evt_n);"));
        assert!(v.contains("if (r_acc > to_signed(10, 64)) then"));
        assert!(v.contains("arm_timer(E_Work, self_id, to_signed(5, 64) * CYCLES_PER_UNIT"));
        assert!(v.contains("end if;"));
    }

    #[test]
    fn bridge_entity_mirrors_register_map() {
        let v = split_design().vhdl_code;
        assert!(v.contains("entity xtuml_bridge is"));
        assert!(v.contains("constant ADDR_RX_STATUS  : natural := 16#100#;"));
        // Channel for sw→hw Filt.Work has TX registers.
        assert!(v.contains("ADDR_Filt_Work_W0"));
        assert!(v.contains("ADDR_Filt_Work_BELL"));
    }

    #[test]
    fn queue_depth_mark_becomes_generic() {
        let mut b = DomainBuilder::new("qd");
        b.class("H")
            .event("E", &[])
            .state("S", "")
            .initial("S")
            .transition("S", "E", "S");
        let domain = Box::leak(Box::new(b.build().unwrap()));
        let mut m = MarkSet::new();
        m.mark_hardware("H");
        m.set(
            xtuml_core::marks::ElemRef::class("H"),
            xtuml_core::marks::keys::QUEUE_DEPTH,
            3i64,
        );
        let design = crate::ModelCompiler::new().compile(domain, &m).unwrap();
        assert!(design
            .vhdl_code
            .contains("generic (QUEUE_DEPTH : positive := 3);"));
    }
}
