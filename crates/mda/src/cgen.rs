//! C code generation for the software partition.
//!
//! Emits one translation unit in the style of a classic xtUML model
//! compiler's generated code: instance structs, event enums, marshalled
//! event payload unions, one dispatch function per class (a `switch` over
//! `(state, event)`), action bodies translated statement-by-statement, a
//! priority dispatch loop, and the **generated bus driver** whose register
//! offsets come from the shared interface spec (this is the half of the
//! "generated interface" the software links against).
//!
//! The text is what a downstream embedded build would compile; within
//! this reproduction it is validated by golden tests and size metrics
//! (experiment E6), while the *executable* software partition
//! ([`crate::swpart`]) is the same lowering interpreted directly.

use crate::compiler::PlatformParams;
use crate::interface::InterfaceSpec;
use crate::partition::{Partition, Side};
use std::fmt::Write as _;
use xtuml_core::action::{Block, Expr, GenTarget, LValue, Stmt};
use xtuml_core::ids::ClassId;
use xtuml_core::model::{Class, Domain, TransitionTarget};
use xtuml_core::value::{BinOp, DataType, UnOp, Value};
use xtuml_cosim::RegisterFile;

fn c_type(ty: DataType) -> &'static str {
    match ty {
        DataType::Bool => "bool",
        DataType::Int => "int64_t",
        DataType::Real => "double",
        DataType::Str => "const char *",
        DataType::Inst(_) => "xtuml_inst_t",
        DataType::Set(_) => "xtuml_set_t",
    }
}

fn c_literal(v: &Value) -> String {
    match v {
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => format!("INT64_C({i})"),
        Value::Real(r) => format!("{r:?}"),
        Value::Str(s) => format!("{s:?}"),
        Value::Inst(..) => "XTUML_NO_INST".to_owned(),
        Value::Set(..) => "xtuml_set_empty()".to_owned(),
    }
}

fn c_expr(e: &Expr) -> String {
    match e {
        Expr::Lit(v) => c_literal(v),
        Expr::Var(n) => n.clone(),
        Expr::SelfRef => "self".to_owned(),
        Expr::Selected => "selected".to_owned(),
        Expr::Param(n) => format!("evt->{n}"),
        Expr::Attr(base, n) => format!("{}->{n}", c_expr(base)),
        Expr::Nav(base, class, assoc) => {
            format!("xtuml_nav({}, CLASS_{class}, {assoc})", c_expr(base))
        }
        Expr::Unary(op, e) => match op {
            UnOp::Neg => format!("(-{})", c_expr(e)),
            UnOp::Not => format!("(!{})", c_expr(e)),
            UnOp::Cardinality => format!("xtuml_cardinality({})", c_expr(e)),
            UnOp::Empty => format!("xtuml_is_empty({})", c_expr(e)),
            UnOp::NotEmpty => format!("(!xtuml_is_empty({}))", c_expr(e)),
            UnOp::Any => format!("xtuml_any({})", c_expr(e)),
            UnOp::ToInt => format!("(int64_t)({})", c_expr(e)),
            UnOp::ToReal => format!("(double)({})", c_expr(e)),
            UnOp::ToStr => format!("xtuml_to_string({})", c_expr(e)),
        },
        Expr::Binary(op, a, b) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {o} {})", c_expr(a), c_expr(b))
        }
        Expr::BridgeCall(actor, func, args) => {
            let mut s = format!("{actor}_{func}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&c_expr(a));
            }
            s.push(')');
            s
        }
    }
}

fn c_block(out: &mut String, block: &Block, indent: usize) {
    for stmt in &block.stmts {
        c_stmt(out, stmt, indent);
    }
}

fn c_stmt(out: &mut String, stmt: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match stmt {
        Stmt::Assign { lhs, expr, .. } => {
            let l = match lhs {
                LValue::Var(n) => n.clone(),
                LValue::Attr(base, n) => format!("{}->{n}", c_expr(base)),
            };
            let _ = writeln!(out, "{pad}{l} = {};", c_expr(expr));
        }
        Stmt::Create { var, class, .. } => {
            let _ = writeln!(out, "{pad}{var} = xtuml_create(CLASS_{class});");
        }
        Stmt::Delete { expr, .. } => {
            let _ = writeln!(out, "{pad}xtuml_delete({});", c_expr(expr));
        }
        Stmt::SelectAny {
            var, class, filter, ..
        } => match filter {
            None => {
                let _ = writeln!(out, "{pad}{var} = xtuml_select_any(CLASS_{class}, NULL);");
            }
            Some(f) => {
                let _ = writeln!(
                    out,
                    "{pad}{var} = XTUML_SELECT_ANY_WHERE(CLASS_{class}, selected, {});",
                    c_expr(f)
                );
            }
        },
        Stmt::SelectMany {
            var, class, filter, ..
        } => match filter {
            None => {
                let _ = writeln!(out, "{pad}{var} = xtuml_select_many(CLASS_{class}, NULL);");
            }
            Some(f) => {
                let _ = writeln!(
                    out,
                    "{pad}{var} = XTUML_SELECT_MANY_WHERE(CLASS_{class}, selected, {});",
                    c_expr(f)
                );
            }
        },
        Stmt::Relate { a, b, assoc, .. } => {
            let _ = writeln!(
                out,
                "{pad}xtuml_relate({}, {}, {assoc});",
                c_expr(a),
                c_expr(b)
            );
        }
        Stmt::Unrelate { a, b, assoc, .. } => {
            let _ = writeln!(
                out,
                "{pad}xtuml_unrelate({}, {}, {assoc});",
                c_expr(a),
                c_expr(b)
            );
        }
        Stmt::Generate {
            event,
            args,
            target,
            delay,
            ..
        } => {
            let args_s: Vec<String> = args.iter().map(c_expr).collect();
            let arglist = if args_s.is_empty() {
                String::new()
            } else {
                format!(", {}", args_s.join(", "))
            };
            match (target, delay) {
                (GenTarget::Actor(a), _) => {
                    let _ = writeln!(out, "{pad}xtuml_signal_actor_{a}_{event}(0{arglist});");
                }
                (GenTarget::Inst(t), None) => {
                    let _ = writeln!(out, "{pad}xtuml_gen(EVT_{event}, {}{arglist});", c_expr(t));
                }
                (GenTarget::Inst(t), Some(d)) => {
                    let _ = writeln!(
                        out,
                        "{pad}xtuml_gen_delayed(EVT_{event}, {}, {}{arglist});",
                        c_expr(t),
                        c_expr(d)
                    );
                }
            }
        }
        Stmt::Cancel { event, .. } => {
            let _ = writeln!(out, "{pad}xtuml_cancel(EVT_{event}, self);");
        }
        Stmt::If {
            arms, otherwise, ..
        } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                let kw = if i == 0 { "if" } else { "} else if" };
                let _ = writeln!(out, "{pad}{kw} ({}) {{", c_expr(cond));
                c_block(out, body, indent + 1);
            }
            if let Some(body) = otherwise {
                let _ = writeln!(out, "{pad}}} else {{");
                c_block(out, body, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while ({}) {{", c_expr(cond));
            c_block(out, body, indent + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::ForEach { var, set, body, .. } => {
            let _ = writeln!(out, "{pad}XTUML_FOREACH({var}, {}) {{", c_expr(set));
            c_block(out, body, indent + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Break { .. } => {
            let _ = writeln!(out, "{pad}break;");
        }
        Stmt::Continue { .. } => {
            let _ = writeln!(out, "{pad}continue;");
        }
        Stmt::Return { .. } => {
            let _ = writeln!(out, "{pad}return;");
        }
        Stmt::ExprStmt { expr, .. } => {
            let _ = writeln!(out, "{pad}{};", c_expr(expr));
        }
    }
}

fn gen_class(out: &mut String, domain: &Domain, class: &Class) {
    let _ = writeln!(out, "/* ---- class {} ---- */", class.name);
    let _ = writeln!(out, "typedef struct {} {{", class.name);
    let _ = writeln!(out, "    xtuml_inst_header_t hdr;");
    for a in &class.attributes {
        let _ = writeln!(out, "    {} {};", c_type(a.ty), a.name);
    }
    let _ = writeln!(out, "}} {};\n", class.name);

    if class.events.is_empty() {
        return;
    }
    let _ = writeln!(out, "enum {}_event {{", class.name);
    for e in &class.events {
        let _ = writeln!(out, "    EVT_{},", e.name);
    }
    let _ = writeln!(out, "}};\n");

    let Some(machine) = &class.state_machine else {
        return;
    };
    let _ = writeln!(out, "enum {}_state {{", class.name);
    for s in &machine.states {
        let _ = writeln!(out, "    ST_{}_{},", class.name, s.name);
    }
    let _ = writeln!(out, "}};\n");

    // Entry action per state.
    for s in &machine.states {
        let _ = writeln!(
            out,
            "static void {}_enter_{}({} *self, const xtuml_event_t *evt) {{",
            class.name, s.name, class.name
        );
        let _ = writeln!(out, "    (void)evt;");
        c_block(out, &s.action, 1);
        let _ = writeln!(out, "}}\n");
    }

    // Dispatch: switch over (state, event).
    let _ = writeln!(
        out,
        "void {}_dispatch({} *self, const xtuml_event_t *evt) {{",
        class.name, class.name
    );
    let _ = writeln!(out, "    switch (self->hdr.state) {{");
    for (si, s) in machine.states.iter().enumerate() {
        let _ = writeln!(out, "    case ST_{}_{}:", class.name, s.name);
        let _ = writeln!(out, "        switch (evt->kind) {{");
        for t in &machine.transitions {
            if t.from.index() != si {
                continue;
            }
            let ev = &class.events[t.event.index()].name;
            match t.target {
                TransitionTarget::To(to) => {
                    let to_name = &machine.state(to).name;
                    let _ = writeln!(out, "        case EVT_{ev}:");
                    let _ = writeln!(
                        out,
                        "            self->hdr.state = ST_{}_{to_name};",
                        class.name
                    );
                    let _ = writeln!(
                        out,
                        "            {}_enter_{to_name}(self, evt);",
                        class.name
                    );
                    let _ = writeln!(out, "            break;");
                }
                TransitionTarget::Ignore => {
                    let _ = writeln!(out, "        case EVT_{ev}: /* ignore */ break;");
                }
                TransitionTarget::CantHappen => {}
            }
        }
        let _ = writeln!(
            out,
            "        default: xtuml_cant_happen(\"{}\", self->hdr.state, evt->kind);",
            class.name
        );
        let _ = writeln!(out, "        }}");
        let _ = writeln!(out, "        break;");
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}\n");
    let _ = domain;
}

fn gen_driver(out: &mut String, domain: &Domain, iface: &InterfaceSpec) {
    let _ = writeln!(
        out,
        "/* ==== GENERATED BUS DRIVER — single source: interface spec ==== */"
    );
    let _ = writeln!(out, "#define XTUML_RX_STATUS  0x{:03X}u", 0x100);
    let _ = writeln!(out, "#define XTUML_RX_CHANNEL 0x{:03X}u", 0x101);
    let _ = writeln!(out, "#define XTUML_RX_DATA0   0x{:03X}u", 0x102);
    let _ = writeln!(out, "#define XTUML_RX_POP     0x{:03X}u\n", 0x10F);
    for ch in &iface.channels {
        let class = &domain.class(ch.target_class).name;
        let event = &domain.class(ch.target_class).events[ch.event.index()].name;
        let _ = writeln!(
            out,
            "/* channel {}: {} {}.{} ({} payload word(s)) */",
            ch.id, ch.dir, class, event, ch.payload_words
        );
        let _ = writeln!(out, "#define CH_{}_{} {}u", class, event, ch.id);
        if ch.dir == xtuml_cosim::Direction::SwToHw {
            let _ = writeln!(
                out,
                "static void send_{class}_{event}(xtuml_inst_t to, const uint32_t *w) {{"
            );
            for word in 0..ch.payload_words {
                let addr = RegisterFile::tx_data_addr(ch.id, word);
                let src = if word == 0 {
                    "(uint32_t)to".to_owned()
                } else {
                    format!("w[{}]", word - 1)
                };
                let _ = writeln!(out, "    mmio_write(0x{addr:03X}u, {src});");
            }
            let bell = RegisterFile::tx_doorbell_addr(ch.id);
            let _ = writeln!(out, "    mmio_write(0x{bell:03X}u, 1u); /* doorbell */");
            let _ = writeln!(out, "}}\n");
        }
    }
    let _ = writeln!(out, "void xtuml_bus_poll(void) {{");
    let _ = writeln!(out, "    while (mmio_read(XTUML_RX_STATUS) != 0u) {{");
    let _ = writeln!(out, "        uint32_t ch = mmio_read(XTUML_RX_CHANNEL);");
    let _ = writeln!(out, "        switch (ch) {{");
    for ch in &iface.channels {
        if ch.dir != xtuml_cosim::Direction::HwToSw {
            continue;
        }
        let class = &domain.class(ch.target_class).name;
        let event = &domain.class(ch.target_class).events[ch.event.index()].name;
        let _ = writeln!(out, "        case CH_{class}_{event}:");
        let _ = writeln!(out, "            xtuml_rx_deliver_{class}_{event}();");
        let _ = writeln!(out, "            break;");
    }
    let _ = writeln!(out, "        default: xtuml_bus_fault(ch);");
    let _ = writeln!(out, "        }}");
    let _ = writeln!(out, "        mmio_write(XTUML_RX_POP, 1u);");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}\n");
}

/// Generates the software partition's C translation unit.
pub fn generate_c(
    domain: &Domain,
    partition: &Partition,
    iface: &InterfaceSpec,
    params: &PlatformParams,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* Generated by the xtuml model compiler — DO NOT EDIT.\n\
         \x20* Domain: {}\n\
         \x20* Software partition ({} class(es)); CPU {} kHz.\n\
         \x20*/",
        domain.name,
        partition.sw_count(),
        params.cpu_khz
    );
    out.push_str("#include <stdint.h>\n#include <stdbool.h>\n#include \"xtuml_rt.h\"\n\n");

    // Class ids and association ids shared with the runtime.
    for (i, c) in domain.classes.iter().enumerate() {
        let _ = writeln!(out, "#define CLASS_{} {}u", c.name, i);
    }
    for (i, a) in domain.associations.iter().enumerate() {
        let _ = writeln!(out, "#define {} {}u", a.name, i);
    }
    out.push('\n');

    // Actor (bridge) prototypes.
    for actor in &domain.actors {
        for f in &actor.funcs {
            let ret = f.ret.map_or("void", c_type);
            let params_s: Vec<String> = f
                .params
                .iter()
                .map(|(n, t)| format!("{} {n}", c_type(*t)))
                .collect();
            let _ = writeln!(
                out,
                "extern {ret} {}_{}({});",
                actor.name,
                f.name,
                if params_s.is_empty() {
                    "void".to_owned()
                } else {
                    params_s.join(", ")
                }
            );
        }
    }
    out.push('\n');

    for (ci, class) in domain.classes.iter().enumerate() {
        if partition.side(ClassId::new(ci as u32)) == Side::Sw {
            gen_class(&mut out, domain, class);
        }
    }

    gen_driver(&mut out, domain, iface);

    let _ = writeln!(out, "void xtuml_main_loop(void) {{");
    let _ = writeln!(out, "    for (;;) {{");
    let _ = writeln!(out, "        xtuml_bus_poll();");
    let _ = writeln!(out, "        xtuml_timers_poll();");
    let _ = writeln!(out, "        xtuml_dispatch_one(); /* priority, RTC */");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::builder::DomainBuilder;
    use xtuml_core::marks::MarkSet;
    use xtuml_core::model::Multiplicity;

    fn domain() -> Domain {
        let mut b = DomainBuilder::new("gen");
        b.actor("LOG").func("info", &[("msg", DataType::Str)], None);
        b.class("Ctrl")
            .attr("n", DataType::Int)
            .event("Go", &[("k", DataType::Int)])
            .state("Idle", "")
            .state(
                "Run",
                "self.n = rcvd.k;\n\
                 if (self.n > 3) { self.n = 3; } else { self.n = self.n + 1; }\n\
                 while (self.n > 0) { self.n = self.n - 1; }\n\
                 LOG::info(\"done\");\n\
                 f = any(self -> Filt[R1]);\n\
                 gen Work(self.n, true) to f;\n\
                 gen Go(1) to self after 10;",
            )
            .initial("Idle")
            .transition("Idle", "Go", "Run")
            .transition("Run", "Go", "Run");
        b.class("Filt")
            .event("Work", &[("n", DataType::Int), ("f", DataType::Bool)])
            .state("W", "")
            .state("X", "c = any(self -> Ctrl[R1]); gen Go(rcvd.n) to c;")
            .initial("W")
            .transition("W", "Work", "X")
            .transition("X", "Work", "X");
        b.association("R1", "Ctrl", Multiplicity::One, "Filt", Multiplicity::One);
        b.build().unwrap()
    }

    fn compile_split() -> String {
        let d = domain();
        let mut m = MarkSet::new();
        m.mark_hardware("Filt");
        let design = crate::ModelCompiler::new().compile(&d, &m).unwrap();
        design.c_code
    }

    #[test]
    fn generated_c_contains_structs_enums_dispatch() {
        let c = compile_split();
        assert!(c.contains("typedef struct Ctrl {"));
        assert!(c.contains("int64_t n;"));
        assert!(c.contains("enum Ctrl_event {"));
        assert!(c.contains("EVT_Go,"));
        assert!(c.contains("enum Ctrl_state {"));
        assert!(c.contains("void Ctrl_dispatch(Ctrl *self, const xtuml_event_t *evt)"));
        assert!(c.contains("xtuml_cant_happen"));
    }

    #[test]
    fn hardware_classes_are_not_in_the_c() {
        let c = compile_split();
        assert!(!c.contains("typedef struct Filt {"));
        assert!(!c.contains("Filt_dispatch"));
    }

    #[test]
    fn actions_translate_to_c_statements() {
        let c = compile_split();
        assert!(c.contains("self->n = evt->k;"));
        assert!(c.contains("if ((self->n > INT64_C(3))) {"));
        assert!(c.contains("while ((self->n > INT64_C(0))) {"));
        assert!(c.contains("LOG_info(\"done\");"));
        assert!(c.contains("xtuml_gen_delayed(EVT_Go, self, INT64_C(10), INT64_C(1));"));
    }

    #[test]
    fn driver_uses_generated_register_map() {
        let c = compile_split();
        assert!(c.contains("GENERATED BUS DRIVER"));
        assert!(c.contains("#define CH_Filt_Work"));
        assert!(c.contains("static void send_Filt_Work"));
        assert!(c.contains("doorbell"));
        assert!(c.contains("xtuml_bus_poll"));
        assert!(c.contains("case CH_Ctrl_Go:"));
    }

    #[test]
    fn homogeneous_sw_has_no_tx_channels() {
        let d = domain();
        let design = crate::ModelCompiler::new()
            .compile(&d, &MarkSet::new())
            .unwrap();
        assert!(!design.c_code.contains("static void send_"));
        assert!(design.c_code.contains("typedef struct Filt {"));
    }
}
