//! Static analysis of action blocks for the mapping rules.
//!
//! The model compiler needs to know, per class: which classes its actions
//! *create*, *delete*, *select* or *relate* (these must be
//! partition-local), and which `(target class, event)` pairs it *signals*
//! (these define the interface channels when the target is remote).
//!
//! Signal targets are resolved by a lightweight class-inference over
//! instance-valued expressions. The action language restricts
//! instance-typed values to `self`, `create`/`select`/`foreach` bindings,
//! association navigation and `any(...)` — attributes and event
//! parameters are scalars — so the inference is *complete*: a target whose
//! class cannot be inferred is a malformed block, reported as an error.

use crate::{MdaError, Result};
use std::collections::{BTreeMap, BTreeSet};
use xtuml_core::action::{Block, Expr, GenTarget, Stmt};
use xtuml_core::ids::{ClassId, EventId};
use xtuml_core::model::Domain;
use xtuml_core::value::UnOp;

/// What one class's actions do to the rest of the domain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassUsage {
    /// Classes instantiated via `create`.
    pub creates: BTreeSet<ClassId>,
    /// Classes whose populations are queried via `select`.
    pub selects: BTreeSet<ClassId>,
    /// Classes whose instances are deleted (where inferable).
    pub deletes: BTreeSet<ClassId>,
    /// Classes related/unrelated at runtime (where inferable).
    pub relates: BTreeSet<ClassId>,
    /// Signals sent to instances: `(target class, event)`.
    pub sends: BTreeSet<(ClassId, EventId)>,
}

/// Analyses every state action of `class`.
///
/// # Errors
///
/// Returns [`MdaError::Mapping`] if a signal target's class cannot be
/// statically inferred (not expressible through the surface language, but
/// possible with hand-built ASTs).
pub fn analyze_class(domain: &Domain, class: ClassId) -> Result<ClassUsage> {
    let mut usage = ClassUsage::default();
    let c = domain.class(class);
    if let Some(machine) = &c.state_machine {
        for state in &machine.states {
            let mut env: BTreeMap<String, ClassId> = BTreeMap::new();
            walk_block(domain, class, &state.action, &mut env, &mut usage).map_err(|e| {
                MdaError::mapping(format!("class {}, state {}: {e}", c.name, state.name))
            })?;
        }
    }
    Ok(usage)
}

/// Infers the class of an instance-valued expression, if any.
fn infer(
    domain: &Domain,
    self_class: ClassId,
    env: &BTreeMap<String, ClassId>,
    expr: &Expr,
) -> Option<ClassId> {
    match expr {
        Expr::SelfRef => Some(self_class),
        Expr::Var(name) => env.get(name).copied(),
        Expr::Nav(_, class_name, _) => domain.class_id(class_name).ok(),
        Expr::Unary(UnOp::Any, inner) => infer(domain, self_class, env, inner),
        Expr::Selected => None, // select target recorded separately
        _ => None,
    }
}

fn walk_block(
    domain: &Domain,
    self_class: ClassId,
    block: &Block,
    env: &mut BTreeMap<String, ClassId>,
    usage: &mut ClassUsage,
) -> Result<(), String> {
    for stmt in &block.stmts {
        walk_stmt(domain, self_class, stmt, env, usage)?;
    }
    Ok(())
}

fn walk_stmt(
    domain: &Domain,
    self_class: ClassId,
    stmt: &Stmt,
    env: &mut BTreeMap<String, ClassId>,
    usage: &mut ClassUsage,
) -> Result<(), String> {
    match stmt {
        Stmt::Create { var, class, .. } => {
            if let Ok(id) = domain.class_id(class) {
                usage.creates.insert(id);
                env.insert(var.clone(), id);
            }
        }
        Stmt::Delete { expr, .. } => {
            if let Some(id) = infer(domain, self_class, env, expr) {
                usage.deletes.insert(id);
            }
        }
        Stmt::SelectAny { var, class, .. } | Stmt::SelectMany { var, class, .. } => {
            if let Ok(id) = domain.class_id(class) {
                usage.selects.insert(id);
                env.insert(var.clone(), id);
            }
        }
        Stmt::Relate { a, b, .. } | Stmt::Unrelate { a, b, .. } => {
            for e in [a, b] {
                if let Some(id) = infer(domain, self_class, env, e) {
                    usage.relates.insert(id);
                }
            }
        }
        Stmt::Generate {
            event,
            target: GenTarget::Inst(texpr),
            ..
        } => {
            // A bare non-bound variable as target resolves to an actor at
            // run time; only instance-directed sends define channels.
            let is_actor_fallback = matches!(texpr, Expr::Var(name)
                if !env.contains_key(name) && domain.actor_id(name).is_ok());
            if !is_actor_fallback {
                let Some(target) = infer(domain, self_class, env, texpr) else {
                    return Err(format!(
                        "cannot statically resolve the class of signal target `{texpr}` \
                         for event `{event}`"
                    ));
                };
                if let Some(ev) = domain.class(target).event_id(event) {
                    usage.sends.insert((target, ev));
                }
            }
        }
        Stmt::Generate { .. } => {} // actor-directed: observable, no channel
        Stmt::Assign { lhs, expr, .. } => {
            if let xtuml_core::action::LValue::Var(name) = lhs {
                if let Some(id) = infer(domain, self_class, env, expr) {
                    env.insert(name.clone(), id);
                }
            }
        }
        Stmt::If {
            arms, otherwise, ..
        } => {
            for (_, body) in arms {
                walk_block(domain, self_class, body, env, usage)?;
            }
            if let Some(body) = otherwise {
                walk_block(domain, self_class, body, env, usage)?;
            }
        }
        Stmt::While { body, .. } => walk_block(domain, self_class, body, env, usage)?,
        Stmt::ForEach { var, set, body, .. } => {
            if let Some(id) = infer(domain, self_class, env, set) {
                env.insert(var.clone(), id);
            }
            walk_block(domain, self_class, body, env, usage)?;
        }
        Stmt::Cancel { .. }
        | Stmt::Break { .. }
        | Stmt::Continue { .. }
        | Stmt::Return { .. }
        | Stmt::ExprStmt { .. } => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::builder::DomainBuilder;
    use xtuml_core::model::Multiplicity;
    use xtuml_core::value::DataType;

    fn domain() -> Domain {
        let mut b = DomainBuilder::new("d");
        b.actor("OUT").event("done", &[]);
        b.class("Worker")
            .event("Go", &[])
            .state("Idle", "")
            .state(
                "Busy",
                "l = create Lamp;\n\
                 relate self to l across R1;\n\
                 select many ls from Lamp;\n\
                 foreach x in ls { gen Lit() to x; }\n\
                 peer = any(self -> Helper[R2]);\n\
                 gen Assist(3) to peer;\n\
                 gen done() to OUT;\n\
                 delete l;",
            )
            .initial("Idle")
            .transition("Idle", "Go", "Busy");
        b.class("Lamp")
            .event("Lit", &[])
            .state("Off", "")
            .initial("Off")
            .transition("Off", "Lit", "Off");
        b.class("Helper")
            .event("Assist", &[("n", DataType::Int)])
            .state("S", "")
            .initial("S")
            .transition("S", "Assist", "S");
        b.association(
            "R1",
            "Worker",
            Multiplicity::One,
            "Lamp",
            Multiplicity::Many,
        );
        b.association(
            "R2",
            "Worker",
            Multiplicity::One,
            "Helper",
            Multiplicity::Many,
        );
        b.build().unwrap()
    }

    #[test]
    fn collects_all_usage_kinds() {
        let d = domain();
        let worker = d.class_id("Worker").unwrap();
        let lamp = d.class_id("Lamp").unwrap();
        let helper = d.class_id("Helper").unwrap();
        let u = analyze_class(&d, worker).unwrap();
        assert!(u.creates.contains(&lamp));
        assert!(u.selects.contains(&lamp));
        assert!(u.deletes.contains(&lamp));
        assert!(u.relates.contains(&worker) && u.relates.contains(&lamp));
        let lit = d.class(lamp).event_id("Lit").unwrap();
        let assist = d.class(helper).event_id("Assist").unwrap();
        assert!(u.sends.contains(&(lamp, lit)));
        assert!(u.sends.contains(&(helper, assist)));
        // Actor signal creates no instance-send entry.
        assert_eq!(u.sends.len(), 2);
    }

    #[test]
    fn passive_class_has_empty_usage() {
        let d = domain();
        let lamp = d.class_id("Lamp").unwrap();
        let u = analyze_class(&d, lamp).unwrap();
        assert!(u.creates.is_empty() && u.sends.is_empty());
    }

    #[test]
    fn self_sends_resolve_to_own_class() {
        let mut b = DomainBuilder::new("d");
        b.class("C")
            .event("E", &[])
            .state("S", "gen E() to self;")
            .initial("S")
            .transition("S", "E", "S");
        let d = b.build().unwrap();
        let c = d.class_id("C").unwrap();
        let u = analyze_class(&d, c).unwrap();
        assert!(u.sends.contains(&(c, EventId::new(0))));
    }
}
