//! The software lowering: unmarked classes become a dispatch loop on the
//! CPU model.
//!
//! The generated C architecture is the classic xtUML runtime: one
//! priority-scheduled event queue (priority from the `priority` class
//! mark; self-directed signals get the reserved top priority so they are
//! consumed first), a dispatch loop that runs each state action to
//! completion, a timer wheel for delayed signals, and the generated bus
//! driver for cross-partition traffic. CPU time is budgeted by the
//! co-simulation clock; an expensive action simply spans several hardware
//! cycles (debt-carrying credit model).

use crate::host::{DelayedSend, PCore};
use crate::interface::{self, InterfaceSpec};
use crate::partition::{Partition, Side};
use crate::{MdaError, Result};
use std::collections::BTreeMap;
use xtuml_core::ids::{ClassId, EventId, InstId};
use xtuml_core::model::Domain;
use xtuml_core::value::Value;
use xtuml_cosim::regfile::{RX_CHANNEL, RX_DATA0, RX_POP, RX_STATUS};
use xtuml_cosim::{Bridge, BridgeConfig, CosimError, RegisterFile, SwModel};
use xtuml_swrt::{Cpu, Mmio, Scheduler, TimerWheel};

/// Reserved priority for self-directed signals (most urgent).
const SELF_PRIORITY: u8 = 0;
/// Default class priority when unmarked (1 is the most urgent a mark can
/// request).
const DEFAULT_PRIORITY: u8 = 8;
/// CPU cycles charged for receiving one bridge message.
const RX_COST: u64 = 24;

/// A queued software dispatch.
#[derive(Debug, Clone)]
struct SwJob {
    to: InstId,
    event: EventId,
    args: Vec<Value>,
}

/// The software partition: generated dispatch loop + bus driver.
///
/// All bus traffic goes through the **generated register file** via the
/// [`Mmio`] trait — the same register map the generated C driver prints —
/// so the executed software and the emitted text share the interface by
/// construction.
pub struct SwPartition<'d> {
    pub(crate) core: PCore<'d>,
    iface: InterfaceSpec,
    regfile: RegisterFile,
    sched: Scheduler<SwJob>,
    cpu: Cpu,
    credit: i64,
    timers: TimerWheel<DelayedSend>,
    stimuli: Vec<(u64, InstId, EventId, Vec<Value>)>,
    prio: BTreeMap<ClassId, u8>,
    /// E5 ablation: deliver bridge messages with alternating priorities,
    /// breaking per-pair order. Never set by the stock mapping rules.
    scramble_rx: bool,
    rx_flip: bool,
}

impl<'d> SwPartition<'d> {
    /// Builds the software partition model.
    pub(crate) fn new(
        domain: &'d Domain,
        partition: Partition,
        iface: InterfaceSpec,
        bridge_cfg: &BridgeConfig,
        cycles_per_unit: u64,
        cpu_khz: u64,
        prio: BTreeMap<ClassId, u8>,
    ) -> SwPartition<'d> {
        SwPartition {
            core: PCore::new(domain, Side::Sw, partition, cycles_per_unit),
            iface,
            regfile: RegisterFile::new(bridge_cfg),
            sched: Scheduler::new(),
            cpu: Cpu::new(cpu_khz),
            credit: 0,
            timers: TimerWheel::new(),
            stimuli: Vec::new(),
            prio,
            scramble_rx: false,
            rx_flip: false,
        }
    }

    /// Enables the E5 rx-scramble ablation (broken mapping).
    pub(crate) fn set_scramble_rx(&mut self, on: bool) {
        self.scramble_rx = on;
    }

    /// Schedules an external stimulus for hardware time `time`.
    pub(crate) fn add_stimulus(&mut self, time: u64, to: InstId, event: EventId, args: Vec<Value>) {
        self.stimuli.push((time, to, event, args));
    }

    fn class_priority(&self, class: ClassId) -> u8 {
        self.prio.get(&class).copied().unwrap_or(DEFAULT_PRIORITY)
    }

    fn post(&mut self, from: Option<InstId>, to: InstId, event: EventId, args: Vec<Value>) {
        let prio = if from == Some(to) {
            SELF_PRIORITY
        } else {
            let class = self
                .core
                .store
                .class_of(to)
                .expect("posted to live instance");
            self.class_priority(class).max(1)
        };
        self.sched.post(prio, SwJob { to, event, args });
    }

    fn route_effects(&mut self, bridge: &mut Bridge, now: u64) -> Result<()> {
        let effects = self.core.take_effects();
        for s in effects.local {
            self.post(Some(s.from), s.to, s.event, s.args);
        }
        for c in effects.cross {
            let class = self.core.store.class_of(c.to)?;
            let Some(channel) = self.iface.channel_for(class, c.event) else {
                return Err(MdaError::mapping(format!(
                    "no generated channel for cross signal to {}",
                    self.core.domain.class(class).name
                )));
            };
            let words = interface::marshal(channel, c.to, &c.args)?;
            self.tx_via_registers(bridge, now, channel.id, &words)?;
        }
        for d in effects.delayed {
            self.timers.arm(d.deadline, d);
        }
        for (inst, event) in effects.cancels {
            self.timers
                .cancel_matching(|d| d.to == inst && d.event == event);
        }
        Ok(())
    }

    /// Sends one marshalled message exactly as the generated C driver
    /// does: stage the payload words in the TX data registers (word 0 is
    /// the target id, already included in `words`), then ring the
    /// doorbell.
    fn tx_via_registers(
        &mut self,
        bridge: &mut Bridge,
        now: u64,
        channel: u32,
        words: &[u32],
    ) -> Result<()> {
        let before = self.regfile.errors;
        {
            let mut view = self.regfile.view(bridge, now);
            for (i, w) in words.iter().enumerate() {
                view.write(RegisterFile::tx_data_addr(channel, i), *w);
            }
            view.write(RegisterFile::tx_doorbell_addr(channel), 1);
        }
        if self.regfile.errors > before {
            return Err(MdaError::mapping(format!(
                "bus driver rejected doorbell on channel {channel}"
            )));
        }
        Ok(())
    }

    /// Polls the RX registers exactly as the generated `xtuml_bus_poll`
    /// does; returns the drained `(channel, payload words)` messages.
    fn rx_via_registers(&mut self, bridge: &mut Bridge, now: u64) -> Vec<(u32, Vec<u32>)> {
        let mut out = Vec::new();
        let mut view = self.regfile.view(bridge, now);
        while view.read(RX_STATUS) != 0 {
            let channel = view.read(RX_CHANNEL);
            // Read the full register block; unmarshal trims per spec.
            let words: Vec<u32> = (0..xtuml_cosim::regfile::MAX_PAYLOAD_WORDS)
                .map(|i| view.read(RX_DATA0 + i as u32))
                .collect();
            view.write(RX_POP, 1);
            out.push((channel, words));
        }
        out
    }

    /// CPU cycles consumed so far.
    pub fn cpu_cycles(&self) -> u64 {
        self.cpu.cycles()
    }

    /// Pending dispatches (backlog metric).
    pub fn backlog(&self) -> usize {
        self.sched.len()
    }

    /// The partition's observable outputs `(hw time, seq, event)`.
    pub fn observables(&self) -> &[(u64, u64, xtuml_exec::ObservableEvent)] {
        &self.core.observables
    }

    /// Reads an attribute of a locally-owned instance by name.
    ///
    /// # Errors
    ///
    /// Fails for remote instances or unknown attributes.
    pub fn attr(&self, inst: InstId, name: &str) -> Result<Value> {
        let class = self.core.store.class_of(inst)?;
        let c = self.core.domain.class(class);
        let id = c
            .attr_id(name)
            .ok_or_else(|| MdaError::mapping(format!("unknown attribute {}.{name}", c.name)))?;
        Ok(self.core.store.attr_read(inst, id)?)
    }

    pub(crate) fn store_mut(&mut self) -> &mut xtuml_exec::ObjectStore {
        &mut self.core.store
    }

    #[allow(dead_code)] // symmetry with HwPartition; used by future tooling
    pub(crate) fn store(&self) -> &xtuml_exec::ObjectStore {
        &self.core.store
    }
}

impl SwModel for SwPartition<'_> {
    fn run_slice(
        &mut self,
        bridge: &mut Bridge,
        now: u64,
        budget: u64,
    ) -> std::result::Result<u64, CosimError> {
        self.core.now = now;
        self.slice_inner(bridge, now, budget)
            .map_err(|e| CosimError::new(e.to_string()))
    }

    fn idle(&self) -> bool {
        self.sched.is_empty() && self.timers.is_empty() && self.stimuli.is_empty()
    }
}

impl SwPartition<'_> {
    fn slice_inner(&mut self, bridge: &mut Bridge, now: u64, budget: u64) -> Result<u64> {
        let start_cycles = self.cpu.cycles();
        self.credit += budget as i64;

        // 1. External stimuli due (delivered by the environment, no CPU
        //    cost — they model interrupt lines from the testbench).
        let mut due: Vec<(u64, InstId, EventId, Vec<Value>)> = Vec::new();
        self.stimuli.retain(|(t, to, ev, args)| {
            if *t <= now {
                due.push((*t, *to, *ev, args.clone()));
                false
            } else {
                true
            }
        });
        due.sort_by_key(|(t, to, ..)| (*t, *to));
        for (_, to, event, args) in due {
            self.post(None, to, event, args);
        }

        // 2. Expired timers.
        for d in self.timers.pop_due(now) {
            if !self.core.store.is_alive(d.to) {
                continue;
            }
            // A timer to a remote instance becomes a bus message now.
            let class = self.core.store.class_of(d.to)?;
            if self.core.partition.side(class) == Side::Sw {
                self.post(Some(d.from), d.to, d.event, d.args);
            } else {
                let Some(channel) = self.iface.channel_for(class, d.event) else {
                    return Err(MdaError::mapping(
                        "no generated channel for delayed cross signal",
                    ));
                };
                let channel_id = channel.id;
                let words = interface::marshal(channel, d.to, &d.args)?;
                self.tx_via_registers(bridge, now, channel_id, &words)?;
            }
        }

        // 3. Bridge arrivals, polled through the generated register map
        //    (interrupt service: costs cycles).
        for (channel_id, raw_words) in self.rx_via_registers(bridge, now) {
            let Some(channel) = self.iface.channel(channel_id) else {
                return Err(MdaError::mapping(format!(
                    "software received unknown channel {channel_id}"
                )));
            };
            let (to, args) = interface::unmarshal(channel, &raw_words[..channel.payload_words])?;
            self.cpu.consume(RX_COST);
            self.credit -= RX_COST as i64;
            if !self.core.store.is_alive(to) {
                continue;
            }
            if self.scramble_rx {
                // Broken mapping: alternate urgency so later bridge
                // messages overtake earlier ones.
                self.rx_flip = !self.rx_flip;
                let prio = if self.rx_flip { 2 } else { 200 };
                self.sched.post(
                    prio,
                    SwJob {
                        to,
                        event: channel.event,
                        args,
                    },
                );
            } else {
                self.post(None, to, channel.event, args);
            }
        }

        // 4. Dispatch while we have credit (one overdraft allowed: a
        //    dispatch runs to completion even if it exhausts the slice).
        while self.credit > 0 {
            let Some(job) = self.sched.pop() else {
                break;
            };
            if !self.core.store.is_alive(job.payload.to) {
                continue;
            }
            let steps = self
                .core
                .dispatch(job.payload.to, job.payload.event, job.payload.args)?;
            let cost = self.cpu.charge_dispatch(steps);
            self.credit -= cost as i64;
            self.route_effects(bridge, now)?;
        }
        // Idle CPUs don't accumulate unbounded credit.
        if self.sched.is_empty() {
            self.credit = self.credit.min(0);
        }

        Ok(self.cpu.cycles() - start_cycles)
    }
}
