//! Mark and partition lints (`X0012`–`X0014`).
//!
//! Marks live outside the model (paper §3), which means nothing in the
//! model's own validation can notice a mark gone stale: a mark naming a
//! class that was renamed away, an `isHardware` placement the VHDL
//! generator cannot honour, or a partition cut that severs a signal path
//! whose payload cannot be marshalled. These lints close that gap by
//! checking the *pair* (model, marks) the same way [`InterfaceSpec`]
//! derivation does — but accumulating span-tagged diagnostics instead of
//! stopping at the first mapping error.
//!
//! [`InterfaceSpec`]: crate::interface::InterfaceSpec

use crate::analysis;
use crate::partition::Partition;
use std::collections::BTreeSet;
use xtuml_core::diag::{Code, Diagnostic, Diagnostics, SourceMap};
use xtuml_core::error::Pos;
use xtuml_core::ids::ClassId;
use xtuml_core::marks::{ElemKind, ElemRef, MarkSet};
use xtuml_core::model::Domain;
use xtuml_core::value::DataType;

/// Where one mark was declared in its mark file.
///
/// This mirrors the lang crate's `MarkSpan` without depending on it: the
/// lint layer only needs the element, the key and the position, whoever
/// parsed them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkSite {
    /// The element the mark is attached to.
    pub elem: ElemRef,
    /// The mark key (free-form by design).
    pub key: String,
    /// Position of the declaration in the mark file.
    pub pos: Pos,
}

/// Runs every mark/partition lint, appending findings to `diags`.
///
/// * `X0012` `unknown-mark-target` — a mark names a class, actor or
///   association the domain does not declare (reported once per element,
///   in `marks_file`).
/// * `X0013` `hardware-string-payload` — a class marked `isHardware`
///   declares string-typed attributes or event parameters; `vgen` has no
///   string type to synthesize them with.
/// * `X0014` `unmarshallable-channel` — an event crosses the partition
///   boundary but carries a payload with no marshalling (no ICD entry is
///   possible), so [`InterfaceSpec`](crate::InterfaceSpec) derivation
///   would fail.
///
/// `spans` carries the *model* file's declaration positions; `sites`
/// carries the mark file's. Diagnostics about marks are tagged with
/// `marks_file`; diagnostics about model elements stay in the primary
/// (model) file.
pub fn lint_marks(
    domain: &Domain,
    marks: &MarkSet,
    sites: &[MarkSite],
    marks_file: &str,
    spans: &SourceMap,
    diags: &mut Diagnostics,
) {
    lint_unknown_targets(domain, sites, marks_file, diags);
    lint_hardware_payloads(domain, marks, spans, diags);
    lint_partition_channels(domain, marks, spans, diags);
}

/// `X0012` — marks whose target element does not exist in the domain.
fn lint_unknown_targets(
    domain: &Domain,
    sites: &[MarkSite],
    marks_file: &str,
    diags: &mut Diagnostics,
) {
    let mut reported: BTreeSet<&ElemRef> = BTreeSet::new();
    for site in sites {
        let exists = match site.elem.kind {
            ElemKind::Domain => true,
            ElemKind::Class => domain.class_id(&site.elem.name).is_ok(),
            ElemKind::Actor => domain.actor_id(&site.elem.name).is_ok(),
            ElemKind::Assoc => domain.assoc_id(&site.elem.name).is_ok(),
        };
        if exists || !reported.insert(&site.elem) {
            continue;
        }
        diags.push(
            Diagnostic::new(
                Code::UnknownMarkTarget,
                site.pos,
                format!(
                    "mark `{}` targets unknown {} `{}`",
                    site.key, site.elem.kind, site.elem.name
                ),
            )
            .with_element(site.elem.to_string())
            .with_note(format!(
                "domain `{}` declares no {} with this name; every mapping rule \
                 will silently ignore this mark",
                domain.name, site.elem.kind
            ))
            .in_file(marks_file),
        );
    }
}

/// `X0013` — `isHardware` classes with string-typed state.
fn lint_hardware_payloads(
    domain: &Domain,
    marks: &MarkSet,
    spans: &SourceMap,
    diags: &mut Diagnostics,
) {
    for class in &domain.classes {
        if !marks.is_hardware(&class.name) {
            continue;
        }
        for attr in &class.attributes {
            if attr.ty != DataType::Str {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    Code::HardwareStringPayload,
                    spans.get(&SourceMap::attr_key(&class.name, &attr.name)),
                    format!(
                        "class `{}` is marked `isHardware` but attribute `{}` has type \
                         string, which the VHDL generator cannot synthesize",
                        class.name, attr.name
                    ),
                )
                .with_element(format!("class {}", class.name))
                .with_note(
                    "hardware registers hold fixed-width scalars (bool, int, real); \
                     move the class to software or drop the string attribute",
                ),
            );
        }
        for event in &class.events {
            for (pname, ty) in &event.params {
                if *ty != DataType::Str {
                    continue;
                }
                diags.push(
                    Diagnostic::new(
                        Code::HardwareStringPayload,
                        spans.get(&SourceMap::event_key(&class.name, &event.name)),
                        format!(
                            "class `{}` is marked `isHardware` but event `{}` carries a \
                             string parameter `{pname}`, which the VHDL generator cannot \
                             synthesize",
                            class.name, event.name
                        ),
                    )
                    .with_element(format!("class {}", class.name))
                    .with_note(
                        "hardware event queues hold fixed-width payload words; \
                         strings have no marshalling",
                    ),
                );
            }
        }
    }
}

/// `X0014` — cross-partition sends whose payload has no ICD entry.
fn lint_partition_channels(
    domain: &Domain,
    marks: &MarkSet,
    spans: &SourceMap,
    diags: &mut Diagnostics,
) {
    let partition = Partition::from_marks(domain, marks);
    if partition.is_homogeneous() {
        return; // no boundary, no channels
    }
    // (target, event) pairs reported already, so two senders of the same
    // unmarshallable event yield one diagnostic (one channel, one ICD row).
    let mut reported = BTreeSet::new();
    for (ci, sender_class) in domain.classes.iter().enumerate() {
        let sender = ClassId::new(ci as u32);
        // Analysis fails only on hand-built ASTs the surface language
        // cannot produce; such blocks are beyond mark linting.
        let Ok(usage) = analysis::analyze_class(domain, sender) else {
            continue;
        };
        for (target, event) in usage.sends {
            if partition.side(sender) == partition.side(target) {
                continue;
            }
            let decl = &domain.class(target).events[event.index()];
            let bad: Vec<&str> = decl
                .params
                .iter()
                .filter(|(_, ty)| matches!(ty, DataType::Str))
                .map(|(name, _)| name.as_str())
                .collect();
            if bad.is_empty() || !reported.insert((target, event)) {
                continue;
            }
            let target_class = domain.class(target);
            diags.push(
                Diagnostic::new(
                    Code::UnmarshallableChannel,
                    spans.get(&SourceMap::event_key(&target_class.name, &decl.name)),
                    format!(
                        "event `{}.{}` crosses the partition boundary ({} \u{2192} {}) \
                         but parameter `{}` has type string: no ICD entry is possible",
                        target_class.name,
                        decl.name,
                        partition.side(sender),
                        partition.side(target),
                        bad[0]
                    ),
                )
                .with_element(format!("class {}, event {}", target_class.name, decl.name))
                .with_note(format!(
                    "sent from class `{}` ({}); interface derivation will reject \
                     this model",
                    sender_class.name,
                    partition.side(sender)
                )),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::diag::Severity;

    fn lint_src(model: &str, marks_src: &str) -> Diagnostics {
        let (domain, spans) = xtuml_lang::parse_domain_for_lint(model).unwrap();
        let (_, marks, mark_spans) = xtuml_lang::parse_marks_spanned(marks_src).unwrap();
        let sites: Vec<MarkSite> = mark_spans
            .into_iter()
            .map(|s| MarkSite {
                elem: s.elem,
                key: s.key,
                pos: s.pos,
            })
            .collect();
        let mut diags = Diagnostics::new();
        lint_marks(&domain, &marks, &sites, "test.marks", &spans, &mut diags);
        diags
    }

    const MODEL: &str = "domain D;\n\
        actor BUS { signal put(v: int); }\n\
        class Ctrl { attr n: int; event Go();\n\
          initial S; state S { select any d from Dev; gen Config(\"fast\") to d; }\n\
          on S: Go -> S; }\n\
        class Dev { attr label: string; event Config(mode: string);\n\
          initial I; state I { } on I: Config -> I; }\n";

    #[test]
    fn unknown_mark_targets_are_reported_once_per_element() {
        let diags = lint_src(
            MODEL,
            "marks for D;\n\
             mark class Turbo isHardware = true;\n\
             mark class Turbo queueDepth = 4;\n\
             mark actor NET label = \"x\";\n\
             mark assoc R9 weight = 1;\n\
             mark actor BUS label = \"ok\";\n",
        );
        let unknown: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::UnknownMarkTarget)
            .collect();
        assert_eq!(unknown.len(), 3, "{diags:?}");
        assert!(unknown[0].message.contains("unknown class `Turbo`"));
        assert!(unknown
            .iter()
            .all(|d| d.file.as_deref() == Some("test.marks")));
        // Two marks on Turbo, one diagnostic, pointing at the first.
        assert_eq!(
            unknown
                .iter()
                .filter(|d| d.message.contains("Turbo"))
                .count(),
            1
        );
        assert_eq!(unknown[0].pos.line, 2);
    }

    #[test]
    fn hardware_class_with_strings_is_flagged() {
        let diags = lint_src(MODEL, "marks for D;\nmark class Dev isHardware = true;\n");
        let hw: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::HardwareStringPayload)
            .collect();
        assert_eq!(hw.len(), 2, "{diags:?}");
        assert!(hw[0].message.contains("attribute `label`"));
        assert!(hw[1].message.contains("string parameter `mode`"));
        // Model-file diagnostics stay in the primary file.
        assert!(hw.iter().all(|d| d.file.is_none()));
        assert!(hw[0].pos.line > 0, "span should come from the model parse");
    }

    #[test]
    fn cross_partition_string_event_is_an_error() {
        let diags = lint_src(MODEL, "marks for D;\nmark class Dev isHardware = true;\n");
        let chans: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::UnmarshallableChannel)
            .collect();
        assert_eq!(chans.len(), 1, "{diags:?}");
        assert_eq!(chans[0].severity, Severity::Error);
        assert!(chans[0].message.contains("Dev.Config"));
        assert!(chans[0].message.contains("software \u{2192} hardware"));
        assert!(chans[0].notes[0].contains("class `Ctrl`"));
    }

    #[test]
    fn homogeneous_partition_has_no_channel_lints() {
        // Same string-carrying event, but everything on one side.
        let diags = lint_src(MODEL, "marks for D;\nmark domain cpuKhz = 1000;\n");
        assert!(
            diags
                .iter()
                .all(|d| d.code != Code::UnmarshallableChannel
                    && d.code != Code::HardwareStringPayload),
            "{diags:?}"
        );
    }
}
