//! # xtuml-mda — marks, mappings and the model compiler
//!
//! The heart of the paper's §3/§4: a **model compiler** that reads an
//! Executable UML domain plus a [`MarkSet`](xtuml_core::marks::MarkSet)
//! and applies *repeatable mapping rules* to produce:
//!
//! 1. the hardware/software **partition** (from `isHardware` marks),
//! 2. the **interface specification** — the exact set of events that
//!    cross the partition boundary, with generated channel ids, payload
//!    layouts and a register map ([`InterfaceSpec`]),
//! 3. **compilable text of two types**: C for the software half
//!    ([`cgen`]) and VHDL for the hardware half ([`vgen`]), both driving
//!    the same generated interface,
//! 4. an **executable system** ([`CompiledSystem`]): the same lowering,
//!    instantiated onto the `xtuml-rtl` and `xtuml-swrt` substrates and
//!    joined by the `xtuml-cosim` bridge, so the partitioned design can be
//!    run and its observable trace compared against the abstract model.
//!
//! Because the C text, the VHDL text and the executable bridge all consume
//! the *single* derived [`InterfaceSpec`], "the two halves are known to
//! fit together because the interface was generated" (paper §4) is a
//! structural property here, not a convention. And because the partition
//! is derived from marks alone, *changing the partition is a matter of
//! changing the placement of the marks*.
//!
//! ## Mapping-rule constraints
//!
//! The stock mapping rules impose the restrictions a real HW/SW flow
//! imposes; violations are **compile-time errors** ([`MdaError`]):
//!
//! * events that cross the partition boundary must carry only
//!   marshallable scalars (`bool`, `int`, `real` — no strings);
//! * `create`, `delete`, `select` and `relate`/`unrelate` must be
//!   partition-local (hardware has a static instance population; remote
//!   populations are not enumerable). Associations *may* cross the
//!   boundary: navigation yields references that can be signalled but not
//!   dereferenced for attributes;
//! * signal targets must be statically class-resolvable (guaranteed for
//!   everything the action language can express over scalar attributes).

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod analysis;
pub mod cgen;
pub mod compiler;
pub(crate) mod host;
pub mod hw;
pub mod icd;
pub mod interface;
pub mod lint;
pub mod partition;
pub mod swpart;
pub mod system;
pub mod vgen;

pub use compiler::{CompiledDesign, CompilerOptions, ModelCompiler};
pub use interface::InterfaceSpec;
pub use partition::{Partition, Side};
pub use system::CompiledSystem;

use std::fmt;

/// Errors from the model compiler and the compiled system.
#[derive(Debug, Clone, PartialEq)]
pub enum MdaError {
    /// A mapping-rule violation detected at compile time.
    Mapping {
        /// Human-readable description naming the offending element.
        msg: String,
    },
    /// An error bubbled up from the core (validation, runtime, ...).
    Core(xtuml_core::CoreError),
    /// An error from the co-simulation substrate.
    Cosim(String),
}

impl MdaError {
    /// Shorthand constructor for mapping errors.
    pub fn mapping(msg: impl Into<String>) -> MdaError {
        MdaError::Mapping { msg: msg.into() }
    }
}

impl fmt::Display for MdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdaError::Mapping { msg } => write!(f, "mapping rule violation: {msg}"),
            MdaError::Core(e) => write!(f, "{e}"),
            MdaError::Cosim(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for MdaError {}

impl From<xtuml_core::CoreError> for MdaError {
    fn from(e: xtuml_core::CoreError) -> MdaError {
        MdaError::Core(e)
    }
}

impl From<xtuml_cosim::CosimError> for MdaError {
    fn from(e: xtuml_cosim::CosimError) -> MdaError {
        MdaError::Cosim(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T, E = MdaError> = std::result::Result<T, E>;
