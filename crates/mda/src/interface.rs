//! Interface derivation — "interface definition in one place, so that
//! consistency is guaranteed" (paper §5).
//!
//! Given a domain and a partition, the compiler computes the exact set of
//! events that can cross the boundary and assigns each a **channel**: a
//! dense id, a direction and a payload layout. The C generator, the VHDL
//! generator and the executable bridge all consume this one
//! [`InterfaceSpec`]; no hand-written interface exists anywhere.
//!
//! Payload layout (32-bit words): word 0 carries the target instance id;
//! each parameter follows — `bool` 1 word, `int` 2 words (hi, lo),
//! `real` 2 words (IEEE-754 bits). Strings cannot cross the boundary
//! (hardware has no string type); a cross-partition event with a string
//! parameter is a mapping error.

use crate::analysis;
use crate::partition::{Partition, Side};
use crate::{MdaError, Result};
use xtuml_core::ids::{ClassId, EventId, InstId};
use xtuml_core::model::Domain;
use xtuml_core::value::{DataType, Value};
use xtuml_cosim::{BridgeConfig, ChannelSpec, Direction};

/// One generated channel: an event type crossing the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfChannel {
    /// Dense channel id.
    pub id: u32,
    /// The receiving class.
    pub target_class: ClassId,
    /// The event delivered to that class.
    pub event: EventId,
    /// Direction of travel (towards the target's side).
    pub dir: Direction,
    /// Parameter types, in declaration order.
    pub params: Vec<DataType>,
    /// Payload size in words (target id + marshalled parameters).
    pub payload_words: usize,
}

/// The complete generated interface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterfaceSpec {
    /// The channel table, sorted by id.
    pub channels: Vec<IfChannel>,
}

/// Marshalled words a parameter of the given type occupies.
fn words_for(ty: DataType) -> Option<usize> {
    match ty {
        DataType::Bool => Some(1),
        DataType::Int | DataType::Real => Some(2),
        _ => None,
    }
}

impl InterfaceSpec {
    /// Derives the interface from the model and the partition.
    ///
    /// # Errors
    ///
    /// Returns [`MdaError::Mapping`] for unmarshallable cross-partition
    /// payloads or statically unresolvable signal targets.
    pub fn derive(domain: &Domain, partition: &Partition) -> Result<InterfaceSpec> {
        // Union of cross-partition (target, event) pairs over all classes.
        let mut pairs: Vec<(ClassId, EventId)> = Vec::new();
        for (ci, _) in domain.classes.iter().enumerate() {
            let sender = ClassId::new(ci as u32);
            let usage = analysis::analyze_class(domain, sender)?;
            for (target, event) in usage.sends {
                if partition.side(sender) != partition.side(target)
                    && !pairs.contains(&(target, event))
                {
                    pairs.push((target, event));
                }
            }
        }
        // Deterministic channel ids: sort by (class name, event name).
        pairs.sort_by(|a, b| {
            let ka = (
                &domain.class(a.0).name,
                &domain.class(a.0).events[a.1.index()].name,
            );
            let kb = (
                &domain.class(b.0).name,
                &domain.class(b.0).events[b.1.index()].name,
            );
            ka.cmp(&kb)
        });

        let mut channels = Vec::new();
        for (id, (target, event)) in pairs.into_iter().enumerate() {
            let decl = &domain.class(target).events[event.index()];
            let mut payload_words = 1; // target instance id
            let mut params = Vec::new();
            for (pname, ty) in &decl.params {
                let Some(w) = words_for(*ty) else {
                    return Err(MdaError::mapping(format!(
                        "event {}.{} crosses the partition boundary but parameter \
                         `{pname}` has unmarshallable type {ty}",
                        domain.class(target).name,
                        decl.name
                    )));
                };
                payload_words += w;
                params.push(*ty);
            }
            let dir = match partition.side(target) {
                Side::Hw => Direction::SwToHw,
                Side::Sw => Direction::HwToSw,
            };
            channels.push(IfChannel {
                id: id as u32,
                target_class: target,
                event,
                dir,
                params,
                payload_words,
            });
        }
        Ok(InterfaceSpec { channels })
    }

    /// Finds the channel for a `(target class, event)` pair.
    pub fn channel_for(&self, target: ClassId, event: EventId) -> Option<&IfChannel> {
        self.channels
            .iter()
            .find(|c| c.target_class == target && c.event == event)
    }

    /// Finds a channel by id.
    pub fn channel(&self, id: u32) -> Option<&IfChannel> {
        self.channels.iter().find(|c| c.id == id)
    }

    /// Converts to the bridge configuration (FIFO depth and bus latency
    /// come from domain-level marks).
    pub fn to_bridge_config(&self, fifo_depth: usize, bus_latency: u64) -> BridgeConfig {
        BridgeConfig {
            channels: self
                .channels
                .iter()
                .map(|c| ChannelSpec {
                    id: c.id,
                    payload_words: c.payload_words,
                    dir: c.dir,
                })
                .collect(),
            fifo_depth,
            bus_latency,
        }
    }

    /// Total payload words across channels (interface-size metric, E6).
    pub fn total_words(&self) -> usize {
        self.channels.iter().map(|c| c.payload_words).sum()
    }
}

/// Marshals an event for transmission: target id word, then parameters.
///
/// # Errors
///
/// Returns [`MdaError::Mapping`] on payload/spec mismatch (only possible
/// with hand-built values; generated paths are correct by construction).
pub fn marshal(channel: &IfChannel, to: InstId, args: &[Value]) -> Result<Vec<u32>> {
    if args.len() != channel.params.len() {
        return Err(MdaError::mapping(format!(
            "channel {} expects {} parameter(s), got {}",
            channel.id,
            channel.params.len(),
            args.len()
        )));
    }
    let mut words = vec![u32::from(to)];
    for (ty, v) in channel.params.iter().zip(args) {
        match (ty, v) {
            (DataType::Bool, Value::Bool(b)) => words.push(u32::from(*b)),
            (DataType::Int, Value::Int(i)) => {
                let u = *i as u64;
                words.push((u >> 32) as u32);
                words.push(u as u32);
            }
            (DataType::Real, Value::Real(r)) => {
                let u = r.to_bits();
                words.push((u >> 32) as u32);
                words.push(u as u32);
            }
            (want, got) => {
                return Err(MdaError::mapping(format!(
                    "channel {}: expected {want}, got {}",
                    channel.id,
                    got.data_type()
                )))
            }
        }
    }
    debug_assert_eq!(words.len(), channel.payload_words);
    Ok(words)
}

/// Unmarshals a received payload into the target instance and arguments.
///
/// # Errors
///
/// Returns [`MdaError::Mapping`] on truncated payloads.
pub fn unmarshal(channel: &IfChannel, words: &[u32]) -> Result<(InstId, Vec<Value>)> {
    if words.len() != channel.payload_words {
        return Err(MdaError::mapping(format!(
            "channel {}: payload is {} word(s), got {}",
            channel.id,
            channel.payload_words,
            words.len()
        )));
    }
    let to = InstId::new(words[0]);
    let mut at = 1;
    let mut args = Vec::new();
    for ty in &channel.params {
        match ty {
            DataType::Bool => {
                args.push(Value::Bool(words[at] != 0));
                at += 1;
            }
            DataType::Int => {
                let u = (u64::from(words[at]) << 32) | u64::from(words[at + 1]);
                args.push(Value::Int(u as i64));
                at += 2;
            }
            DataType::Real => {
                let u = (u64::from(words[at]) << 32) | u64::from(words[at + 1]);
                args.push(Value::Real(f64::from_bits(u)));
                at += 2;
            }
            other => {
                return Err(MdaError::mapping(format!(
                    "channel {}: unmarshallable type {other}",
                    channel.id
                )))
            }
        }
    }
    Ok((to, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::builder::DomainBuilder;
    use xtuml_core::marks::MarkSet;
    use xtuml_core::model::Multiplicity;

    fn two_class_domain() -> Domain {
        let mut b = DomainBuilder::new("d");
        b.class("Ctrl")
            .event("Kick", &[])
            .state("Idle", "")
            .state("Run", "f = any(self -> Filter[R1]); gen Job(7, true) to f;")
            .initial("Idle")
            .transition("Idle", "Kick", "Run");
        b.class("Filter")
            .event("Job", &[("n", DataType::Int), ("flag", DataType::Bool)])
            .state("Wait", "")
            .state("Work", "c = any(self -> Ctrl[R1]); gen Kick() to c;")
            .initial("Wait")
            .transition("Wait", "Job", "Work")
            .transition("Work", "Job", "Work");
        b.association(
            "R1",
            "Ctrl",
            Multiplicity::One,
            "Filter",
            Multiplicity::Many,
        );
        b.build().unwrap()
    }

    #[test]
    fn homogeneous_partition_has_no_channels() {
        let d = two_class_domain();
        let p = Partition::from_marks(&d, &MarkSet::new());
        let spec = InterfaceSpec::derive(&d, &p).unwrap();
        assert!(spec.channels.is_empty());
        assert_eq!(spec.total_words(), 0);
    }

    #[test]
    fn split_partition_derives_both_directions() {
        let d = two_class_domain();
        let mut m = MarkSet::new();
        m.mark_hardware("Filter");
        let p = Partition::from_marks(&d, &m);
        let spec = InterfaceSpec::derive(&d, &p).unwrap();
        assert_eq!(spec.channels.len(), 2);
        let filter = d.class_id("Filter").unwrap();
        let ctrl = d.class_id("Ctrl").unwrap();
        let job = spec
            .channel_for(filter, d.class(filter).event_id("Job").unwrap())
            .unwrap();
        assert_eq!(job.dir, Direction::SwToHw);
        assert_eq!(job.payload_words, 1 + 2 + 1);
        let kick = spec
            .channel_for(ctrl, d.class(ctrl).event_id("Kick").unwrap())
            .unwrap();
        assert_eq!(kick.dir, Direction::HwToSw);
        assert_eq!(kick.payload_words, 1);
    }

    #[test]
    fn channel_ids_are_deterministic() {
        let d = two_class_domain();
        let mut m = MarkSet::new();
        m.mark_hardware("Filter");
        let p = Partition::from_marks(&d, &m);
        let s1 = InterfaceSpec::derive(&d, &p).unwrap();
        let s2 = InterfaceSpec::derive(&d, &p).unwrap();
        assert_eq!(s1, s2);
        // Sorted by (class, event) name: Ctrl.Kick before Filter.Job.
        assert_eq!(s1.channels[0].target_class, d.class_id("Ctrl").unwrap());
    }

    #[test]
    fn string_payload_across_boundary_is_rejected() {
        let mut b = DomainBuilder::new("d");
        b.class("A")
            .event("Go", &[])
            .state("S", "x = any(self -> B[R1]); gen Msg(\"hi\") to x;")
            .initial("S")
            .transition("S", "Go", "S");
        b.class("B")
            .event("Msg", &[("s", DataType::Str)])
            .state("T", "")
            .initial("T")
            .transition("T", "Msg", "T");
        b.association("R1", "A", Multiplicity::One, "B", Multiplicity::One);
        let d = b.build().unwrap();
        let mut m = MarkSet::new();
        m.mark_hardware("B");
        let p = Partition::from_marks(&d, &m);
        let err = InterfaceSpec::derive(&d, &p).unwrap_err();
        assert!(err.to_string().contains("unmarshallable"));
        // Same model, homogeneous partition: fine (strings never cross).
        let p = Partition::from_marks(&d, &MarkSet::new());
        assert!(InterfaceSpec::derive(&d, &p).is_ok());
    }

    #[test]
    fn marshal_round_trip() {
        let ch = IfChannel {
            id: 0,
            target_class: ClassId::new(1),
            event: EventId::new(0),
            dir: Direction::SwToHw,
            params: vec![DataType::Int, DataType::Bool, DataType::Real],
            payload_words: 1 + 2 + 1 + 2,
        };
        let args = vec![
            Value::Int(-123_456_789_012),
            Value::Bool(true),
            Value::Real(-2.75),
        ];
        let words = marshal(&ch, InstId::new(9), &args).unwrap();
        assert_eq!(words.len(), ch.payload_words);
        let (to, back) = unmarshal(&ch, &words).unwrap();
        assert_eq!(to, InstId::new(9));
        assert_eq!(back, args);
    }

    #[test]
    fn marshal_validates_arity_and_types() {
        let ch = IfChannel {
            id: 0,
            target_class: ClassId::new(0),
            event: EventId::new(0),
            dir: Direction::SwToHw,
            params: vec![DataType::Int],
            payload_words: 3,
        };
        assert!(marshal(&ch, InstId::new(0), &[]).is_err());
        assert!(marshal(&ch, InstId::new(0), &[Value::Bool(true)]).is_err());
        assert!(unmarshal(&ch, &[0, 1]).is_err());
    }

    #[test]
    fn bridge_config_mirrors_channels() {
        let d = two_class_domain();
        let mut m = MarkSet::new();
        m.mark_hardware("Filter");
        let p = Partition::from_marks(&d, &m);
        let spec = InterfaceSpec::derive(&d, &p).unwrap();
        let cfg = spec.to_bridge_config(16, 4);
        assert_eq!(cfg.channels.len(), spec.channels.len());
        assert_eq!(cfg.bus_latency, 4);
        for (c, s) in cfg.channels.iter().zip(&spec.channels) {
            assert_eq!(c.id, s.id);
            assert_eq!(c.payload_words, s.payload_words);
            assert_eq!(c.dir, s.dir);
        }
    }
}
