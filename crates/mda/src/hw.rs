//! The hardware lowering: marked classes become an array of clocked FSMs.
//!
//! Each hardware instance is a synchronous state machine with a bounded
//! input FIFO (depth from the `queueDepth` mark). All instances advance
//! **in parallel** every clock cycle — hardware is spatial — while each
//! individual instance preserves run-to-completion: dispatching an event
//! makes the instance *busy* for as many cycles as the action block has
//! steps (one microcode step per cycle), during which it accepts no new
//! event.
//!
//! This module is the executable twin of the VHDL the model compiler
//! prints ([`crate::vgen`]): same state encoding, same FIFO depths, same
//! channel table.

use crate::host::{DelayedSend, PCore};
use crate::interface::{self, InterfaceSpec};
use crate::partition::{Partition, Side};
use crate::{MdaError, Result};
use std::collections::{BTreeMap, VecDeque};
use xtuml_core::ids::{ClassId, EventId, InstId};
use xtuml_core::model::Domain;
use xtuml_core::value::Value;
use xtuml_cosim::{Bridge, CosimError, HwModel};

/// A queued event at a hardware FSM's input.
#[derive(Debug, Clone)]
struct HwEnvelope {
    from: Option<InstId>,
    event: EventId,
    args: Vec<Value>,
}

/// Per-instance input queues (self-signals bypass the main FIFO, as in
/// the generated VHDL where the self-queue is a separate small FIFO).
#[derive(Debug, Default)]
struct InstQ {
    self_q: VecDeque<HwEnvelope>,
    main_q: VecDeque<HwEnvelope>,
    capacity: usize,
}

impl InstQ {
    fn is_empty(&self) -> bool {
        self.self_q.is_empty() && self.main_q.is_empty()
    }
}

/// The hardware partition: an FSM array lowered from the marked classes.
pub struct HwPartition<'d> {
    pub(crate) core: PCore<'d>,
    iface: InterfaceSpec,
    queues: BTreeMap<InstId, InstQ>,
    busy: BTreeMap<InstId, u64>,
    timers: Vec<(u64, DelayedSend)>,
    tseq: u64,
    stimuli: Vec<(u64, InstId, EventId, Vec<Value>)>,
    default_depth: usize,
    class_depth: BTreeMap<ClassId, usize>,
    /// Cycles in which at least one FSM dispatched (utilisation metric).
    pub active_cycles: u64,
    /// High-water mark of any instance's input queue — sizing data for
    /// the `queueDepth` mark.
    pub max_queue_occupancy: usize,
}

impl<'d> HwPartition<'d> {
    /// Builds the hardware partition model.
    pub(crate) fn new(
        domain: &'d Domain,
        partition: Partition,
        iface: InterfaceSpec,
        cycles_per_unit: u64,
        default_depth: usize,
        class_depth: BTreeMap<ClassId, usize>,
    ) -> HwPartition<'d> {
        HwPartition {
            core: PCore::new(domain, Side::Hw, partition, cycles_per_unit),
            iface,
            queues: BTreeMap::new(),
            busy: BTreeMap::new(),
            timers: Vec::new(),
            tseq: 0,
            stimuli: Vec::new(),
            default_depth,
            class_depth,
            active_cycles: 0,
            max_queue_occupancy: 0,
        }
    }

    /// Registers a locally-owned instance (called at system setup and on
    /// runtime creation).
    pub(crate) fn register_instance(&mut self, inst: InstId, class: ClassId) {
        let capacity = self
            .class_depth
            .get(&class)
            .copied()
            .unwrap_or(self.default_depth);
        self.queues.insert(
            inst,
            InstQ {
                capacity,
                ..InstQ::default()
            },
        );
    }

    /// Schedules an external stimulus (testbench wire) for `time`.
    pub(crate) fn add_stimulus(&mut self, time: u64, to: InstId, event: EventId, args: Vec<Value>) {
        self.stimuli.push((time, to, event, args));
    }

    fn enqueue(&mut self, to: InstId, env: HwEnvelope) -> Result<()> {
        let q = self.queues.entry(to).or_default();
        let target = if env.from == Some(to) {
            &mut q.self_q
        } else {
            &mut q.main_q
        };
        if q.capacity > 0 && target.len() >= q.capacity {
            return Err(MdaError::mapping(format!(
                "hardware event FIFO overflow on instance {to} (queueDepth mark too small)"
            )));
        }
        target.push_back(env);
        self.max_queue_occupancy = self
            .max_queue_occupancy
            .max(q.self_q.len() + q.main_q.len());
        Ok(())
    }

    fn route_effects(&mut self, bridge: &mut Bridge, now: u64) -> Result<()> {
        let effects = self.core.take_effects();
        for s in effects.local {
            self.enqueue(
                s.to,
                HwEnvelope {
                    from: Some(s.from),
                    event: s.event,
                    args: s.args,
                },
            )?;
        }
        for c in effects.cross {
            let class = self.core.store.class_of(c.to)?;
            let Some(channel) = self.iface.channel_for(class, c.event) else {
                return Err(MdaError::mapping(format!(
                    "no generated channel for cross signal to {}",
                    self.core.domain.class(class).name
                )));
            };
            let words = interface::marshal(channel, c.to, &c.args)?;
            bridge
                .hw_send(
                    xtuml_cosim::BusMessage {
                        channel: channel.id,
                        words,
                    },
                    now,
                )
                .map_err(|e| MdaError::Cosim(e.to_string()))?;
        }
        for d in effects.delayed {
            self.tseq += 1;
            self.timers.push((self.tseq, d));
        }
        for (inst, event) in effects.cancels {
            self.timers
                .retain(|(_, d)| !(d.to == inst && d.event == event));
        }
        Ok(())
    }

    /// Number of pending events across all FSM inputs.
    pub fn backlog(&self) -> usize {
        self.queues
            .values()
            .map(|q| q.self_q.len() + q.main_q.len())
            .sum()
    }

    /// The partition's observable outputs `(hw time, seq, event)`.
    pub fn observables(&self) -> &[(u64, u64, xtuml_exec::ObservableEvent)] {
        &self.core.observables
    }

    /// Reads an attribute of a locally-owned instance by name.
    ///
    /// # Errors
    ///
    /// Fails for remote instances or unknown attributes.
    pub fn attr(&self, inst: InstId, name: &str) -> Result<Value> {
        let class = self.core.store.class_of(inst)?;
        let c = self.core.domain.class(class);
        let id = c
            .attr_id(name)
            .ok_or_else(|| MdaError::mapping(format!("unknown attribute {}.{name}", c.name)))?;
        Ok(self.core.store.attr_read(inst, id)?)
    }

    pub(crate) fn store_mut(&mut self) -> &mut xtuml_exec::ObjectStore {
        &mut self.core.store
    }

    pub(crate) fn store(&self) -> &xtuml_exec::ObjectStore {
        &self.core.store
    }
}

impl HwModel for HwPartition<'_> {
    fn cycle(&mut self, bridge: &mut Bridge, now: u64) -> std::result::Result<(), CosimError> {
        self.core.now = now;
        self.cycle_inner(bridge, now)
            .map_err(|e| CosimError::new(e.to_string()))
    }

    fn idle(&self) -> bool {
        self.stimuli.is_empty()
            && self.timers.is_empty()
            && self.queues.values().all(InstQ::is_empty)
            && self.busy.values().all(|b| *b == 0)
    }
}

impl HwPartition<'_> {
    fn cycle_inner(&mut self, bridge: &mut Bridge, now: u64) -> Result<()> {
        // 1. Testbench stimuli due this cycle.
        let mut due: Vec<(u64, InstId, EventId, Vec<Value>)> = Vec::new();
        self.stimuli.retain(|(t, to, ev, args)| {
            if *t <= now {
                due.push((*t, *to, ev.to_owned(), args.clone()));
                false
            } else {
                true
            }
        });
        due.sort_by_key(|(t, to, ..)| (*t, *to));
        for (_, to, event, args) in due {
            self.enqueue(
                to,
                HwEnvelope {
                    from: None,
                    event,
                    args,
                },
            )?;
        }

        // 2. Expired timers.
        let mut fired: Vec<(u64, DelayedSend)> = Vec::new();
        self.timers.retain(|(seq, d)| {
            if d.deadline <= now {
                fired.push((*seq, d.clone()));
                false
            } else {
                true
            }
        });
        fired.sort_by_key(|(seq, d)| (d.deadline, *seq));
        for (_, d) in fired {
            if !self.core.store.is_alive(d.to) {
                continue;
            }
            self.enqueue(
                d.to,
                HwEnvelope {
                    from: Some(d.from),
                    event: d.event,
                    args: d.args,
                },
            )?;
        }

        // 3. Bridge arrivals.
        while let Some(msg) = bridge.hw_recv() {
            let Some(channel) = self.iface.channel(msg.channel) else {
                return Err(MdaError::mapping(format!(
                    "hardware received unknown channel {}",
                    msg.channel
                )));
            };
            let (to, args) = interface::unmarshal(channel, &msg.words)?;
            if !self.core.store.is_alive(to) {
                continue; // target died while the signal was in flight
            }
            self.enqueue(
                to,
                HwEnvelope {
                    from: None,
                    event: channel.event,
                    args,
                },
            )?;
        }

        // 4. Every non-busy FSM with input dispatches — in parallel
        //    (deterministically ordered by instance id for effect order).
        let ready: Vec<InstId> = self
            .queues
            .iter()
            .filter(|(inst, q)| {
                !q.is_empty()
                    && self.busy.get(inst).copied().unwrap_or(0) == 0
                    && self.core.store.is_alive(**inst)
            })
            .map(|(inst, _)| *inst)
            .collect();
        // Busy countdown for everyone else.
        for b in self.busy.values_mut() {
            *b = b.saturating_sub(1);
        }
        if !ready.is_empty() {
            self.active_cycles += 1;
        }
        for inst in ready {
            let env = {
                let q = self.queues.get_mut(&inst).expect("ready implies queued");
                if let Some(e) = q.self_q.pop_front() {
                    e
                } else {
                    q.main_q.pop_front().expect("ready implies queued")
                }
            };
            let steps = self.core.dispatch(inst, env.event, env.args)?;
            // The action datapath takes one cycle per step.
            self.busy.insert(inst, steps);
            self.route_effects(bridge, now)?;
        }
        Ok(())
    }
}
