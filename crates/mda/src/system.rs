//! The instantiated, executable partitioned system.
//!
//! [`CompiledSystem`] is what you get from
//! [`CompiledDesign::instantiate`](crate::CompiledDesign::instantiate):
//! the hardware FSM array, the software dispatch loop and the generated
//! bridge assembled into a co-simulation, plus the testbench API — create
//! instances (mirrored as proxies on the other side so cross-partition
//! references resolve), relate them, inject stimuli, run, and read the
//! merged observable trace.

use crate::hw::HwPartition;
use crate::partition::{Partition, Side};
use crate::swpart::SwPartition;
use crate::{MdaError, Result};
use xtuml_core::ids::InstId;
use xtuml_core::model::Domain;
use xtuml_core::value::Value;
use xtuml_cosim::{Bridge, CoClock, CoSystem, CosimStats};
use xtuml_exec::ObservableEvent;

/// A running partitioned implementation of a domain.
pub struct CompiledSystem<'d> {
    domain: &'d Domain,
    partition: Partition,
    sys: CoSystem<HwPartition<'d>, SwPartition<'d>>,
}

impl<'d> CompiledSystem<'d> {
    pub(crate) fn new(
        domain: &'d Domain,
        partition: Partition,
        hw: HwPartition<'d>,
        sw: SwPartition<'d>,
        bridge: Bridge,
        clock: CoClock,
    ) -> CompiledSystem<'d> {
        CompiledSystem {
            domain,
            partition,
            sys: CoSystem::new(hw, sw, bridge, clock),
        }
    }

    /// The domain this system implements.
    pub fn domain(&self) -> &'d Domain {
        self.domain
    }

    /// Caps the co-simulation length (livelock guard).
    pub fn set_max_cycles(&mut self, max: u64) {
        self.sys.set_max_cycles(max);
    }

    /// Creates an instance of the named class in its owning partition and
    /// a proxy in the other, keeping instance ids aligned across both
    /// stores (which is what makes cross-partition references
    /// marshallable).
    ///
    /// # Errors
    ///
    /// Fails on unknown class names.
    pub fn create(&mut self, class: &str) -> Result<InstId> {
        let class_id = self.domain.class_id(class)?;
        let side = self.partition.side(class_id);
        let (hw_inst, sw_inst) = match side {
            Side::Hw => {
                let r = self.sys.hw_mut().store_mut().create(self.domain, class_id);
                let p = self.sys.sw_mut().store_mut().create_proxy(class_id);
                (r, p)
            }
            Side::Sw => {
                let p = self.sys.hw_mut().store_mut().create_proxy(class_id);
                let r = self.sys.sw_mut().store_mut().create(self.domain, class_id);
                (p, r)
            }
        };
        if hw_inst != sw_inst {
            return Err(MdaError::mapping(
                "instance id desynchronisation (create after run start?)",
            ));
        }
        if side == Side::Hw {
            self.sys.hw_mut().register_instance(hw_inst, class_id);
        }
        Ok(hw_inst)
    }

    /// Relates two instances across the named association in both
    /// partition stores (links are mirrored so navigation works on either
    /// side).
    ///
    /// # Errors
    ///
    /// Propagates multiplicity and class-mismatch errors.
    pub fn relate(&mut self, a: InstId, b: InstId, assoc: &str) -> Result<()> {
        let assoc_id = self.domain.assoc_id(assoc)?;
        self.sys
            .hw_mut()
            .store_mut()
            .relate(self.domain, a, b, assoc_id)?;
        self.sys
            .sw_mut()
            .store_mut()
            .relate(self.domain, a, b, assoc_id)?;
        Ok(())
    }

    /// Schedules an external stimulus: deliver `event` to `inst` at
    /// hardware time `time`.
    ///
    /// # Errors
    ///
    /// Fails on unknown events or arity mismatches.
    pub fn inject(&mut self, time: u64, inst: InstId, event: &str, args: Vec<Value>) -> Result<()> {
        let class_id = self.sys.hw().store().class_of(inst)?;
        let c = self.domain.class(class_id);
        let event_id = c
            .event_id(event)
            .ok_or_else(|| MdaError::mapping(format!("unknown event {}.{event}", c.name)))?;
        if c.events[event_id.index()].params.len() != args.len() {
            return Err(MdaError::mapping(format!(
                "event `{event}` takes {} argument(s), got {}",
                c.events[event_id.index()].params.len(),
                args.len()
            )));
        }
        match self.partition.side(class_id) {
            Side::Hw => self.sys.hw_mut().add_stimulus(time, inst, event_id, args),
            Side::Sw => self.sys.sw_mut().add_stimulus(time, inst, event_id, args),
        }
        Ok(())
    }

    /// Runs the co-simulation to joint quiescence.
    ///
    /// # Errors
    ///
    /// Propagates partition/action errors and the livelock guard.
    pub fn run_to_quiescence(&mut self) -> Result<CosimStats> {
        Ok(self.sys.run_to_quiescence()?)
    }

    /// The merged observable trace: both partitions' actor signals and
    /// bridge calls, ordered by hardware time (hardware effects first
    /// within a cycle, matching execution order).
    pub fn observables(&self) -> Vec<ObservableEvent> {
        let mut all: Vec<(u64, u8, u64, &ObservableEvent)> = Vec::new();
        for (t, s, e) in self.sys.hw().observables() {
            all.push((*t, 0, *s, e));
        }
        for (t, s, e) in self.sys.sw().observables() {
            all.push((*t, 1, *s, e));
        }
        all.sort_by_key(|(t, side, s, _)| (*t, *side, *s));
        all.into_iter().map(|(_, _, _, e)| e.clone()).collect()
    }

    /// Reads an attribute from whichever partition owns the instance.
    ///
    /// # Errors
    ///
    /// Fails on unknown attributes or dead instances.
    pub fn attr(&self, inst: InstId, name: &str) -> Result<Value> {
        let class_id = self.sys.hw().store().class_of(inst)?;
        match self.partition.side(class_id) {
            Side::Hw => self.sys.hw().attr(inst, name),
            Side::Sw => self.sys.sw().attr(inst, name),
        }
    }

    /// Co-simulation statistics so far.
    pub fn stats(&self) -> CosimStats {
        self.sys.stats()
    }

    /// CPU cycles consumed by the software partition.
    pub fn cpu_cycles(&self) -> u64 {
        self.sys.sw().cpu_cycles()
    }

    /// Elapsed hardware cycles.
    pub fn now(&self) -> u64 {
        self.sys.now()
    }

    /// High-water mark of the hardware event FIFOs — tells the designer
    /// what `queueDepth` mark the workload actually needs.
    pub fn max_hw_queue_occupancy(&self) -> usize {
        self.sys.hw().max_queue_occupancy
    }

    /// Cycles in which at least one hardware FSM dispatched.
    pub fn hw_active_cycles(&self) -> u64 {
        self.sys.hw().active_cycles
    }
}
