//! Corpus artifacts: each fuzz case serializes to a
//! `.xtuml`/`.marks`/`.stim` triple that the standard toolchain can
//! consume (`xtuml run model.xtuml --marks m.marks stim.stim` replays a
//! case byte-for-byte), plus load/replay helpers for the checked-in
//! regression corpus.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use xtuml_core::value::Value;
use xtuml_core::CoreError;
use xtuml_lang::{print_domain, print_marks};
use xtuml_verify::TestCase;

use crate::spec::FuzzSpec;

/// One serialized case.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Base file name (no extension), e.g. `seed42-pair-order`.
    pub name: String,
    /// The model source (`.xtuml`).
    pub model: String,
    /// The mark file (`.marks`).
    pub marks: String,
    /// The stimulus script (`.stim`), in the CLI `run` grammar.
    pub stim: String,
}

/// Serializes a spec into a corpus entry.
///
/// # Errors
///
/// Returns the lowering error if the spec no longer validates.
pub fn entry(spec: &FuzzSpec, name: &str) -> Result<CorpusEntry, CoreError> {
    let domain = spec.lower()?;
    Ok(CorpusEntry {
        name: name.to_owned(),
        model: print_domain(&domain),
        marks: print_marks(&domain.name, &spec.marks()),
        stim: render_stim(&spec.testcase()),
    })
}

/// Renders a test case in the CLI `run` stimulus grammar: `create`,
/// `relate` and `at` lines with `i<ordinal>` instance names.
pub fn render_stim(tc: &TestCase) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# conformance-fuzz case {}", tc.name);
    for (i, class) in tc.creates.iter().enumerate() {
        let _ = writeln!(out, "create i{i} {class}");
    }
    for (a, b, assoc) in &tc.relates {
        let _ = writeln!(out, "relate i{a} i{b} {assoc}");
    }
    let mut stims = tc.stimuli.clone();
    stims.sort_by_key(|s| s.time);
    for s in &stims {
        let _ = write!(out, "at {} i{} {}", s.time, s.inst, s.event);
        for v in &s.args {
            let _ = write!(out, " {v}");
        }
        out.push('\n');
    }
    out
}

fn parse_value(tok: &str) -> Result<Value, String> {
    if tok == "true" {
        return Ok(Value::Bool(true));
    }
    if tok == "false" {
        return Ok(Value::Bool(false));
    }
    tok.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unparseable stimulus argument `{tok}`"))
}

/// Parses a stimulus script back into a [`TestCase`].
///
/// Accepts the subset of the CLI `run` grammar the fuzzer emits
/// (`create`/`relate`/`at` with int/bool arguments).
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_stim(src: &str) -> Result<TestCase, String> {
    let mut tc = TestCase::new("replay");
    let mut names: Vec<String> = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("stim line {}: {msg}", lineno + 1);
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "create" => {
                if toks.len() != 3 {
                    return Err(err("expected `create <name> <Class>`"));
                }
                names.push(toks[1].to_owned());
                tc.create(toks[2]);
            }
            "relate" => {
                if toks.len() != 4 {
                    return Err(err("expected `relate <a> <b> <Rk>`"));
                }
                let a = names.iter().position(|n| n == toks[1]);
                let b = names.iter().position(|n| n == toks[2]);
                match (a, b) {
                    (Some(a), Some(b)) => {
                        tc.relate(a, b, toks[3]);
                    }
                    _ => return Err(err("relate references an unknown instance")),
                }
            }
            "at" => {
                if toks.len() < 4 {
                    return Err(err("expected `at <time> <name> <Event> [args..]`"));
                }
                let time: u64 = toks[1].parse().map_err(|_| err("bad time"))?;
                let inst = names
                    .iter()
                    .position(|n| n == toks[2])
                    .ok_or_else(|| err("unknown instance"))?;
                let mut args = Vec::new();
                for tok in &toks[4..] {
                    args.push(parse_value(tok).map_err(|m| err(&m))?);
                }
                tc.inject(time, inst, toks[3], args);
            }
            other => return Err(err(&format!("unknown directive `{other}`"))),
        }
    }
    Ok(tc)
}

/// Writes an entry's three files into `dir` (created if needed); returns
/// the paths written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_entry(dir: &Path, e: &CorpusEntry) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (ext, content) in [("xtuml", &e.model), ("marks", &e.marks), ("stim", &e.stim)] {
        let path = dir.join(format!("{}.{ext}", e.name));
        fs::write(&path, content)?;
        written.push(path);
    }
    Ok(written)
}

/// Loads every case (by `.xtuml` base name) from a corpus directory, in
/// sorted order for determinism.
///
/// # Errors
///
/// Propagates filesystem errors; a `.xtuml` without its `.marks`/`.stim`
/// siblings is reported as [`io::ErrorKind::NotFound`].
pub fn load_dir(dir: &Path) -> io::Result<Vec<CorpusEntry>> {
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "xtuml") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                names.push(stem.to_owned());
            }
        }
    }
    names.sort();
    names
        .into_iter()
        .map(|name| {
            Ok(CorpusEntry {
                model: fs::read_to_string(dir.join(format!("{name}.xtuml")))?,
                marks: fs::read_to_string(dir.join(format!("{name}.marks")))?,
                stim: fs::read_to_string(dir.join(format!("{name}.stim")))?,
                name,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stim_round_trips() {
        let mut tc = TestCase::new("replay");
        tc.create("C0");
        tc.create("C1");
        tc.relate(0, 1, "R1");
        tc.inject(3, 0, "Ev0", vec![Value::Int(-7), Value::Bool(true)]);
        tc.inject(0, 0, "Ev1", vec![]);
        let text = render_stim(&tc);
        let back = parse_stim(&text).unwrap();
        assert_eq!(back.creates, tc.creates);
        assert_eq!(back.relates, tc.relates);
        let mut sorted = tc.stimuli.clone();
        sorted.sort_by_key(|s| s.time);
        assert_eq!(back.stimuli, sorted);
    }

    #[test]
    fn malformed_stim_lines_are_reported() {
        assert!(parse_stim("create onlytwo").is_err());
        assert!(parse_stim("relate a b R1").is_err());
        assert!(parse_stim("at x i0 Ev").is_err());
        assert!(parse_stim("create i0 C0\nat 0 i0 Ev frob").is_err());
        assert!(parse_stim("banana").is_err());
    }
}
