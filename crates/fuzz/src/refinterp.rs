//! An independent reference interpreter for generated models.
//!
//! This deliberately shares **no execution machinery** with
//! `xtuml-exec`'s compiled frames or the `mda` substrates: it walks the
//! action AST directly over a naive store, with one global
//! `(time, sequence)` event queue. It is slow and simple on purpose —
//! the differential oracle compares it against the two production
//! executors, so its value is being an obviously-correct third opinion
//! written against the language definition, not the implementation.
//!
//! It supports exactly the statement forms the generator emits (assign,
//! gen, if, while, break/continue/return) and reports anything else as
//! an error rather than guessing.

use std::collections::BTreeMap;

use xtuml_core::action::{Block, Expr, GenTarget, LValue, Stmt};
use xtuml_core::model::TransitionTarget;
use xtuml_core::value::{apply_binop, apply_unop, BinOp, Value};
use xtuml_core::{ClassId, Domain, EventId, InstId, StateId};
use xtuml_exec::ObservableEvent;
use xtuml_verify::TestCase;

/// Counters the cross-implementation "no lost signals" oracle compares.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefStats {
    /// Events that triggered a transition (and ran an entry action).
    pub dispatches: u64,
    /// Events consumed by an explicit ignore.
    pub ignored: u64,
    /// Instance-directed signals sent by actions (stimuli excluded).
    pub sends: u64,
}

/// Safety net against runaway generated loops; generated loops are
/// counter-bounded, so hitting this is itself a finding.
const FUEL: u64 = 1_000_000;

struct Instance {
    class: ClassId,
    state: StateId,
    attrs: Vec<Value>,
}

struct Pending {
    target: usize,
    event: EventId,
    args: Vec<Value>,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

struct World<'d> {
    domain: &'d Domain,
    insts: Vec<Instance>,
    /// Links per association, as unordered instance-index pairs.
    links: Vec<Vec<(usize, usize)>>,
    /// Ready queue keyed by `(time, sequence)` — one legal total order.
    queue: BTreeMap<(u64, u64), Pending>,
    next_seq: u64,
    now: u64,
    observables: Vec<ObservableEvent>,
    stats: RefStats,
    fuel: u64,
}

impl<'d> World<'d> {
    fn burn(&mut self) -> Result<(), String> {
        if self.fuel == 0 {
            return Err("reference interpreter ran out of fuel".to_owned());
        }
        self.fuel -= 1;
        Ok(())
    }

    fn eval(&mut self, e: &Expr, frame: &Frame<'_>) -> Result<Value, String> {
        match e {
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Var(name) => frame
                .locals
                .get(name)
                .cloned()
                .ok_or_else(|| format!("unbound local `{name}`")),
            Expr::SelfRef => {
                let inst = &self.insts[frame.self_idx];
                Ok(Value::Inst(
                    inst.class,
                    Some(InstId::new(frame.self_idx as u32)),
                ))
            }
            Expr::Param(name) => {
                let class = self.domain.class(self.insts[frame.self_idx].class);
                let params = &class.events[frame.event.index()].params;
                let idx = params
                    .iter()
                    .position(|(n, _)| n == name)
                    .ok_or_else(|| format!("unknown event parameter `{name}`"))?;
                Ok(frame.args[idx].clone())
            }
            Expr::Attr(base, name) => {
                let idx = self.inst_of(base, frame)?;
                let class = self.domain.class(self.insts[idx].class);
                let attr = class
                    .attr_id(name)
                    .ok_or_else(|| format!("unknown attribute `{name}`"))?;
                Ok(self.insts[idx].attrs[attr.index()].clone())
            }
            Expr::Nav(base, class_name, assoc_name) => {
                let idx = self.inst_of(base, frame)?;
                let assoc = self
                    .domain
                    .assoc_id(assoc_name)
                    .map_err(|e| e.to_string())?;
                let target_class = self
                    .domain
                    .class_id(class_name)
                    .map_err(|e| e.to_string())?;
                let mut found: Vec<InstId> = Vec::new();
                for (a, b) in &self.links[assoc.index()] {
                    let partner = if *a == idx {
                        Some(*b)
                    } else if *b == idx {
                        Some(*a)
                    } else {
                        None
                    };
                    if let Some(p) = partner {
                        if self.insts[p].class == target_class {
                            found.push(InstId::new(p as u32));
                        }
                    }
                }
                found.sort();
                found.dedup();
                Ok(Value::Set(target_class, found))
            }
            Expr::Unary(op, inner) => {
                let v = self.eval(inner, frame)?;
                apply_unop(*op, &v).map_err(|e| e.to_string())
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, frame)?;
                let vb = self.eval(b, frame)?;
                apply_binop(*op, &va, &vb).map_err(|e| e.to_string())
            }
            Expr::Selected | Expr::BridgeCall(..) => {
                Err("expression form not supported by the reference interpreter".to_owned())
            }
        }
    }

    fn inst_of(&mut self, base: &Expr, frame: &Frame<'_>) -> Result<usize, String> {
        match self.eval(base, frame)? {
            Value::Inst(_, Some(id)) => Ok(id.index()),
            Value::Inst(_, None) => Err("navigation from an empty reference".to_owned()),
            other => Err(format!("expected an instance, got {other}")),
        }
    }

    fn exec_block(&mut self, block: &Block, frame: &mut Frame<'_>) -> Result<Flow, String> {
        for stmt in &block.stmts {
            self.burn()?;
            match stmt {
                Stmt::Assign { lhs, expr, .. } => {
                    let v = self.eval(expr, frame)?;
                    match lhs {
                        LValue::Var(name) => {
                            frame.locals.insert(name.clone(), v);
                        }
                        LValue::Attr(base, name) => {
                            let idx = self.inst_of(base, frame)?;
                            let class = self.domain.class(self.insts[idx].class);
                            let attr = class
                                .attr_id(name)
                                .ok_or_else(|| format!("unknown attribute `{name}`"))?;
                            self.insts[idx].attrs[attr.index()] = v;
                        }
                    }
                }
                Stmt::Generate {
                    event,
                    args,
                    target,
                    delay,
                    ..
                } => {
                    if delay.is_some() {
                        return Err("delayed signals not supported".to_owned());
                    }
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(a, frame)?);
                    }
                    match target {
                        GenTarget::Actor(actor) => {
                            self.observables.push(ObservableEvent {
                                actor: actor.clone(),
                                event: event.clone(),
                                args: vals,
                            });
                        }
                        GenTarget::Inst(e) => {
                            let idx = self.inst_of(e, frame)?;
                            let class = self.domain.class(self.insts[idx].class);
                            let ev = class
                                .event_id(event)
                                .ok_or_else(|| format!("unknown event `{event}`"))?;
                            self.queue.insert(
                                (self.now, self.next_seq),
                                Pending {
                                    target: idx,
                                    event: ev,
                                    args: vals,
                                },
                            );
                            self.next_seq += 1;
                            self.stats.sends += 1;
                        }
                    }
                }
                Stmt::If {
                    arms, otherwise, ..
                } => {
                    let mut taken = false;
                    for (cond, body) in arms {
                        let c = self.eval(cond, frame)?;
                        if c.as_bool().map_err(|e| e.to_string())? {
                            match self.exec_block(body, frame)? {
                                Flow::Normal => {}
                                flow => return Ok(flow),
                            }
                            taken = true;
                            break;
                        }
                    }
                    if !taken {
                        if let Some(body) = otherwise {
                            match self.exec_block(body, frame)? {
                                Flow::Normal => {}
                                flow => return Ok(flow),
                            }
                        }
                    }
                }
                Stmt::While { cond, body, .. } => loop {
                    self.burn()?;
                    let c = self.eval(cond, frame)?;
                    if !c.as_bool().map_err(|e| e.to_string())? {
                        break;
                    }
                    match self.exec_block(body, frame)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        Flow::Return => return Ok(Flow::Return),
                    }
                },
                Stmt::Break { .. } => return Ok(Flow::Break),
                Stmt::Continue { .. } => return Ok(Flow::Continue),
                Stmt::Return { .. } => return Ok(Flow::Return),
                _ => {
                    return Err(
                        "statement form not supported by the reference interpreter".to_owned()
                    )
                }
            }
        }
        Ok(Flow::Normal)
    }

    fn dispatch(&mut self, p: Pending) -> Result<(), String> {
        let class_id = self.insts[p.target].class;
        let class = self.domain.class(class_id);
        let machine = class
            .state_machine
            .as_ref()
            .ok_or_else(|| format!("class `{}` has no state machine", class.name))?;
        match machine.dispatch(self.insts[p.target].state, p.event) {
            TransitionTarget::CantHappen => Err(format!(
                "can't-happen: event `{}` in state `{}` of `{}`",
                class.events[p.event.index()].name,
                machine.state(self.insts[p.target].state).name,
                class.name
            )),
            TransitionTarget::Ignore => {
                self.stats.ignored += 1;
                Ok(())
            }
            TransitionTarget::To(next) => {
                self.insts[p.target].state = next;
                self.stats.dispatches += 1;
                let action = machine.state(next).action.clone();
                let mut frame = Frame {
                    self_idx: p.target,
                    event: p.event,
                    args: &p.args,
                    locals: BTreeMap::new(),
                };
                self.exec_block(&action, &mut frame)?;
                Ok(())
            }
        }
    }
}

struct Frame<'a> {
    self_idx: usize,
    event: EventId,
    args: &'a [Value],
    locals: BTreeMap<String, Value>,
}

/// Runs a test case against the reference interpreter.
///
/// # Errors
///
/// Returns a description when the script or model uses a feature outside
/// the generated subset, or when a can't-happen event fires.
pub fn run_reference(
    domain: &Domain,
    tc: &TestCase,
) -> Result<(Vec<ObservableEvent>, RefStats), String> {
    let mut world = World {
        domain,
        insts: Vec::new(),
        links: vec![Vec::new(); domain.associations.len()],
        queue: BTreeMap::new(),
        next_seq: 0,
        now: 0,
        observables: Vec::new(),
        stats: RefStats::default(),
        fuel: FUEL,
    };

    for class_name in &tc.creates {
        let class_id = domain.class_id(class_name).map_err(|e| e.to_string())?;
        let class = domain.class(class_id);
        let machine = class
            .state_machine
            .as_ref()
            .ok_or_else(|| format!("class `{class_name}` has no state machine"))?;
        world.insts.push(Instance {
            class: class_id,
            // xtUML creation semantics: the instance starts in the initial
            // state and the initial state's entry action does NOT run.
            state: machine.initial,
            attrs: class.attributes.iter().map(|a| a.default.clone()).collect(),
        });
    }
    for (a, b, assoc_name) in &tc.relates {
        let assoc = domain.assoc_id(assoc_name).map_err(|e| e.to_string())?;
        world.links[assoc.index()].push((*a, *b));
    }

    let mut stims = tc.stimuli.clone();
    stims.sort_by_key(|s| s.time);
    for s in &stims {
        let class = domain.class(world.insts[s.inst].class);
        let ev = class
            .event_id(&s.event)
            .ok_or_else(|| format!("unknown event `{}`", s.event))?;
        let seq = world.next_seq;
        world.next_seq += 1;
        world.queue.insert(
            (s.time, seq),
            Pending {
                target: s.inst,
                event: ev,
                args: s.args.clone(),
            },
        );
    }

    while let Some(((time, _), pending)) = world.queue.pop_first() {
        world.now = time;
        world.dispatch(pending)?;
    }

    Ok((world.observables, world.stats))
}

/// True when the binary operator is one the generator may emit — used by
/// the generator's own tests to keep the subset and this interpreter in
/// sync.
pub fn generated_binop(op: BinOp) -> bool {
    !matches!(op, BinOp::Div | BinOp::Rem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtuml_core::builder::pipeline_domain;
    use xtuml_exec::SchedPolicy;
    use xtuml_verify::{check_equivalence, run_model};

    #[test]
    fn reference_matches_interpreter_on_pipeline() {
        for stages in 1..4usize {
            let domain = pipeline_domain(stages).unwrap();
            let tc = TestCase::pipeline(stages, 3);
            let (obs, stats) = run_reference(&domain, &tc).unwrap();
            let model = run_model(&domain, SchedPolicy::default(), &tc).unwrap();
            assert!(
                check_equivalence(&model, &obs).is_equivalent(),
                "stages={stages}"
            );
            assert_eq!(stats.dispatches, 3 * stages as u64);
        }
    }

    #[test]
    fn unknown_event_is_an_error() {
        let domain = pipeline_domain(1).unwrap();
        let mut tc = TestCase::new("bad");
        tc.create("Stage0");
        tc.inject(0, 0, "Nope", vec![]);
        assert!(run_reference(&domain, &tc).is_err());
    }

    #[test]
    fn div_and_rem_are_outside_the_generated_subset() {
        assert!(!generated_binop(BinOp::Div));
        assert!(!generated_binop(BinOp::Rem));
        assert!(generated_binop(BinOp::Add));
    }
}
