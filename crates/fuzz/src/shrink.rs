//! Greedy structural shrinking of a failing case.
//!
//! Reductions are tried in decreasing order of payoff — drop a class,
//! drop a stimulus, empty a state's action, drop one statement, weaken a
//! transition to an ignore — and a reduction is kept only when the
//! reduced spec still fails with the **same failure class** (so a
//! divergence never "shrinks" into a mere build error). The loop runs to
//! a fixed point under an attempt budget; every candidate stays
//! well-formed by construction, so the minimized triple always lowers,
//! prints and replays.

use xtuml_core::action::{Block, Expr, GenTarget, Stmt};

use crate::runner::{run_spec, Ablation};
use crate::spec::{FuzzSpec, TransSpec};
use xtuml_exec::Engine;

/// Shrink effort bound: total reduced-case executions.
const MAX_ATTEMPTS: u64 = 2_000;

/// What the shrinker achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Reduced-case executions performed.
    pub attempts: u64,
    /// Class count before → after.
    pub classes: (usize, usize),
    /// Statement count before → after.
    pub stmts: (usize, usize),
    /// Stimulus count before → after.
    pub stimuli: (usize, usize),
}

impl ShrinkStats {
    /// Size ratio `after/before` over (classes + statements + stimuli);
    /// 1.0 means nothing shrank.
    pub fn ratio(&self) -> f64 {
        let before = (self.classes.0 + self.stmts.0 + self.stimuli.0) as f64;
        let after = (self.classes.1 + self.stmts.1 + self.stimuli.1) as f64;
        if before == 0.0 {
            1.0
        } else {
            after / before
        }
    }
}

fn expr_mentions(e: &Expr, class: &str) -> bool {
    match e {
        Expr::Nav(base, c, _) => c == class || expr_mentions(base, class),
        Expr::Attr(base, _) => expr_mentions(base, class),
        Expr::Unary(_, inner) => expr_mentions(inner, class),
        Expr::Binary(_, a, b) => expr_mentions(a, class) || expr_mentions(b, class),
        Expr::BridgeCall(_, _, args) => args.iter().any(|a| expr_mentions(a, class)),
        _ => false,
    }
}

fn stmt_mentions(s: &Stmt, class: &str) -> bool {
    match s {
        Stmt::Generate { args, target, .. } => {
            args.iter().any(|a| expr_mentions(a, class))
                || matches!(target, GenTarget::Inst(e) if expr_mentions(e, class))
        }
        Stmt::Assign { expr, .. } => expr_mentions(expr, class),
        _ => false,
    }
}

/// Removes (recursively) every statement that references `class` — used
/// when that class is deleted so remaining actions stay well-typed.
fn purge_class_refs(block: &mut Block, class: &str) {
    block.stmts.retain(|s| !stmt_mentions(s, class));
    for s in &mut block.stmts {
        match s {
            Stmt::If {
                arms, otherwise, ..
            } => {
                for (_, b) in arms {
                    purge_class_refs(b, class);
                }
                if let Some(b) = otherwise {
                    purge_class_refs(b, class);
                }
            }
            Stmt::While { body, .. } | Stmt::ForEach { body, .. } => {
                purge_class_refs(body, class);
            }
            _ => {}
        }
    }
}

fn remove_class(spec: &FuzzSpec, victim: usize) -> FuzzSpec {
    let mut s = spec.clone();
    let name = s.classes[victim].name.clone();
    s.classes.remove(victim);
    s.assocs.retain(|a| a.parent != victim && a.child != victim);
    for a in &mut s.assocs {
        if a.parent > victim {
            a.parent -= 1;
        }
        if a.child > victim {
            a.child -= 1;
        }
    }
    s.stimuli.retain(|st| st.class != victim);
    for st in &mut s.stimuli {
        if st.class > victim {
            st.class -= 1;
        }
    }
    for c in &mut s.classes {
        for (_, action) in &mut c.states {
            purge_class_refs(action, &name);
        }
    }
    s
}

/// All candidate reductions of `spec`, best payoff first.
fn candidates(spec: &FuzzSpec) -> Vec<FuzzSpec> {
    let mut out = Vec::new();
    // 1. Drop a whole class (sub-tree senders lose their sends too).
    if spec.classes.len() > 1 {
        for victim in (0..spec.classes.len()).rev() {
            out.push(remove_class(spec, victim));
        }
    }
    // 2. Drop a stimulus.
    for i in 0..spec.stimuli.len() {
        let mut s = spec.clone();
        s.stimuli.remove(i);
        out.push(s);
    }
    // 3. Empty a whole state action.
    for (ci, c) in spec.classes.iter().enumerate() {
        for (si, (_, action)) in c.states.iter().enumerate() {
            if !action.stmts.is_empty() {
                let mut s = spec.clone();
                s.classes[ci].states[si].1 = Block::new();
                out.push(s);
            }
        }
    }
    // 4. Drop one top-level statement.
    for (ci, c) in spec.classes.iter().enumerate() {
        for (si, (_, action)) in c.states.iter().enumerate() {
            for k in 0..action.stmts.len() {
                let mut s = spec.clone();
                s.classes[ci].states[si].1.stmts.remove(k);
                out.push(s);
            }
        }
    }
    // 5. Weaken a transition to an ignore (keeps the table total).
    for (ci, c) in spec.classes.iter().enumerate() {
        for (si, row) in c.transitions.iter().enumerate() {
            for (ei, t) in row.iter().enumerate() {
                if matches!(t, TransSpec::To(_)) {
                    let mut s = spec.clone();
                    s.classes[ci].transitions[si][ei] = TransSpec::Ignore;
                    out.push(s);
                }
            }
        }
    }
    out
}

/// Greedily minimizes a failing spec while the failure (same class)
/// reproduces. Returns the original spec untouched when it does not fail
/// at all.
pub fn shrink(
    spec: &FuzzSpec,
    ablation: Ablation,
    engine: Engine,
    checkpoint: bool,
) -> (FuzzSpec, ShrinkStats) {
    let before = (spec.classes.len(), spec.stmt_count(), spec.stimuli.len());
    let target = run_spec(spec, ablation, engine, checkpoint).class();
    let mut stats = ShrinkStats {
        attempts: 1,
        classes: (before.0, before.0),
        stmts: (before.1, before.1),
        stimuli: (before.2, before.2),
    };
    if target == "pass" {
        return (spec.clone(), stats);
    }
    let mut current = spec.clone();
    'outer: loop {
        for cand in candidates(&current) {
            if stats.attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
            stats.attempts += 1;
            if run_spec(&cand, ablation, engine, checkpoint).class() == target {
                current = cand;
                continue 'outer;
            }
        }
        break;
    }
    stats.classes.1 = current.classes.len();
    stats.stmts.1 = current.stmt_count();
    stats.stimuli.1 = current.stimuli.len();
    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::runner::run_spec;

    #[test]
    fn passing_specs_are_left_alone() {
        let spec = generate(0);
        assert_eq!(
            run_spec(&spec, Ablation::None, Engine::Bc, false).class(),
            "pass"
        );
        let (same, stats) = shrink(&spec, Ablation::None, Engine::Bc, false);
        assert_eq!(same, spec);
        assert_eq!(stats.attempts, 1);
        assert!((stats.ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn class_removal_purges_references() {
        // Find a generated spec with at least one edge, remove the child,
        // and check the parent no longer mentions it anywhere.
        for seed in 0..50 {
            let spec = generate(seed);
            if let Some(edge) = spec.assocs.first() {
                let victim = edge.child;
                let name = spec.classes[victim].name.clone();
                let reduced = remove_class(&spec, victim);
                assert_eq!(reduced.classes.len(), spec.classes.len() - 1);
                for c in &reduced.classes {
                    for (_, action) in &c.states {
                        let mut b = action.clone();
                        purge_class_refs(&mut b, &name);
                        assert_eq!(&b, action, "seed {seed}: dangling reference to {name}");
                    }
                }
                // The reduced spec must still lower and validate.
                reduced.lower().unwrap();
                return;
            }
        }
        panic!("no generated spec with an association in 0..50");
    }
}
