//! Differential execution of one case across the three executors, plus
//! the invariant oracles.
//!
//! Executor line-up:
//!
//! 1. the **reference interpreter** ([`crate::refinterp`]) — naive AST
//!    walker, independent of all production machinery;
//! 2. the **model interpreter** (`xtuml-exec` with the bytecode VM, the
//!    production default);
//! 3. the model interpreter again on the **compiled-frame** engine — its
//!    full trace must be byte-identical to the VM leg's;
//! 4. the **partitioned co-simulation** (`xtuml-mda` compile +
//!    hardware/software substrates over the bus bridge).
//!
//! Before any execution, the case round-trips through the textual
//! toolchain (printer → parser for model, marks and stimulus script) and
//! the *reparsed* artifacts are what actually run — so the fuzzer
//! exercises the language layer end-to-end on every case.

use xtuml_core::marks::MarkSet;
use xtuml_core::{AssocId, Domain};
use xtuml_exec::{
    Engine, ObservableEvent, SchedPolicy, ShardedSimulation, Simulation, Trace, TraceEvent,
};
use xtuml_lang::{parse_domain, parse_marks, print_domain, print_marks};
use xtuml_mda::ModelCompiler;
use xtuml_verify::{check_equivalence, run_compiled, EquivReport, TestCase};

use crate::corpus::{parse_stim, render_stim};
use crate::refinterp::run_reference;
use crate::spec::FuzzSpec;

/// Test-only fault injection: which event rule the model-interpreter run
/// deliberately breaks. Used to prove the differential oracle actually
/// catches scheduler bugs (and to exercise the shrinker on real
/// divergences).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ablation {
    /// No fault: all executors follow the defined semantics.
    #[default]
    None,
    /// Break per-pair send order in the model interpreter (signals
    /// between a sender–receiver pair may be consumed out of order).
    PairOrder,
}

impl Ablation {
    /// The scheduling policy the model-interpreter executor runs under.
    pub fn policy(self) -> SchedPolicy {
        match self {
            Ablation::None => SchedPolicy::default(),
            Ablation::PairOrder => SchedPolicy {
                pair_order: false,
                ..SchedPolicy::default()
            },
        }
    }

    /// Parses a CLI spelling.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized spelling.
    pub fn parse(s: &str) -> Result<Ablation, String> {
        match s {
            "none" => Ok(Ablation::None),
            "pair-order" => Ok(Ablation::PairOrder),
            other => Err(format!(
                "unknown ablation `{other}` (expected `none` or `pair-order`)"
            )),
        }
    }
}

/// Aggregate effort counters for a passing case.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaseStats {
    /// Transitions taken by the model interpreter.
    pub dispatches: u64,
    /// Observable signals emitted (per executor; they agree on a pass).
    pub observables: u64,
    /// Events compared across the executor pairs (sharded legs included).
    pub compared: u64,
    /// The effect analysis admitted the model to sharded execution, so
    /// the sharded differential legs ran.
    pub admitted: bool,
    /// Admission needed the effect summaries (some non-self access was
    /// proven safe) — the old syntactic reject-list would have refused.
    pub newly_admitted: bool,
}

/// The verdict on one case.
#[derive(Debug, Clone, PartialEq)]
pub enum CaseOutcome {
    /// All oracles passed.
    Pass(CaseStats),
    /// The spec no longer lowers to a valid domain (only reachable for
    /// shrunk specs; generated specs validate by construction).
    BuildError(String),
    /// A printer→parser round trip changed the model, marks or stimuli.
    RoundTrip(String),
    /// An executor failed outright.
    ExecError {
        /// Which executor (`reference`, `interpreter`, `compiler`, `cosim`).
        executor: &'static str,
        /// Its error.
        error: String,
    },
    /// An invariant oracle failed (causality, lost signals, drops).
    OracleFailure(String),
    /// Two executors disagree on some actor's observable sequence.
    Divergence {
        /// Which executor pair (e.g. `interpreter-vs-reference`).
        pair: &'static str,
        /// The per-actor divergences.
        report: EquivReport,
    },
}

impl CaseOutcome {
    /// True for anything other than a pass.
    pub fn is_failure(&self) -> bool {
        !matches!(self, CaseOutcome::Pass(_))
    }

    /// Coarse failure class; the shrinker only accepts reductions that
    /// keep the class unchanged.
    pub fn class(&self) -> &'static str {
        match self {
            CaseOutcome::Pass(_) => "pass",
            CaseOutcome::BuildError(_) => "build-error",
            CaseOutcome::RoundTrip(_) => "round-trip",
            CaseOutcome::ExecError { .. } => "exec-error",
            CaseOutcome::OracleFailure(_) => "oracle",
            CaseOutcome::Divergence { .. } => "divergence",
        }
    }

    /// One-line human description.
    pub fn describe(&self) -> String {
        match self {
            CaseOutcome::Pass(s) => format!("pass ({} dispatches)", s.dispatches),
            CaseOutcome::BuildError(e) => format!("build error: {e}"),
            CaseOutcome::RoundTrip(e) => format!("round-trip mismatch: {e}"),
            CaseOutcome::ExecError { executor, error } => format!("{executor} failed: {error}"),
            CaseOutcome::OracleFailure(e) => format!("oracle failure: {e}"),
            CaseOutcome::Divergence { pair, report } => {
                let first = report
                    .divergences
                    .first()
                    .map_or_else(String::new, ToString::to_string);
                format!("{pair} divergence: {first}")
            }
        }
    }
}

struct ExecRun {
    observables: Vec<ObservableEvent>,
    trace: Trace,
    dispatches: u64,
    ignored: u64,
    dropped: u64,
    causality_violations: u64,
}

fn run_interpreter(
    domain: &Domain,
    policy: SchedPolicy,
    tc: &TestCase,
    engine: Engine,
) -> Result<ExecRun, String> {
    let mut sim = Simulation::with_policy(domain, policy);
    sim.set_engine(engine);
    let mut handles = Vec::with_capacity(tc.creates.len());
    for class in &tc.creates {
        handles.push(sim.create(class).map_err(|e| e.to_string())?);
    }
    for (a, b, assoc) in &tc.relates {
        sim.relate(handles[*a], handles[*b], assoc)
            .map_err(|e| e.to_string())?;
    }
    let mut stims = tc.stimuli.clone();
    stims.sort_by_key(|s| s.time);
    for s in &stims {
        sim.inject(s.time, handles[s.inst], &s.event, s.args.clone())
            .map_err(|e| e.to_string())?;
    }
    sim.run_to_quiescence().map_err(|e| e.to_string())?;
    let trace = sim.trace();
    Ok(ExecRun {
        observables: trace.observable(domain),
        trace: trace.clone(),
        dispatches: trace.dispatch_count() as u64,
        ignored: trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Ignored { .. }))
            .count() as u64,
        dropped: sim.dropped_events(),
        causality_violations: trace.causality_violations() as u64,
    })
}

/// Checkpoint cadence for `--checkpoint` runs: dispatches between
/// snapshot/restore cycles. Small enough that short fuzz cases still
/// cross several checkpoints, large enough that the leg stays cheap.
const CHECKPOINT_EVERY: u64 = 5;

/// The interpreter leg again, but the simulation is serialized, dropped
/// and rebuilt from its own snapshot every [`CHECKPOINT_EVERY`]
/// dispatches. The final trace must be byte-identical to the
/// uninterrupted run — any drift means the snapshot codec lost a piece
/// of live scheduler state.
fn run_interpreter_checkpointed(
    domain: &Domain,
    policy: SchedPolicy,
    tc: &TestCase,
    engine: Engine,
) -> Result<Trace, String> {
    let mut sim = Simulation::with_policy(domain, policy);
    sim.set_engine(engine);
    let mut handles = Vec::with_capacity(tc.creates.len());
    for class in &tc.creates {
        handles.push(sim.create(class).map_err(|e| e.to_string())?);
    }
    for (a, b, assoc) in &tc.relates {
        sim.relate(handles[*a], handles[*b], assoc)
            .map_err(|e| e.to_string())?;
    }
    let mut stims = tc.stimuli.clone();
    stims.sort_by_key(|s| s.time);
    for s in &stims {
        sim.inject(s.time, handles[s.inst], &s.event, s.args.clone())
            .map_err(|e| e.to_string())?;
    }
    let mut steps = 0u64;
    while sim.step().map_err(|e| e.to_string())? {
        steps += 1;
        if steps > 10_000_000 {
            return Err("checkpointed run exceeded 10000000 steps - livelock?".to_owned());
        }
        if steps.is_multiple_of(CHECKPOINT_EVERY) {
            let bytes = sim.snapshot();
            sim = Simulation::restore(domain, &bytes).map_err(|e| e.to_string())?;
        }
    }
    Ok(sim.trace().clone())
}

/// Per-class create residues (mod 8) that satisfy the colocation
/// precondition at shards ∈ {2, 4, 8}: classes joined by a colocation
/// association share a residue, distinct components round-robin across
/// residues so the population still spreads over the shards.
fn coloc_residues(domain: &Domain, coloc: &[AssocId]) -> Vec<usize> {
    let n = domain.classes.len();
    let mut rep: Vec<usize> = (0..n).collect();
    fn root(rep: &mut [usize], mut c: usize) -> usize {
        while rep[c] != c {
            rep[c] = rep[rep[c]];
            c = rep[c];
        }
        c
    }
    for &a in coloc {
        let assoc = domain.association(a);
        let (x, y) = (
            root(&mut rep, assoc.from.index()),
            root(&mut rep, assoc.to.index()),
        );
        rep[x] = y;
    }
    let mut assigned: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    (0..n)
        .map(|c| {
            let r = root(&mut rep, c);
            let next = assigned.len();
            *assigned.entry(r).or_insert(next) % 8
        })
        .collect()
}

/// Runs the test case on the sharded engine at `shards` home shards on a
/// single worker (the shard count alone fixes the schedule; worker-count
/// invariance is the engine suites' job).
///
/// Setup creates are padded with inert extra instances so every class
/// lands on its colocation component's index residue (mod 8) — the
/// engine's runtime colocation precondition then holds at 2, 4 and 8
/// shards while distinct components still spread across shards. The
/// padding is observable-neutral: creation runs no entry action, the
/// pad instances are never related or stimulated, and fuzz-generated
/// models never `select` from a class extent.
fn run_sharded(
    domain: &Domain,
    policy: SchedPolicy,
    tc: &TestCase,
    residues: &[usize],
    shards: usize,
) -> Result<Vec<ObservableEvent>, String> {
    let mut sim = ShardedSimulation::with_policy(domain, policy.with_shards(shards));
    let mut handles = Vec::with_capacity(tc.creates.len());
    let mut next = 0usize;
    for class in &tc.creates {
        let want = residues[domain.class_id(class).map_err(|e| e.to_string())?.index()];
        while next % 8 != want {
            sim.create(class).map_err(|e| e.to_string())?;
            next += 1;
        }
        handles.push(sim.create(class).map_err(|e| e.to_string())?);
        next += 1;
    }
    for (a, b, assoc) in &tc.relates {
        sim.relate(handles[*a], handles[*b], assoc)
            .map_err(|e| e.to_string())?;
    }
    let mut stims = tc.stimuli.clone();
    stims.sort_by_key(|s| s.time);
    for s in &stims {
        sim.inject(s.time, handles[s.inst], &s.event, s.args.clone())
            .map_err(|e| e.to_string())?;
    }
    sim.run_to_quiescence(1).map_err(|e| e.to_string())?;
    if let Some(why) = sim.runtime_fallback() {
        return Err(format!(
            "statically admitted model hit the runtime fallback at shards={shards}: {why}"
        ));
    }
    Ok(sim.trace().observable(domain))
}

/// Runs one case (already parsed) through all three executors and every
/// oracle. This is the entry point corpus replay shares with the
/// seed-driven path.
pub fn run_case(
    domain: &Domain,
    marks: &MarkSet,
    tc: &TestCase,
    ablation: Ablation,
    engine: Engine,
    checkpoint: bool,
) -> CaseOutcome {
    // Executor 1: the independent reference interpreter.
    let (ref_obs, ref_stats) = match run_reference(domain, tc) {
        Ok(r) => r,
        Err(error) => {
            return CaseOutcome::ExecError {
                executor: "reference",
                error,
            }
        }
    };

    // Executor 2: the model interpreter on the requested engine (the
    // bytecode VM by default), possibly with an injected scheduler fault.
    let interp = match run_interpreter(domain, ablation.policy(), tc, engine) {
        Ok(r) => r,
        Err(error) => {
            return CaseOutcome::ExecError {
                executor: "interpreter",
                error,
            }
        }
    };

    // Executor 3: the same model interpreter on compiled frames. The two
    // engines must agree on the **full trace**, byte for byte — a far
    // stronger oracle than observable equivalence.
    if engine == Engine::Bc {
        let frames = match run_interpreter(domain, ablation.policy(), tc, Engine::Frames) {
            Ok(r) => r,
            Err(error) => {
                return CaseOutcome::ExecError {
                    executor: "frames",
                    error,
                }
            }
        };
        if frames.trace != interp.trace {
            let n = interp
                .trace
                .iter()
                .zip(frames.trace.iter())
                .take_while(|(a, b)| a == b)
                .count();
            return CaseOutcome::OracleFailure(format!(
                "bytecode VM trace diverges from the frame interpreter at event {n}                  (vm {} events, frames {})",
                interp.trace.len(),
                frames.trace.len()
            ));
        }
    }

    // Executor 3b (`--checkpoint`): the interpreter leg once more, with a
    // snapshot/restore cycle on a fixed dispatch schedule. Byte-identical
    // traces lock the snapshot codec to the live scheduler state.
    if checkpoint {
        let ck = match run_interpreter_checkpointed(domain, ablation.policy(), tc, engine) {
            Ok(t) => t,
            Err(error) => {
                return CaseOutcome::ExecError {
                    executor: "checkpoint",
                    error,
                }
            }
        };
        if ck != interp.trace {
            let n = interp
                .trace
                .iter()
                .zip(ck.iter())
                .take_while(|(a, b)| a == b)
                .count();
            return CaseOutcome::OracleFailure(format!(
                "checkpointed interpreter trace diverges from the uninterrupted run at event {n} (uninterrupted {} events, checkpointed {})",
                interp.trace.len(),
                ck.len()
            ));
        }
    }

    // Executor 4: compile under marks, co-simulate.
    let design = match ModelCompiler::new().compile(domain, marks) {
        Ok(d) => d,
        Err(e) => {
            return CaseOutcome::ExecError {
                executor: "compiler",
                error: e.to_string(),
            }
        }
    };
    let cosim_obs = match run_compiled(&design, tc) {
        Ok(o) => o,
        Err(e) => {
            return CaseOutcome::ExecError {
                executor: "cosim",
                error: e.to_string(),
            }
        }
    };

    // Pairwise per-actor trace equivalence, reference as the `expected`
    // side where it participates.
    let mut compared = 0u64;
    for (pair, expected, actual) in [
        ("interpreter-vs-reference", &ref_obs, &interp.observables),
        ("cosim-vs-reference", &ref_obs, &cosim_obs),
        ("cosim-vs-interpreter", &interp.observables, &cosim_obs),
    ] {
        let report = check_equivalence(expected, actual);
        compared += report.compared as u64;
        if !report.is_equivalent() {
            return CaseOutcome::Divergence { pair, report };
        }
    }

    // Executor 5: the sharded engine, wherever the effect analysis
    // admits the model — the soundness oracle for admission. Every
    // admitted model must produce the reference observables at every
    // shard count; a divergence here means the analysis admitted a model
    // whose trace is *not* a pure function of `(seed, shards)`.
    let plan = xtuml_core::effects::analyze(domain);
    let admitted = plan.admitted();
    let newly_admitted = admitted && plan.uses_admission();
    if admitted && ablation == Ablation::None {
        let coloc: Vec<AssocId> = plan.coloc_assocs.iter().copied().collect();
        let residues = coloc_residues(domain, &coloc);
        for (shards, pair) in [
            (2usize, "sharded2-vs-reference"),
            (4, "sharded4-vs-reference"),
            (8, "sharded8-vs-reference"),
        ] {
            let obs = match run_sharded(domain, ablation.policy(), tc, &residues, shards) {
                Ok(o) => o,
                Err(error) => {
                    return CaseOutcome::ExecError {
                        executor: "sharded",
                        error,
                    }
                }
            };
            let report = check_equivalence(&ref_obs, &obs);
            compared += report.compared as u64;
            if !report.is_equivalent() {
                return CaseOutcome::Divergence { pair, report };
            }
        }
    }

    // Invariant oracles — only meaningful when no fault is injected (a
    // broken pair-order rule legitimately produces causality violations).
    if ablation == Ablation::None {
        if interp.causality_violations != 0 {
            return CaseOutcome::OracleFailure(format!(
                "{} causality violations in the interpreter trace",
                interp.causality_violations
            ));
        }
        if interp.dropped != 0 {
            return CaseOutcome::OracleFailure(format!(
                "{} dropped events in the interpreter",
                interp.dropped
            ));
        }
        // No lost signals: both implementations must consume the same
        // number of events (each event ends as a dispatch or an ignore).
        let ref_consumed = ref_stats.dispatches + ref_stats.ignored;
        let interp_consumed = interp.dispatches + interp.ignored;
        if ref_consumed != interp_consumed {
            return CaseOutcome::OracleFailure(format!(
                "lost signals: reference consumed {ref_consumed}, interpreter {interp_consumed}"
            ));
        }
    }

    CaseOutcome::Pass(CaseStats {
        dispatches: interp.dispatches,
        observables: ref_obs.len() as u64,
        compared,
        admitted,
        newly_admitted,
    })
}

/// Runs one spec end-to-end: lower, round-trip every textual artifact,
/// then [`run_case`] on the **reparsed** model.
pub fn run_spec(
    spec: &FuzzSpec,
    ablation: Ablation,
    engine: Engine,
    checkpoint: bool,
) -> CaseOutcome {
    let domain = match spec.lower() {
        Ok(d) => d,
        Err(e) => return CaseOutcome::BuildError(e.to_string()),
    };

    // Model text round trip.
    let printed = print_domain(&domain);
    let reparsed = match parse_domain(&printed) {
        Ok(d) => d,
        Err(e) => return CaseOutcome::RoundTrip(format!("model failed to reparse: {e}")),
    };
    if reparsed != domain {
        return CaseOutcome::RoundTrip("model reparsed to a different domain".to_owned());
    }

    // Marks round trip.
    let marks = spec.marks();
    let marks_text = print_marks(&domain.name, &marks);
    match parse_marks(&marks_text) {
        Ok((name, reparsed_marks)) => {
            if name != domain.name || reparsed_marks.diff_count(&marks) != 0 {
                return CaseOutcome::RoundTrip("marks reparsed to a different set".to_owned());
            }
        }
        Err(e) => return CaseOutcome::RoundTrip(format!("marks failed to reparse: {e}")),
    }

    // Stimulus-script round trip (compares time-sorted stimuli — the
    // script serializes in delivery order).
    let tc = spec.testcase();
    match parse_stim(&render_stim(&tc)) {
        Ok(back) => {
            let mut sorted = tc.stimuli.clone();
            sorted.sort_by_key(|s| s.time);
            if back.creates != tc.creates || back.relates != tc.relates || back.stimuli != sorted {
                return CaseOutcome::RoundTrip("stimulus script reparsed differently".to_owned());
            }
        }
        Err(e) => return CaseOutcome::RoundTrip(format!("stimulus script failed to reparse: {e}")),
    }

    run_case(&reparsed, &marks, &tc, ablation, engine, checkpoint)
}

/// Replays serialized corpus artifacts (see [`crate::corpus`]).
///
/// # Errors
///
/// Returns a description when any artifact fails to parse or the mark
/// file names a different domain.
pub fn replay(
    model: &str,
    marks: &str,
    stim: &str,
    ablation: Ablation,
    engine: Engine,
    checkpoint: bool,
) -> Result<CaseOutcome, String> {
    let domain = parse_domain(model).map_err(|e| format!("model: {e}"))?;
    let (marks_domain, markset) = parse_marks(marks).map_err(|e| format!("marks: {e}"))?;
    if marks_domain != domain.name {
        return Err(format!(
            "mark file is for domain `{marks_domain}`, model is `{}`",
            domain.name
        ));
    }
    let tc = parse_stim(stim)?;
    Ok(run_case(
        &domain, &markset, &tc, ablation, engine, checkpoint,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn ablation_spellings() {
        assert_eq!(Ablation::parse("none").unwrap(), Ablation::None);
        assert_eq!(Ablation::parse("pair-order").unwrap(), Ablation::PairOrder);
        assert!(Ablation::parse("frobnicate").is_err());
        assert!(!Ablation::PairOrder.policy().pair_order);
        assert!(Ablation::None.policy().pair_order);
    }

    #[test]
    fn first_seeds_pass_all_oracles() {
        for seed in 0..10 {
            let outcome = run_spec(&generate(seed), Ablation::None, Engine::Bc, false);
            assert!(!outcome.is_failure(), "seed {seed}: {}", outcome.describe());
        }
    }

    #[test]
    fn frames_engine_passes_the_three_way() {
        for seed in 0..5 {
            let outcome = run_spec(&generate(seed), Ablation::None, Engine::Frames, false);
            assert!(!outcome.is_failure(), "seed {seed}: {}", outcome.describe());
        }
    }

    #[test]
    fn checkpointed_runs_match_uninterrupted_ones() {
        // `--checkpoint` re-runs the interpreter leg with a
        // snapshot/restore cycle every few dispatches; the byte-identical
        // trace oracle must hold on healthy seeds for both engines.
        for seed in 0..8 {
            let outcome = run_spec(&generate(seed), Ablation::None, Engine::Bc, true);
            assert!(!outcome.is_failure(), "seed {seed}: {}", outcome.describe());
        }
        let outcome = run_spec(&generate(0), Ablation::None, Engine::Frames, true);
        assert!(!outcome.is_failure(), "frames: {}", outcome.describe());
    }

    #[test]
    fn the_effect_analysis_admits_a_healthy_share_of_generated_models() {
        // The acceptance bar for the non-self-access axis: a good share
        // of generated models must be admitted *because of* the effect
        // summaries (the syntactic reject-list refused every non-self
        // access), and the racy variant must keep producing genuinely
        // rejected models so the negative side stays covered too.
        let mut admitted = 0u32;
        let mut newly = 0u32;
        let mut rejected = 0u32;
        for seed in 0..100 {
            let spec = generate(seed);
            let domain = spec.lower().unwrap();
            let plan = xtuml_core::effects::analyze(&domain);
            if plan.admitted() {
                admitted += 1;
                if plan.uses_admission() {
                    newly += 1;
                }
            } else {
                rejected += 1;
            }
        }
        assert!(newly >= 20, "only {newly}/100 models newly admitted");
        assert!(rejected >= 3, "only {rejected}/100 models rejected");
        assert!(admitted >= 50, "only {admitted}/100 models admitted");
    }

    #[test]
    fn sharded_legs_run_for_newly_admitted_models_and_agree() {
        // End-to-end soundness sweep: every newly admitted model must
        // survive the sharded differential at 2, 4 and 8 shards (a
        // runtime fallback or divergence fails the case), and enough
        // cases must actually take that path for the oracle to mean
        // anything.
        let mut exercised = 0u32;
        for seed in 0..40 {
            let outcome = run_spec(&generate(seed), Ablation::None, Engine::Bc, false);
            let CaseOutcome::Pass(stats) = &outcome else {
                panic!("seed {seed}: {}", outcome.describe())
            };
            if stats.newly_admitted {
                exercised += 1;
            }
        }
        assert!(
            exercised >= 8,
            "only {exercised}/40 cases exercised the sharded legs"
        );
    }

    #[test]
    fn outcome_classes_are_stable() {
        let outcome = run_spec(&generate(0), Ablation::None, Engine::Bc, false);
        assert_eq!(outcome.class(), "pass");
        assert!(outcome.describe().starts_with("pass"));
    }
}
