//! The case generator: one `u64` seed → one well-formed [`FuzzSpec`].
//!
//! Everything the generator emits is **confluent by construction**, so
//! any legal schedule (interpreter, compiled frames, partitioned cosim)
//! must produce identical per-actor traces and every divergence is a
//! toolchain bug:
//!
//! * the class send graph is a forest pointing from lower to higher
//!   indices — each class has at most one sender, so per-receiver FIFO
//!   order is fixed by that sender's run-to-completion order;
//! * exactly one instance per class, and each class emits observables
//!   only to its own observer actor, so per-actor sequences have a
//!   single source;
//! * external stimuli target only forest roots;
//! * transition tables are total (`CantHappen` is unreachable), actions
//!   use wrapping `+ - *` on ints (no division — no traps), and all
//!   loops are counter-bounded;
//! * all data is `int`/`bool`, which marshal exactly across a
//!   hardware/software boundary.
//!
//! The **non-self-access axis** stresses the effect analysis
//! ([`xtuml_core::effects`]) without breaking confluence: on roughly
//! half the associations, the child grows a `k0` attribute the parent
//! *reads* through navigation (never written anywhere — a provably
//! const attribute) and a `w0` attribute the parent *writes* through
//! navigation (never read anywhere — a write-only sink, so no
//! observable depends on cross-instance write order). Classes joined by
//! such an edge share one co-simulation partition (remote attribute
//! access is partition-local). A rare **racy** variant duplicates one
//! such association and writes `w0` through both copies from two
//! different parent states — a genuine two-action cross-shard race the
//! analysis must reject (X0017) while the sequential differential still
//! passes.

use xtuml_core::action::{Block, Expr, GenTarget, LValue, Stmt};
use xtuml_core::error::Pos;
use xtuml_core::value::{BinOp, UnOp, Value};
use xtuml_core::Multiplicity;
use xtuml_prop::Gen;

use crate::spec::{AssocSpec, ClassSpec, FuzzSpec, ScalarTy, StimSpec, TransSpec};

const MULTS: [Multiplicity; 3] = [Multiplicity::One, Multiplicity::ZeroOne, Multiplicity::Many];

fn scalar(g: &mut Gen) -> ScalarTy {
    if g.flip() {
        ScalarTy::Int
    } else {
        ScalarTy::Bool
    }
}

/// What an action body may reference while being generated.
struct Ctx<'a> {
    /// `(attr name, type)` of the executing class.
    attrs: &'a [(String, ScalarTy)],
    /// Shared event signature — empty when `rcvd.*` is not allowed
    /// (states with no inbound transition are never entered by an event).
    params: &'a [(String, ScalarTy)],
    /// Outgoing edges: `(assoc name, child class name, child event name,
    /// child signature)`.
    sends: &'a [(String, String, String, Vec<ScalarTy>)],
    /// Observable events `(name, signature)` on the observer actor.
    obs: &'a [(String, Vec<ScalarTy>)],
    /// Observer actor name.
    actor: &'a str,
    /// Navigated reads of child `k0` const attributes, usable wherever
    /// an int leaf is.
    nav_reads: &'a [Expr],
    /// Navigated writes to child `w0` sink attributes: `(nav base,
    /// attr name)`.
    nav_writes: &'a [(Expr, String)],
    /// Int-typed locals currently in scope.
    locals: Vec<String>,
    /// Fresh-name counter for locals.
    next_local: usize,
}

/// An int literal in the parser's canonical form: the lexer has no
/// negative literals, so `-9` must be `Neg(Lit(9))` for the printed text
/// to reparse to the identical AST.
fn int_lit(v: i64) -> Expr {
    if v < 0 {
        Expr::Unary(UnOp::Neg, Box::new(Expr::int(-v)))
    } else {
        Expr::int(v)
    }
}

fn int_leaves(ctx: &Ctx<'_>) -> Vec<Expr> {
    let mut leaves = Vec::new();
    for (n, t) in ctx.attrs {
        // `w*` attrs are write-only sinks: another instance writes them
        // through navigation, so reading one would make observables
        // depend on cross-instance write order and break confluence.
        if *t == ScalarTy::Int && !n.starts_with('w') {
            leaves.push(Expr::Attr(Box::new(Expr::SelfRef), n.clone()));
        }
    }
    leaves.extend(ctx.nav_reads.iter().cloned());
    for (n, t) in ctx.params {
        if *t == ScalarTy::Int {
            leaves.push(Expr::Param(n.clone()));
        }
    }
    for v in &ctx.locals {
        leaves.push(Expr::Var(v.clone()));
    }
    leaves
}

fn int_expr(g: &mut Gen, ctx: &Ctx<'_>, depth: usize) -> Expr {
    if depth == 0 || g.ratio(2, 5) {
        let leaves = int_leaves(ctx);
        if !leaves.is_empty() && g.ratio(3, 5) {
            return leaves[g.index(leaves.len())].clone();
        }
        return int_lit(g.int_in(-9, 9));
    }
    let op = *g.choose(&[BinOp::Add, BinOp::Sub, BinOp::Mul]);
    Expr::Binary(
        op,
        Box::new(int_expr(g, ctx, depth - 1)),
        Box::new(int_expr(g, ctx, depth - 1)),
    )
}

fn bool_expr(g: &mut Gen, ctx: &Ctx<'_>, depth: usize) -> Expr {
    if depth == 0 || g.ratio(1, 3) {
        let mut leaves: Vec<Expr> = Vec::new();
        for (n, t) in ctx.attrs {
            if *t == ScalarTy::Bool {
                leaves.push(Expr::Attr(Box::new(Expr::SelfRef), n.clone()));
            }
        }
        for (n, t) in ctx.params {
            if *t == ScalarTy::Bool {
                leaves.push(Expr::Param(n.clone()));
            }
        }
        if !leaves.is_empty() && g.ratio(1, 2) {
            return leaves[g.index(leaves.len())].clone();
        }
        return Expr::bool(g.flip());
    }
    match g.below(4) {
        0 => Expr::Unary(UnOp::Not, Box::new(bool_expr(g, ctx, depth - 1))),
        1 => {
            let op = *g.choose(&[BinOp::And, BinOp::Or]);
            Expr::Binary(
                op,
                Box::new(bool_expr(g, ctx, depth - 1)),
                Box::new(bool_expr(g, ctx, depth - 1)),
            )
        }
        _ => {
            let op = *g.choose(&[
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
                BinOp::Eq,
                BinOp::Ne,
            ]);
            Expr::Binary(
                op,
                Box::new(int_expr(g, ctx, 1)),
                Box::new(int_expr(g, ctx, 1)),
            )
        }
    }
}

fn expr_of(g: &mut Gen, ctx: &Ctx<'_>, ty: ScalarTy, depth: usize) -> Expr {
    match ty {
        ScalarTy::Int => int_expr(g, ctx, depth),
        ScalarTy::Bool => bool_expr(g, ctx, depth),
    }
}

/// A side-effecting "simple" statement: attribute write (own `a*` attrs
/// or a navigated child `w0` sink), observable emit, or a signal to a
/// child — the building block of both straight-line code and loop/branch
/// bodies.
fn simple_stmt(g: &mut Gen, ctx: &mut Ctx<'_>) -> Stmt {
    let pos = Pos::default();
    // Only `a*` attrs are write targets: `k*` must stay provably const
    // and `w*` is written exclusively through navigation by the parent.
    let writable: Vec<(String, ScalarTy)> = ctx
        .attrs
        .iter()
        .filter(|(n, _)| n.starts_with('a'))
        .cloned()
        .collect();
    for _ in 0..3 {
        match g.below(4) {
            0 if !writable.is_empty() => {
                let (name, ty) = writable[g.index(writable.len())].clone();
                return Stmt::Assign {
                    lhs: LValue::Attr(Expr::SelfRef, name),
                    expr: expr_of(g, ctx, ty, 2),
                    pos,
                };
            }
            3 if !ctx.nav_writes.is_empty() => {
                let (base, attr) = ctx.nav_writes[g.index(ctx.nav_writes.len())].clone();
                return Stmt::Assign {
                    lhs: LValue::Attr(base, attr),
                    expr: int_expr(g, ctx, 1),
                    pos,
                };
            }
            1 if !ctx.sends.is_empty() => {
                let (assoc, child, event, sig) = ctx.sends[g.index(ctx.sends.len())].clone();
                let args = sig.iter().map(|t| expr_of(g, ctx, *t, 1)).collect();
                let nav = Expr::Nav(Box::new(Expr::SelfRef), child, assoc);
                return Stmt::Generate {
                    event,
                    args,
                    target: GenTarget::Inst(Expr::Unary(UnOp::Any, Box::new(nav))),
                    delay: None,
                    pos,
                };
            }
            _ if !ctx.obs.is_empty() => {
                let (event, sig) = ctx.obs[g.index(ctx.obs.len())].clone();
                let args = sig.iter().map(|t| expr_of(g, ctx, *t, 1)).collect();
                return Stmt::Generate {
                    event,
                    args,
                    target: GenTarget::Actor(ctx.actor.to_owned()),
                    delay: None,
                    pos,
                };
            }
            _ => {}
        }
    }
    // Always-available fallback: bind a fresh int local.
    let name = format!("t{}", ctx.next_local);
    ctx.next_local += 1;
    let stmt = Stmt::Assign {
        lhs: LValue::Var(name.clone()),
        expr: int_expr(g, ctx, 1),
        pos,
    };
    ctx.locals.push(name);
    stmt
}

fn action_block(g: &mut Gen, ctx: &mut Ctx<'_>) -> Block {
    let pos = Pos::default();
    let mut stmts = Vec::new();
    let n = 1 + g.index(4);
    for _ in 0..n {
        match g.below(6) {
            0 => {
                // Fresh int local, usable by later statements.
                let name = format!("t{}", ctx.next_local);
                ctx.next_local += 1;
                stmts.push(Stmt::Assign {
                    lhs: LValue::Var(name.clone()),
                    expr: int_expr(g, ctx, 2),
                    pos,
                });
                ctx.locals.push(name);
            }
            1 => {
                let cond = bool_expr(g, ctx, 2);
                let then: Vec<Stmt> = (0..1 + g.index(2)).map(|_| simple_stmt(g, ctx)).collect();
                let otherwise = if g.flip() {
                    Some(Block {
                        stmts: (0..1 + g.index(2)).map(|_| simple_stmt(g, ctx)).collect(),
                    })
                } else {
                    None
                };
                stmts.push(Stmt::If {
                    arms: vec![(cond, Block { stmts: then })],
                    otherwise,
                    pos,
                });
            }
            2 => {
                // Counter-bounded loop: `t = 0; while (t < k) { t = t + 1; ... }`.
                let name = format!("t{}", ctx.next_local);
                ctx.next_local += 1;
                stmts.push(Stmt::Assign {
                    lhs: LValue::Var(name.clone()),
                    expr: Expr::int(0),
                    pos,
                });
                ctx.locals.push(name.clone());
                let bound = 1 + g.index(3) as i64;
                let mut body = vec![Stmt::Assign {
                    lhs: LValue::Var(name.clone()),
                    expr: Expr::Binary(
                        BinOp::Add,
                        Box::new(Expr::Var(name.clone())),
                        Box::new(Expr::int(1)),
                    ),
                    pos,
                }];
                for _ in 0..1 + g.index(2) {
                    body.push(simple_stmt(g, ctx));
                }
                stmts.push(Stmt::While {
                    cond: Expr::Binary(
                        BinOp::Lt,
                        Box::new(Expr::Var(name)),
                        Box::new(Expr::int(bound)),
                    ),
                    body: Block { stmts: body },
                    pos,
                });
            }
            _ => stmts.push(simple_stmt(g, ctx)),
        }
    }
    Block { stmts }
}

/// Generates the fuzz case for one seed. Deterministic: the same seed
/// always yields the same spec.
pub fn generate(seed: u64) -> FuzzSpec {
    let mut g = Gen::new(seed);
    let n_classes = 1 + g.index(5);

    // Send forest: class c > 0 gets a parent with high probability.
    let mut assocs: Vec<AssocSpec> = Vec::new();
    for c in 1..n_classes {
        if g.ratio(4, 5) {
            assocs.push(AssocSpec {
                name: format!("R{}", assocs.len() + 1),
                parent: g.index(c),
                child: c,
                parent_mult: *g.choose(&MULTS),
                child_mult: *g.choose(&MULTS),
            });
        }
    }

    // The non-self-access axis: on flagged edges the parent reads the
    // child's `k0` (const) and writes its `w0` (sink) through
    // navigation. Only the original forest edges carry the axis; a racy
    // duplicate edge added below never does.
    let axis: Vec<bool> = assocs.iter().map(|_| g.ratio(1, 2)).collect();

    // Class skeletons first: signatures and tables are needed before any
    // action body can reference a child class.
    let mut classes: Vec<ClassSpec> = (0..n_classes)
        .map(|i| {
            let mut attrs: Vec<(String, ScalarTy)> = (0..g.index(3))
                .map(|k| (format!("a{k}"), scalar(&mut g)))
                .collect();
            if assocs.iter().zip(&axis).any(|(a, on)| *on && a.child == i) {
                attrs.push(("k0".to_owned(), ScalarTy::Int));
                attrs.push(("w0".to_owned(), ScalarTy::Int));
            }
            let params: Vec<(String, ScalarTy)> = (0..g.index(3))
                .map(|k| (format!("p{k}"), scalar(&mut g)))
                .collect();
            let events: Vec<String> = (0..1 + g.index(3)).map(|k| format!("Ev{k}")).collect();
            let obs = (0..1 + g.index(2))
                .map(|k| {
                    let sig = (0..g.index(3)).map(|_| scalar(&mut g)).collect();
                    (format!("o{k}"), sig)
                })
                .collect();
            let n_states = 1 + g.index(3);
            let states = (0..n_states)
                .map(|k| (format!("S{k}"), Block::new()))
                .collect();
            let transitions = (0..n_states)
                .map(|_| {
                    (0..events.len())
                        .map(|_| {
                            if g.ratio(7, 10) {
                                TransSpec::To(g.index(n_states))
                            } else {
                                TransSpec::Ignore
                            }
                        })
                        .collect()
                })
                .collect();
            ClassSpec {
                name: format!("C{i}"),
                actor: format!("O{i}"),
                attrs,
                params,
                events,
                obs,
                states,
                transitions,
                hardware: g.flip(),
            }
        })
        .collect();

    // Navigated attribute access in the co-simulation is partition-local
    // (a remote `x.attr` fails at the bus boundary), so classes joined
    // by an axis edge must share a partition. Edges are in child order
    // with parent < child, so one forward pass pins whole chains.
    for (a, on) in assocs.iter().zip(&axis) {
        if *on {
            classes[a.child].hardware = classes[a.parent].hardware;
        }
    }

    // Racy variant: duplicate one axis edge whose parent has at least
    // two states, then (after the bodies are generated) write the
    // child's `w0` through *both* copies from two different parent
    // states. The two writes reach one attribute through different
    // associations — no single colocation partition justifies them, so
    // the effect analysis must reject the model (X0017) and the sharded
    // differential leg must skip it; the sequential legs still agree
    // because `w0` is never read.
    let racy = g.ratio(1, 6);
    let racy_edge = assocs
        .iter()
        .zip(&axis)
        .position(|(a, on)| *on && classes[a.parent].states.len() >= 2)
        .filter(|_| racy);
    if let Some(idx) = racy_edge {
        let a = assocs[idx].clone();
        assocs.push(AssocSpec {
            name: format!("R{}", assocs.len() + 1),
            parent: a.parent,
            child: a.child,
            parent_mult: Multiplicity::One,
            child_mult: Multiplicity::One,
        });
    }

    // Action bodies. `rcvd.*` is only legal in states an event can enter.
    for i in 0..n_classes {
        let sends: Vec<(String, String, String, Vec<ScalarTy>)> = assocs
            .iter()
            .take(axis.len())
            .filter(|a| a.parent == i)
            .flat_map(|a| {
                let child = &classes[a.child];
                child.events.iter().map(move |ev| {
                    (
                        a.name.clone(),
                        child.name.clone(),
                        ev.clone(),
                        child.params.iter().map(|(_, t)| *t).collect(),
                    )
                })
            })
            .collect();
        let inbound: Vec<bool> = (0..classes[i].states.len())
            .map(|s| {
                classes[i]
                    .transitions
                    .iter()
                    .flatten()
                    .any(|t| *t == TransSpec::To(s))
            })
            .collect();
        let mut nav_reads: Vec<Expr> = Vec::new();
        let mut nav_writes: Vec<(Expr, String)> = Vec::new();
        for (a, on) in assocs.iter().zip(&axis) {
            if !*on || a.parent != i {
                continue;
            }
            let nav = Expr::Unary(
                UnOp::Any,
                Box::new(Expr::Nav(
                    Box::new(Expr::SelfRef),
                    classes[a.child].name.clone(),
                    a.name.clone(),
                )),
            );
            nav_reads.push(Expr::Attr(Box::new(nav.clone()), "k0".to_owned()));
            nav_writes.push((nav, "w0".to_owned()));
        }
        let this = classes[i].clone();
        for (s, entered) in inbound.iter().enumerate() {
            let empty: [(String, ScalarTy); 0] = [];
            let mut ctx = Ctx {
                attrs: &this.attrs,
                params: if *entered { &this.params } else { &empty },
                sends: &sends,
                obs: &this.obs,
                actor: &this.actor,
                nav_reads: &nav_reads,
                nav_writes: &nav_writes,
                locals: Vec::new(),
                next_local: 0,
            };
            classes[i].states[s].1 = action_block(&mut g, &mut ctx);
        }
    }

    // Inject the race: the same `w0`, written via the original edge from
    // the parent's first state and via the duplicate edge from its
    // second state.
    if let Some(idx) = racy_edge {
        let orig = assocs[idx].clone();
        let dup = assocs.last().expect("racy duplicate was pushed").clone();
        let child = classes[orig.child].name.clone();
        let mut write_via = |assoc: &AssocSpec, state: usize, v: i64| {
            let nav = Expr::Unary(
                UnOp::Any,
                Box::new(Expr::Nav(
                    Box::new(Expr::SelfRef),
                    child.clone(),
                    assoc.name.clone(),
                )),
            );
            classes[orig.parent].states[state]
                .1
                .stmts
                .push(Stmt::Assign {
                    lhs: LValue::Attr(nav, "w0".to_owned()),
                    expr: int_lit(v),
                    pos: Pos::default(),
                });
        };
        write_via(&orig, 0, 1);
        write_via(&dup, 1, 2);
    }

    // Stimuli: external signals to forest roots only.
    let roots: Vec<usize> = (0..n_classes)
        .filter(|c| assocs.iter().all(|a| a.child != *c))
        .collect();
    let stimuli = (0..g.index(7))
        .map(|_| {
            let class = roots[g.index(roots.len())];
            let c = &classes[class];
            StimSpec {
                time: g.below(10),
                class,
                event: c.events[g.index(c.events.len())].clone(),
                args: c
                    .params
                    .iter()
                    .map(|(_, t)| match t {
                        ScalarTy::Int => Value::Int(g.int_in(-20, 20)),
                        ScalarTy::Bool => Value::Bool(g.flip()),
                    })
                    .collect(),
            }
        })
        .collect();

    FuzzSpec {
        seed,
        classes,
        assocs,
        stimuli,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(generate(seed), generate(seed));
        }
    }

    #[test]
    fn generated_specs_lower_and_validate() {
        for seed in 0..50 {
            let spec = generate(seed);
            let domain = spec
                .lower()
                .unwrap_or_else(|e| panic!("seed {seed}: generated spec failed validation: {e}"));
            assert!(!domain.classes.is_empty());
        }
    }

    #[test]
    fn send_graph_is_a_forward_forest() {
        // The racy axis may duplicate an edge between one parent–child
        // pair, so the forest invariant is on *distinct* sender classes:
        // per-receiver FIFO confluence only needs a single sender.
        for seed in 0..50 {
            let spec = generate(seed);
            for a in &spec.assocs {
                assert!(a.parent < a.child, "seed {seed}: edge must point forward");
            }
            for c in 0..spec.classes.len() {
                let senders: std::collections::BTreeSet<usize> = spec
                    .assocs
                    .iter()
                    .filter(|a| a.child == c)
                    .map(|a| a.parent)
                    .collect();
                assert!(
                    senders.len() <= 1,
                    "seed {seed}: class {c} has {} distinct senders",
                    senders.len()
                );
            }
        }
    }

    #[test]
    fn the_nonself_axis_and_the_racy_variant_both_fire() {
        let mut with_axis = 0;
        let mut with_race = 0;
        for seed in 0..200 {
            let spec = generate(seed);
            if spec
                .classes
                .iter()
                .any(|c| c.attrs.iter().any(|(n, _)| n == "k0"))
            {
                with_axis += 1;
            }
            let mut pairs = std::collections::BTreeSet::new();
            if spec
                .assocs
                .iter()
                .any(|a| !pairs.insert((a.parent, a.child)))
            {
                with_race += 1;
            }
        }
        assert!(with_axis >= 60, "only {with_axis}/200 seeds grew the axis");
        assert!(with_race >= 10, "only {with_race}/200 seeds grew a race");
    }

    #[test]
    fn stimuli_target_roots_only() {
        for seed in 0..50 {
            let spec = generate(seed);
            for s in &spec.stimuli {
                assert!(
                    spec.assocs.iter().all(|a| a.child != s.class),
                    "seed {seed}: stimulus targets a non-root"
                );
            }
        }
    }
}
