//! The case generator: one `u64` seed → one well-formed [`FuzzSpec`].
//!
//! Everything the generator emits is **confluent by construction**, so
//! any legal schedule (interpreter, compiled frames, partitioned cosim)
//! must produce identical per-actor traces and every divergence is a
//! toolchain bug:
//!
//! * the class send graph is a forest pointing from lower to higher
//!   indices — each class has at most one sender, so per-receiver FIFO
//!   order is fixed by that sender's run-to-completion order;
//! * exactly one instance per class, and each class emits observables
//!   only to its own observer actor, so per-actor sequences have a
//!   single source;
//! * external stimuli target only forest roots;
//! * transition tables are total (`CantHappen` is unreachable), actions
//!   use wrapping `+ - *` on ints (no division — no traps), and all
//!   loops are counter-bounded;
//! * all data is `int`/`bool`, which marshal exactly across a
//!   hardware/software boundary.

use xtuml_core::action::{Block, Expr, GenTarget, LValue, Stmt};
use xtuml_core::error::Pos;
use xtuml_core::value::{BinOp, UnOp, Value};
use xtuml_core::Multiplicity;
use xtuml_prop::Gen;

use crate::spec::{AssocSpec, ClassSpec, FuzzSpec, ScalarTy, StimSpec, TransSpec};

const MULTS: [Multiplicity; 3] = [Multiplicity::One, Multiplicity::ZeroOne, Multiplicity::Many];

fn scalar(g: &mut Gen) -> ScalarTy {
    if g.flip() {
        ScalarTy::Int
    } else {
        ScalarTy::Bool
    }
}

/// What an action body may reference while being generated.
struct Ctx<'a> {
    /// `(attr name, type)` of the executing class.
    attrs: &'a [(String, ScalarTy)],
    /// Shared event signature — empty when `rcvd.*` is not allowed
    /// (states with no inbound transition are never entered by an event).
    params: &'a [(String, ScalarTy)],
    /// Outgoing edges: `(assoc name, child class name, child event name,
    /// child signature)`.
    sends: &'a [(String, String, String, Vec<ScalarTy>)],
    /// Observable events `(name, signature)` on the observer actor.
    obs: &'a [(String, Vec<ScalarTy>)],
    /// Observer actor name.
    actor: &'a str,
    /// Int-typed locals currently in scope.
    locals: Vec<String>,
    /// Fresh-name counter for locals.
    next_local: usize,
}

/// An int literal in the parser's canonical form: the lexer has no
/// negative literals, so `-9` must be `Neg(Lit(9))` for the printed text
/// to reparse to the identical AST.
fn int_lit(v: i64) -> Expr {
    if v < 0 {
        Expr::Unary(UnOp::Neg, Box::new(Expr::int(-v)))
    } else {
        Expr::int(v)
    }
}

fn int_leaves(ctx: &Ctx<'_>) -> Vec<Expr> {
    let mut leaves = Vec::new();
    for (n, t) in ctx.attrs {
        if *t == ScalarTy::Int {
            leaves.push(Expr::Attr(Box::new(Expr::SelfRef), n.clone()));
        }
    }
    for (n, t) in ctx.params {
        if *t == ScalarTy::Int {
            leaves.push(Expr::Param(n.clone()));
        }
    }
    for v in &ctx.locals {
        leaves.push(Expr::Var(v.clone()));
    }
    leaves
}

fn int_expr(g: &mut Gen, ctx: &Ctx<'_>, depth: usize) -> Expr {
    if depth == 0 || g.ratio(2, 5) {
        let leaves = int_leaves(ctx);
        if !leaves.is_empty() && g.ratio(3, 5) {
            return leaves[g.index(leaves.len())].clone();
        }
        return int_lit(g.int_in(-9, 9));
    }
    let op = *g.choose(&[BinOp::Add, BinOp::Sub, BinOp::Mul]);
    Expr::Binary(
        op,
        Box::new(int_expr(g, ctx, depth - 1)),
        Box::new(int_expr(g, ctx, depth - 1)),
    )
}

fn bool_expr(g: &mut Gen, ctx: &Ctx<'_>, depth: usize) -> Expr {
    if depth == 0 || g.ratio(1, 3) {
        let mut leaves: Vec<Expr> = Vec::new();
        for (n, t) in ctx.attrs {
            if *t == ScalarTy::Bool {
                leaves.push(Expr::Attr(Box::new(Expr::SelfRef), n.clone()));
            }
        }
        for (n, t) in ctx.params {
            if *t == ScalarTy::Bool {
                leaves.push(Expr::Param(n.clone()));
            }
        }
        if !leaves.is_empty() && g.ratio(1, 2) {
            return leaves[g.index(leaves.len())].clone();
        }
        return Expr::bool(g.flip());
    }
    match g.below(4) {
        0 => Expr::Unary(UnOp::Not, Box::new(bool_expr(g, ctx, depth - 1))),
        1 => {
            let op = *g.choose(&[BinOp::And, BinOp::Or]);
            Expr::Binary(
                op,
                Box::new(bool_expr(g, ctx, depth - 1)),
                Box::new(bool_expr(g, ctx, depth - 1)),
            )
        }
        _ => {
            let op = *g.choose(&[
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
                BinOp::Eq,
                BinOp::Ne,
            ]);
            Expr::Binary(
                op,
                Box::new(int_expr(g, ctx, 1)),
                Box::new(int_expr(g, ctx, 1)),
            )
        }
    }
}

fn expr_of(g: &mut Gen, ctx: &Ctx<'_>, ty: ScalarTy, depth: usize) -> Expr {
    match ty {
        ScalarTy::Int => int_expr(g, ctx, depth),
        ScalarTy::Bool => bool_expr(g, ctx, depth),
    }
}

/// A side-effecting "simple" statement: attribute write, observable emit,
/// or a signal to a child — the building block of both straight-line code
/// and loop/branch bodies.
fn simple_stmt(g: &mut Gen, ctx: &mut Ctx<'_>) -> Stmt {
    let pos = Pos::default();
    for _ in 0..3 {
        match g.below(3) {
            0 if !ctx.attrs.is_empty() => {
                let (name, ty) = ctx.attrs[g.index(ctx.attrs.len())].clone();
                return Stmt::Assign {
                    lhs: LValue::Attr(Expr::SelfRef, name),
                    expr: expr_of(g, ctx, ty, 2),
                    pos,
                };
            }
            1 if !ctx.sends.is_empty() => {
                let (assoc, child, event, sig) = ctx.sends[g.index(ctx.sends.len())].clone();
                let args = sig.iter().map(|t| expr_of(g, ctx, *t, 1)).collect();
                let nav = Expr::Nav(Box::new(Expr::SelfRef), child, assoc);
                return Stmt::Generate {
                    event,
                    args,
                    target: GenTarget::Inst(Expr::Unary(UnOp::Any, Box::new(nav))),
                    delay: None,
                    pos,
                };
            }
            _ if !ctx.obs.is_empty() => {
                let (event, sig) = ctx.obs[g.index(ctx.obs.len())].clone();
                let args = sig.iter().map(|t| expr_of(g, ctx, *t, 1)).collect();
                return Stmt::Generate {
                    event,
                    args,
                    target: GenTarget::Actor(ctx.actor.to_owned()),
                    delay: None,
                    pos,
                };
            }
            _ => {}
        }
    }
    // Always-available fallback: bind a fresh int local.
    let name = format!("t{}", ctx.next_local);
    ctx.next_local += 1;
    let stmt = Stmt::Assign {
        lhs: LValue::Var(name.clone()),
        expr: int_expr(g, ctx, 1),
        pos,
    };
    ctx.locals.push(name);
    stmt
}

fn action_block(g: &mut Gen, ctx: &mut Ctx<'_>) -> Block {
    let pos = Pos::default();
    let mut stmts = Vec::new();
    let n = 1 + g.index(4);
    for _ in 0..n {
        match g.below(6) {
            0 => {
                // Fresh int local, usable by later statements.
                let name = format!("t{}", ctx.next_local);
                ctx.next_local += 1;
                stmts.push(Stmt::Assign {
                    lhs: LValue::Var(name.clone()),
                    expr: int_expr(g, ctx, 2),
                    pos,
                });
                ctx.locals.push(name);
            }
            1 => {
                let cond = bool_expr(g, ctx, 2);
                let then: Vec<Stmt> = (0..1 + g.index(2)).map(|_| simple_stmt(g, ctx)).collect();
                let otherwise = if g.flip() {
                    Some(Block {
                        stmts: (0..1 + g.index(2)).map(|_| simple_stmt(g, ctx)).collect(),
                    })
                } else {
                    None
                };
                stmts.push(Stmt::If {
                    arms: vec![(cond, Block { stmts: then })],
                    otherwise,
                    pos,
                });
            }
            2 => {
                // Counter-bounded loop: `t = 0; while (t < k) { t = t + 1; ... }`.
                let name = format!("t{}", ctx.next_local);
                ctx.next_local += 1;
                stmts.push(Stmt::Assign {
                    lhs: LValue::Var(name.clone()),
                    expr: Expr::int(0),
                    pos,
                });
                ctx.locals.push(name.clone());
                let bound = 1 + g.index(3) as i64;
                let mut body = vec![Stmt::Assign {
                    lhs: LValue::Var(name.clone()),
                    expr: Expr::Binary(
                        BinOp::Add,
                        Box::new(Expr::Var(name.clone())),
                        Box::new(Expr::int(1)),
                    ),
                    pos,
                }];
                for _ in 0..1 + g.index(2) {
                    body.push(simple_stmt(g, ctx));
                }
                stmts.push(Stmt::While {
                    cond: Expr::Binary(
                        BinOp::Lt,
                        Box::new(Expr::Var(name)),
                        Box::new(Expr::int(bound)),
                    ),
                    body: Block { stmts: body },
                    pos,
                });
            }
            _ => stmts.push(simple_stmt(g, ctx)),
        }
    }
    Block { stmts }
}

/// Generates the fuzz case for one seed. Deterministic: the same seed
/// always yields the same spec.
pub fn generate(seed: u64) -> FuzzSpec {
    let mut g = Gen::new(seed);
    let n_classes = 1 + g.index(5);

    // Send forest: class c > 0 gets a parent with high probability.
    let mut assocs: Vec<AssocSpec> = Vec::new();
    for c in 1..n_classes {
        if g.ratio(4, 5) {
            assocs.push(AssocSpec {
                name: format!("R{}", assocs.len() + 1),
                parent: g.index(c),
                child: c,
                parent_mult: *g.choose(&MULTS),
                child_mult: *g.choose(&MULTS),
            });
        }
    }

    // Class skeletons first: signatures and tables are needed before any
    // action body can reference a child class.
    let mut classes: Vec<ClassSpec> = (0..n_classes)
        .map(|i| {
            let attrs = (0..g.index(3))
                .map(|k| (format!("a{k}"), scalar(&mut g)))
                .collect();
            let params: Vec<(String, ScalarTy)> = (0..g.index(3))
                .map(|k| (format!("p{k}"), scalar(&mut g)))
                .collect();
            let events: Vec<String> = (0..1 + g.index(3)).map(|k| format!("Ev{k}")).collect();
            let obs = (0..1 + g.index(2))
                .map(|k| {
                    let sig = (0..g.index(3)).map(|_| scalar(&mut g)).collect();
                    (format!("o{k}"), sig)
                })
                .collect();
            let n_states = 1 + g.index(3);
            let states = (0..n_states)
                .map(|k| (format!("S{k}"), Block::new()))
                .collect();
            let transitions = (0..n_states)
                .map(|_| {
                    (0..events.len())
                        .map(|_| {
                            if g.ratio(7, 10) {
                                TransSpec::To(g.index(n_states))
                            } else {
                                TransSpec::Ignore
                            }
                        })
                        .collect()
                })
                .collect();
            ClassSpec {
                name: format!("C{i}"),
                actor: format!("O{i}"),
                attrs,
                params,
                events,
                obs,
                states,
                transitions,
                hardware: g.flip(),
            }
        })
        .collect();

    // Action bodies. `rcvd.*` is only legal in states an event can enter.
    for i in 0..n_classes {
        let sends: Vec<(String, String, String, Vec<ScalarTy>)> = assocs
            .iter()
            .filter(|a| a.parent == i)
            .flat_map(|a| {
                let child = &classes[a.child];
                child.events.iter().map(move |ev| {
                    (
                        a.name.clone(),
                        child.name.clone(),
                        ev.clone(),
                        child.params.iter().map(|(_, t)| *t).collect(),
                    )
                })
            })
            .collect();
        let inbound: Vec<bool> = (0..classes[i].states.len())
            .map(|s| {
                classes[i]
                    .transitions
                    .iter()
                    .flatten()
                    .any(|t| *t == TransSpec::To(s))
            })
            .collect();
        let this = classes[i].clone();
        for (s, entered) in inbound.iter().enumerate() {
            let empty: [(String, ScalarTy); 0] = [];
            let mut ctx = Ctx {
                attrs: &this.attrs,
                params: if *entered { &this.params } else { &empty },
                sends: &sends,
                obs: &this.obs,
                actor: &this.actor,
                locals: Vec::new(),
                next_local: 0,
            };
            classes[i].states[s].1 = action_block(&mut g, &mut ctx);
        }
    }

    // Stimuli: external signals to forest roots only.
    let roots: Vec<usize> = (0..n_classes)
        .filter(|c| assocs.iter().all(|a| a.child != *c))
        .collect();
    let stimuli = (0..g.index(7))
        .map(|_| {
            let class = roots[g.index(roots.len())];
            let c = &classes[class];
            StimSpec {
                time: g.below(10),
                class,
                event: c.events[g.index(c.events.len())].clone(),
                args: c
                    .params
                    .iter()
                    .map(|(_, t)| match t {
                        ScalarTy::Int => Value::Int(g.int_in(-20, 20)),
                        ScalarTy::Bool => Value::Bool(g.flip()),
                    })
                    .collect(),
            }
        })
        .collect();

    FuzzSpec {
        seed,
        classes,
        assocs,
        stimuli,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..20 {
            assert_eq!(generate(seed), generate(seed));
        }
    }

    #[test]
    fn generated_specs_lower_and_validate() {
        for seed in 0..50 {
            let spec = generate(seed);
            let domain = spec
                .lower()
                .unwrap_or_else(|e| panic!("seed {seed}: generated spec failed validation: {e}"));
            assert!(!domain.classes.is_empty());
        }
    }

    #[test]
    fn send_graph_is_a_forward_forest() {
        for seed in 0..50 {
            let spec = generate(seed);
            for a in &spec.assocs {
                assert!(a.parent < a.child, "seed {seed}: edge must point forward");
            }
            for c in 0..spec.classes.len() {
                let senders = spec.assocs.iter().filter(|a| a.child == c).count();
                assert!(senders <= 1, "seed {seed}: class {c} has {senders} senders");
            }
        }
    }

    #[test]
    fn stimuli_target_roots_only() {
        for seed in 0..50 {
            let spec = generate(seed);
            for s in &spec.stimuli {
                assert!(
                    spec.assocs.iter().all(|a| a.child != s.class),
                    "seed {seed}: stimulus targets a non-root"
                );
            }
        }
    }
}
