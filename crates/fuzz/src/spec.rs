//! The generated-case specification: a structured, shrinkable description
//! of one fuzz case — classes, associations, state machines, actions,
//! marks and stimuli — from which the concrete artifacts (a [`Domain`],
//! a [`MarkSet`], a [`TestCase`]) are lowered.
//!
//! The spec is the unit the shrinker edits: it stays well-formed by
//! construction (total transition tables, scalar-only signatures, one
//! instance per class), so every reduction step lowers to a model the
//! whole toolchain accepts.

use xtuml_core::action::Block;
use xtuml_core::builder::DomainBuilder;
use xtuml_core::marks::{ElemRef, MarkSet, MarkValue};
use xtuml_core::value::{DataType, Value};
use xtuml_core::{Domain, Multiplicity, Result};
use xtuml_verify::TestCase;

/// The scalar types generated models use. Strings are excluded because
/// they cannot marshal across a hardware/software boundary; reals are
/// excluded to keep cross-substrate arithmetic bit-trivial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarTy {
    /// 64-bit signed integer (marshals as two bus words).
    Int,
    /// Boolean (marshals as one bus word).
    Bool,
}

impl ScalarTy {
    /// The corresponding metamodel data type.
    pub fn data_type(self) -> DataType {
        match self {
            ScalarTy::Int => DataType::Int,
            ScalarTy::Bool => DataType::Bool,
        }
    }
}

/// Effect of an event arriving in a state. Tables are **total**: every
/// `(state, event)` pair is either a transition or an explicit ignore, so
/// `CantHappen` is unreachable in a generated model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransSpec {
    /// Transition to the state with the given index.
    To(usize),
    /// Consume the event silently.
    Ignore,
}

/// One generated class, its lifecycle and its observer actor.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSpec {
    /// Class name (`C<i>`); stable under shrinking.
    pub name: String,
    /// Observer-actor name (`O<i>`); every observable signal this class
    /// emits goes to its own actor, which keeps per-actor traces
    /// single-sourced and therefore schedule-independent.
    pub actor: String,
    /// Attributes `(name, type)`.
    pub attrs: Vec<(String, ScalarTy)>,
    /// The single parameter signature shared by **all** class events.
    /// Sharing one signature makes `rcvd.<p>` reads well-typed under
    /// every inbound event of every state.
    pub params: Vec<(String, ScalarTy)>,
    /// Event names; all share `params`.
    pub events: Vec<String>,
    /// Observable events on the observer actor `(name, arg types)`.
    pub obs: Vec<(String, Vec<ScalarTy>)>,
    /// States `(name, entry action)`; index 0 is the initial state.
    pub states: Vec<(String, Block)>,
    /// Total transition table, indexed `[state][event]`.
    pub transitions: Vec<Vec<TransSpec>>,
    /// Marked for the hardware partition.
    pub hardware: bool,
}

/// One association edge of the send forest (parent sends to child).
#[derive(Debug, Clone, PartialEq)]
pub struct AssocSpec {
    /// Association name (`R<k>`); stable under shrinking.
    pub name: String,
    /// Parent class index.
    pub parent: usize,
    /// Child class index.
    pub child: usize,
    /// Multiplicity at the parent end.
    pub parent_mult: Multiplicity,
    /// Multiplicity at the child end.
    pub child_mult: Multiplicity,
}

/// One external stimulus.
#[derive(Debug, Clone, PartialEq)]
pub struct StimSpec {
    /// Delivery time.
    pub time: u64,
    /// Target class index (always a root of the send forest).
    pub class: usize,
    /// Event name.
    pub event: String,
    /// Literal arguments matching the class's shared signature.
    pub args: Vec<Value>,
}

/// A complete generated fuzz case.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzSpec {
    /// The seed that produced this case (kept through shrinking so a
    /// minimized case still names its origin).
    pub seed: u64,
    /// Classes; the send graph only ever points from lower to higher
    /// indices, and each class has at most one sender — together with
    /// one instance per class this makes every legal schedule produce
    /// the same per-actor traces.
    pub classes: Vec<ClassSpec>,
    /// Send-forest edges.
    pub assocs: Vec<AssocSpec>,
    /// External stimuli (roots only).
    pub stimuli: Vec<StimSpec>,
}

impl FuzzSpec {
    /// Lowers the spec to a validated [`Domain`].
    ///
    /// # Errors
    ///
    /// Returns the validation error when a (shrunk) spec no longer
    /// type-checks; the shrinker treats that as a rejected reduction.
    pub fn lower(&self) -> Result<Domain> {
        let mut b = DomainBuilder::new(&format!("fz{}", self.seed));
        for c in &self.classes {
            let cb = b.class(&c.name);
            for (name, ty) in &c.attrs {
                cb.attr(name, ty.data_type());
            }
            let params: Vec<(&str, DataType)> = c
                .params
                .iter()
                .map(|(n, t)| (n.as_str(), t.data_type()))
                .collect();
            for ev in &c.events {
                cb.event(ev, &params);
            }
            for (name, action) in &c.states {
                cb.state_block(name, action.clone());
            }
            cb.initial(&c.states[0].0);
            for (si, row) in c.transitions.iter().enumerate() {
                for (ei, t) in row.iter().enumerate() {
                    match t {
                        TransSpec::To(ts) => {
                            cb.transition(&c.states[si].0, &c.events[ei], &c.states[*ts].0);
                        }
                        TransSpec::Ignore => {
                            cb.ignore(&c.states[si].0, &c.events[ei]);
                        }
                    }
                }
            }
        }
        for c in &self.classes {
            if !c.obs.is_empty() {
                let ab = b.actor(&c.actor);
                for (name, tys) in &c.obs {
                    let names: Vec<String> = (0..tys.len()).map(|i| format!("x{i}")).collect();
                    let params: Vec<(&str, DataType)> = names
                        .iter()
                        .zip(tys)
                        .map(|(n, t)| (n.as_str(), t.data_type()))
                        .collect();
                    ab.event(name, &params);
                }
            }
        }
        for a in &self.assocs {
            b.association(
                &a.name,
                &self.classes[a.parent].name,
                a.parent_mult,
                &self.classes[a.child].name,
                a.child_mult,
            );
        }
        b.build()
    }

    /// The mark set for this case: per-class hardware placement plus
    /// generous queue depths so bursty generated traffic never overflows
    /// a substrate FIFO (overflow would be a capacity artifact, not a
    /// semantics divergence).
    pub fn marks(&self) -> MarkSet {
        let mut m = MarkSet::new();
        m.set(ElemRef::domain(), "fifoDepth", MarkValue::Int(256));
        for c in &self.classes {
            if c.hardware {
                m.mark_hardware(&c.name);
                m.set(ElemRef::class(&c.name), "queueDepth", MarkValue::Int(256));
            }
        }
        m
    }

    /// The test case: one instance per class (ordinal = class index), one
    /// link per association edge, and the generated stimuli.
    pub fn testcase(&self) -> TestCase {
        let mut tc = TestCase::new(&format!("fuzz-{}", self.seed));
        for c in &self.classes {
            tc.create(&c.name);
        }
        for a in &self.assocs {
            tc.relate(a.parent, a.child, &a.name);
        }
        for s in &self.stimuli {
            tc.inject(s.time, s.class, &s.event, s.args.clone());
        }
        tc
    }

    /// Total number of action statements (nested included) — the shrink
    /// progress metric alongside class and stimulus counts.
    pub fn stmt_count(&self) -> usize {
        self.classes
            .iter()
            .flat_map(|c| c.states.iter())
            .map(|(_, b)| b.weight())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FuzzSpec {
        FuzzSpec {
            seed: 7,
            classes: vec![ClassSpec {
                name: "C0".into(),
                actor: "O0".into(),
                attrs: vec![("a0".into(), ScalarTy::Int)],
                params: vec![("p0".into(), ScalarTy::Int)],
                events: vec!["Ev0".into()],
                obs: vec![("o0".into(), vec![ScalarTy::Int])],
                states: vec![("S0".into(), Block::new())],
                transitions: vec![vec![TransSpec::To(0)]],
                hardware: true,
            }],
            assocs: vec![],
            stimuli: vec![StimSpec {
                time: 0,
                class: 0,
                event: "Ev0".into(),
                args: vec![Value::Int(3)],
            }],
        }
    }

    #[test]
    fn lowers_and_marks() {
        let spec = tiny();
        let d = spec.lower().unwrap();
        assert_eq!(d.classes.len(), 1);
        assert_eq!(d.actors.len(), 1);
        let m = spec.marks();
        assert!(m.is_hardware("C0"));
        let tc = spec.testcase();
        assert_eq!(tc.creates, vec!["C0".to_owned()]);
        assert_eq!(tc.stimuli.len(), 1);
    }
}
