//! # xtuml-fuzz — conformance fuzzing for the xtUML toolchain
//!
//! The paper's translatability argument rests on one guarantee: *"the
//! defined behavior is preserved"* no matter how a model compiler maps a
//! model onto hardware and software. This crate stress-tests that
//! guarantee differentially, in the spirit of compiler fuzzers like
//! Csmith: generate random **well-formed** domains (classes, state
//! machines, actions), random mark files and random stimulus schedules
//! from a single `u64` seed, execute each case on three independent
//! executors —
//!
//! 1. a naive AST-walking **reference interpreter** ([`refinterp`]),
//! 2. the production **model interpreter** (`xtuml-exec`),
//! 3. the **partitioned co-simulation** (`xtuml-mda` + substrates),
//!
//! — and require identical per-actor observable traces
//! ([`xtuml_verify::check_equivalence`]), plus invariant oracles
//! (causality, run-to-completion accounting, no lost signals). Generated
//! cases are *confluent by construction* (see [`generate`]), so **any**
//! divergence is a toolchain bug. On a failure, a greedy shrinker
//! ([`shrink`]) minimizes the case and the result serializes to a
//! `.xtuml`/`.marks`/`.stim` triple any `xtuml` CLI can replay
//! ([`corpus`]).
//!
//! The whole pipeline is deterministic: same seed, same case, same
//! verdict, byte-identical report.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod corpus;
pub mod generate;
pub mod refinterp;
pub mod runner;
pub mod shrink;
pub mod spec;

pub use corpus::{entry, load_dir, parse_stim, render_stim, write_entry, CorpusEntry};
pub use generate::generate;
pub use refinterp::run_reference;
pub use runner::{replay, run_case, run_spec, Ablation, CaseOutcome, CaseStats};
pub use shrink::{shrink, ShrinkStats};
pub use spec::FuzzSpec;
pub use xtuml_exec::Engine;

/// Configuration for one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// First seed (inclusive).
    pub start: u64,
    /// Number of seeds to run.
    pub count: u64,
    /// Minimize failing cases before reporting.
    pub shrink: bool,
    /// Injected scheduler fault (test-only; `None` in production runs).
    pub ablation: Ablation,
    /// Worker threads for the seed sweep. Each seed is an independent
    /// four-way differential run, so the sweep distributes perfectly;
    /// results are collected in seed order, making the report
    /// byte-identical for any `jobs`. `1` runs strictly serially.
    pub jobs: usize,
    /// Engine driving the model-interpreter executor. With the default
    /// [`Engine::Bc`] every case additionally runs the compiled-frame
    /// engine and requires a byte-identical trace (the four-way
    /// differential); [`Engine::Frames`] reproduces the historical
    /// three-way run.
    pub engine: Engine,
    /// Add the checkpoint leg (`--checkpoint`): the interpreter runs a
    /// second time, snapshotting and restoring itself on a fixed
    /// dispatch schedule, and the case fails unless the restored run's
    /// trace is byte-identical to the uninterrupted one.
    pub checkpoint: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            start: 0,
            count: 100,
            shrink: false,
            ablation: Ablation::None,
            jobs: 1,
            engine: Engine::default(),
            checkpoint: false,
        }
    }
}

/// One failing case, with its (possibly minimized) spec.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The seed that produced the case.
    pub seed: u64,
    /// Outcome class (`divergence`, `oracle`, `exec-error`, ...).
    pub class: &'static str,
    /// Failure description (from the *original*, unshrunk outcome).
    pub detail: String,
    /// The spec to report — minimized when shrinking was requested.
    pub spec: FuzzSpec,
    /// Shrink statistics, when shrinking ran.
    pub shrink: Option<ShrinkStats>,
}

/// One per-seed row of the campaign (for structured metric sinks).
#[derive(Debug, Clone, Copy)]
pub struct CaseRow {
    /// The seed.
    pub seed: u64,
    /// Outcome class (`pass`, `divergence`, `oracle`, ...).
    pub class: &'static str,
    /// Effort counters (zero for failing cases).
    pub stats: CaseStats,
}

/// The result of a fuzzing campaign. [`FuzzReport::render`] is
/// deterministic for a given configuration.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// First seed run.
    pub start: u64,
    /// Seeds run.
    pub cases: u64,
    /// Failing cases, in seed order.
    pub failures: Vec<Failure>,
    /// Total interpreter dispatches across passing cases.
    pub dispatches: u64,
    /// Total observable events across passing cases.
    pub observables: u64,
    /// Total events compared by the equivalence oracles.
    pub compared: u64,
    /// Passing cases the effect analysis admitted to sharded execution
    /// (their sharded differential legs ran at 2, 4 and 8 shards).
    pub admitted: u64,
    /// Admitted cases that *needed* the effect summaries — models with
    /// proven-safe non-self access the old syntactic reject-list would
    /// have forced onto the sequential fallback.
    pub newly_admitted: u64,
    /// Per-seed outcome rows, in seed order (JSONL streaming).
    pub per_case: Vec<CaseRow>,
}

impl FuzzReport {
    /// True when every case passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the campaign summary (stable ordering, no timestamps).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let end = self.start + self.cases;
        let _ = writeln!(out, "conformance fuzz: seeds {}..{}", self.start, end);
        let _ = writeln!(out, "  cases run        : {}", self.cases);
        let _ = writeln!(out, "  divergences      : {}", self.failures.len());
        let _ = writeln!(out, "  dispatches       : {}", self.dispatches);
        let _ = writeln!(out, "  observable events: {}", self.observables);
        let _ = writeln!(out, "  compared events  : {}", self.compared);
        let _ = writeln!(out, "  sharded admitted : {}", self.admitted);
        let _ = writeln!(out, "  newly admitted   : {}", self.newly_admitted);
        for f in &self.failures {
            let _ = writeln!(out, "  FAIL seed {}: {}", f.seed, f.detail);
            if let Some(s) = &f.shrink {
                let _ = writeln!(
                    out,
                    "    shrunk {} -> {} classes, {} -> {} stmts, {} -> {} stimuli ({} attempts)",
                    s.classes.0,
                    s.classes.1,
                    s.stmts.0,
                    s.stmts.1,
                    s.stimuli.0,
                    s.stimuli.1,
                    s.attempts
                );
            }
        }
        out
    }

    /// Streams the campaign as JSONL: one `fuzz` header row, then one
    /// `case` row per seed, in seed order. Deterministic for a given
    /// configuration — no timestamps, no host data.
    pub fn render_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"kind\": \"fuzz\", \"start\": {}, \"cases\": {}, \"failures\": {}, \
             \"dispatches\": {}, \"observables\": {}, \"compared\": {}, \
             \"admitted\": {}, \"newly_admitted\": {}}}",
            self.start,
            self.cases,
            self.failures.len(),
            self.dispatches,
            self.observables,
            self.compared,
            self.admitted,
            self.newly_admitted
        );
        for row in &self.per_case {
            let _ = writeln!(
                out,
                "{{\"kind\": \"case\", \"seed\": {}, \"class\": \"{}\", \"dispatches\": {}, \
                 \"observables\": {}, \"compared\": {}, \"admitted\": {}, \
                 \"newly_admitted\": {}}}",
                row.seed,
                row.class,
                row.stats.dispatches,
                row.stats.observables,
                row.stats.compared,
                row.stats.admitted,
                row.stats.newly_admitted
            );
        }
        out
    }
}

/// Runs a fuzzing campaign.
///
/// With `cfg.jobs > 1` the seeds are distributed over a worker pool;
/// each worker generates, executes and (on failure) shrinks its seeds
/// independently, and the per-seed results are folded back **in seed
/// order**, so the report is byte-identical to a serial sweep.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let seeds: Vec<u64> = (cfg.start..cfg.start + cfg.count).collect();
    let pool = xtuml_pool::Pool::new(cfg.jobs);
    let outcomes = pool.map(&seeds, |_, &seed| {
        let spec = generate(seed);
        let outcome = run_spec(&spec, cfg.ablation, cfg.engine, cfg.checkpoint);
        match outcome {
            CaseOutcome::Pass(stats) => Ok(stats),
            other => {
                let class = other.class();
                let detail = other.describe();
                let (min_spec, shrink_stats) = if cfg.shrink {
                    let (s, st) = shrink(&spec, cfg.ablation, cfg.engine, cfg.checkpoint);
                    (s, Some(st))
                } else {
                    (spec, None)
                };
                // Boxed: failures are rare and `Failure` is large; don't
                // make every per-seed result carry its footprint.
                Err(Box::new(Failure {
                    seed,
                    class,
                    detail,
                    spec: min_spec,
                    shrink: shrink_stats,
                }))
            }
        }
    });
    let mut report = FuzzReport {
        start: cfg.start,
        ..FuzzReport::default()
    };
    for (seed, outcome) in seeds.iter().zip(outcomes) {
        report.cases += 1;
        match outcome {
            Ok(stats) => {
                report.dispatches += stats.dispatches;
                report.observables += stats.observables;
                report.compared += stats.compared;
                report.admitted += u64::from(stats.admitted);
                report.newly_admitted += u64::from(stats.newly_admitted);
                report.per_case.push(CaseRow {
                    seed: *seed,
                    class: "pass",
                    stats,
                });
            }
            Err(failure) => {
                report.per_case.push(CaseRow {
                    seed: *seed,
                    class: failure.class,
                    stats: CaseStats::default(),
                });
                report.failures.push(*failure);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let cfg = FuzzConfig {
            start: 0,
            count: 15,
            ..FuzzConfig::default()
        };
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert!(a.ok(), "{}", a.render());
        assert_eq!(a.render(), b.render());
        assert!(a.render().contains("cases run        : 15"));
        assert!(a.admitted >= a.newly_admitted);
        assert!(a.render().contains("sharded admitted : "));
        assert!(a.render_jsonl().contains("\"newly_admitted\": "));
    }
}
