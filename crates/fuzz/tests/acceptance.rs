//! Acceptance tests for the conformance fuzzer (issue 4):
//!
//! * a 200-seed campaign passes on all executor pairs (including the
//!   bytecode-VM-vs-frames trace oracle) and renders
//!   byte-identically across runs;
//! * every generated model round-trips through the printer/parser
//!   unchanged;
//! * an intentionally injected scheduler bug (pair-order ablation) is
//!   caught by the differential oracle and shrunk to a tiny case;
//! * minimized cases serialize to corpus triples that replay to the same
//!   verdict.

use xtuml_fuzz::{
    entry, fuzz, generate, replay, run_spec, shrink, Ablation, CaseOutcome, Engine, FuzzConfig,
};
use xtuml_lang::{parse_domain, print_domain};

#[test]
fn two_hundred_seeds_pass_and_render_deterministically() {
    let cfg = FuzzConfig {
        start: 0,
        count: 200,
        shrink: false,
        ablation: Ablation::None,
        jobs: 1,
        engine: Engine::Bc,
        checkpoint: false,
    };
    let a = fuzz(&cfg);
    assert!(a.ok(), "divergences found:\n{}", a.render());
    assert_eq!(a.cases, 200);
    // Real work happened: generated machines actually dispatched and the
    // equivalence oracles actually compared events.
    assert!(a.dispatches > 200, "dispatches: {}", a.dispatches);
    assert!(a.compared > 200, "compared: {}", a.compared);
    // Byte-determinism of the whole campaign.
    let b = fuzz(&cfg);
    assert_eq!(a.render(), b.render());
}

#[test]
fn parallel_sweep_report_is_byte_identical_to_serial() {
    // Failures included: run under the pair-order ablation so the sweep
    // has real divergences to collect, and require the parallel report
    // to match the serial one byte-for-byte (seed-ordered collection).
    for ablation in [Ablation::None, Ablation::PairOrder] {
        let serial = fuzz(&FuzzConfig {
            start: 0,
            count: 60,
            shrink: false,
            ablation,
            jobs: 1,
            engine: Engine::Bc,
            checkpoint: false,
        });
        for jobs in [2, 4, 8] {
            let parallel = fuzz(&FuzzConfig {
                start: 0,
                count: 60,
                shrink: false,
                ablation,
                jobs,
                engine: Engine::Bc,
                checkpoint: false,
            });
            assert_eq!(
                serial.render(),
                parallel.render(),
                "jobs={jobs} ablation={ablation:?} changed the report"
            );
        }
    }
}

#[test]
fn every_generated_model_round_trips() {
    for seed in 0..100 {
        let domain = generate(seed).lower().unwrap();
        let printed = print_domain(&domain);
        let reparsed = parse_domain(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: printed model failed to parse: {e}"));
        assert_eq!(
            domain, reparsed,
            "seed {seed}: round trip changed the model"
        );
    }
}

#[test]
fn injected_scheduler_bug_is_caught_and_shrunk() {
    // Breaking the per-pair send-order rule in the model interpreter must
    // surface as a per-actor divergence against the reference within a
    // small seed budget...
    let seed = (0..60)
        .find(|s| {
            matches!(
                run_spec(&generate(*s), Ablation::PairOrder, Engine::Bc, false),
                CaseOutcome::Divergence { .. }
            )
        })
        .expect("pair-order ablation was not caught in seeds 0..60");
    // ...and the very same seeds must be clean without the fault.
    assert!(!run_spec(&generate(seed), Ablation::None, Engine::Bc, false).is_failure());

    let (min, stats) = shrink(&generate(seed), Ablation::PairOrder, Engine::Bc, false);
    assert!(
        min.classes.len() <= 3,
        "seed {seed}: shrank only to {} classes",
        min.classes.len()
    );
    assert!(stats.classes.1 <= stats.classes.0);
    assert!(stats.ratio() < 1.0, "shrinker made no progress");
    // The minimized case still reproduces the same failure class.
    assert!(matches!(
        run_spec(&min, Ablation::PairOrder, Engine::Bc, false),
        CaseOutcome::Divergence { .. }
    ));
}

#[test]
fn minimized_case_serializes_and_replays() {
    let seed = (0..60)
        .find(|s| run_spec(&generate(*s), Ablation::PairOrder, Engine::Bc, false).is_failure())
        .expect("no failing seed under ablation");
    let (min, _) = shrink(&generate(seed), Ablation::PairOrder, Engine::Bc, false);
    let e = entry(&min, &format!("seed{seed}-pair-order")).unwrap();
    // Serialization is deterministic.
    assert_eq!(e, entry(&min, &format!("seed{seed}-pair-order")).unwrap());
    // The triple replays: clean under the defined semantics, divergent
    // under the injected fault.
    let clean = replay(
        &e.model,
        &e.marks,
        &e.stim,
        Ablation::None,
        Engine::Bc,
        true,
    )
    .unwrap();
    assert!(!clean.is_failure(), "replay: {}", clean.describe());
    let faulty = replay(
        &e.model,
        &e.marks,
        &e.stim,
        Ablation::PairOrder,
        Engine::Bc,
        false,
    )
    .unwrap();
    assert!(matches!(faulty, CaseOutcome::Divergence { .. }));
}
