#!/bin/sh
# Tier-1 CI gate: everything here runs offline (no network, no external
# crates — property tests and criterion benches are feature-gated off).
set -eux

cargo fmt --all -- --check
cargo clippy --workspace -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
