#!/bin/sh
# Tier-1 CI gate: everything here runs offline (no network, no external
# crates — property tests and criterion benches are feature-gated off).
set -eux

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace

# Lint gate: every shipped model must be free of deny-level (error)
# diagnostics. Warnings are allowed — some shipped models demonstrate
# them on purpose; models/lints/* are deliberately buggy fixtures and are
# covered by the golden tests instead.
for model in models/*.xtuml; do
    marks="${model%.xtuml}.marks"
    if [ -f "$marks" ]; then
        cargo run --quiet --release -- lint "$model" "$marks"
    else
        cargo run --quiet --release -- lint "$model"
    fi
done

# Effect-analysis gate: `xtuml analyze` must run clean on every shipped
# model (the analyze goldens pin the fixture outputs; this proves the
# CLI surface itself on real models), and the deliberately racy fixture
# must be rejected with the X0017 two-action witness.
for model in models/*.xtuml; do
    cargo run --quiet --release -- analyze "$model" > /dev/null
done
cargo run --quiet --release -- analyze models/lints/shardrace.xtuml \
    | grep -q 'race on `Cell.v`'

# Fuzz-smoke gate: a fixed seed range of the conformance fuzzer must run
# clean — the four-way differential (reference interpreter, frame
# interpreter, bytecode VM, partitioned cosim) agrees on every generated
# model — and the report must be byte-identical across two runs (the
# whole pipeline is seed-deterministic). A non-zero divergence count
# already fails via the exit code; the cmp catches any nondeterminism
# that happens to produce the same verdict.
mkdir -p target
cargo run --quiet --release -- fuzz --seeds 200 > target/fuzz-smoke-1.txt
cargo run --quiet --release -- fuzz --seeds 200 > target/fuzz-smoke-2.txt
cmp target/fuzz-smoke-1.txt target/fuzz-smoke-2.txt
grep -q 'divergences      : 0' target/fuzz-smoke-1.txt

# Admission gate: the effect analysis must keep admitting a healthy
# share of the generated models to real sharded execution (each such
# case already ran the sharded differential at 2, 4 and 8 shards inside
# the sweep above). A drop below 40/200 newly admitted models means the
# admission rules regressed to the old syntactic reject-list.
awk '
    /newly admitted   :/ { n = $4 + 0 }
    END {
        if (n < 40) { printf "FAIL: only %d/200 newly admitted\n", n; exit 1 }
        printf "fuzz admission: %d/200 newly admitted\n", n
    }' target/fuzz-smoke-1.txt

# Parallel-determinism gate: the sharded engine's contract is that the
# worker count never changes the output. The dedicated suites prove it
# at the engine and CLI layers; the smoke below re-proves it end to end
# on a shipped model (`--shards` pins the schedule while `--jobs`
# varies), and the fuzz sweep must render the same report parallel as
# serial.
cargo test -q --release -p xtuml-pool
cargo test -q --release -p xtuml-exec --test parallel
cargo test -q --release --test parallel_determinism
cargo run --quiet --release -- run models/doorbell.xtuml models/doorbell.stim \
    --shards 4 --jobs 1 > target/run-par-1.txt
cargo run --quiet --release -- run models/doorbell.xtuml models/doorbell.stim \
    --shards 4 --jobs 2 > target/run-par-2.txt
cmp target/run-par-1.txt target/run-par-2.txt
cargo run --quiet --release -- fuzz --seeds 200 --jobs 4 > target/fuzz-smoke-par.txt
cmp target/fuzz-smoke-1.txt target/fuzz-smoke-par.txt

# Engine-equivalence gate: the compiled-frame interpreter must stay an
# exact behavioural twin of the default bytecode VM. The fuzz sweep
# above proves it across generated models; this proves it end to end on
# a shipped model through the real CLI (`--engine frames` flips only
# the action executor).
cargo run --quiet --release -- run models/doorbell.xtuml models/doorbell.stim \
    > target/run-engine-bc.txt
cargo run --quiet --release -- run models/doorbell.xtuml models/doorbell.stim \
    --engine frames > target/run-engine-frames.txt
cmp target/run-engine-bc.txt target/run-engine-frames.txt

# Telemetry gates (DESIGN §12). First the determinism contract: metric
# snapshots must be byte-identical across worker counts and against the
# plain sequential engine, and `xtuml stats` must match its goldens.
cargo test -q --release --test metrics_determinism

# The profile surface must emit a well-formed Chrome trace-event document
# (the shape Perfetto loads); `stats --check-profile` validates it with
# the in-repo JSON parser, so a malformed profile fails CI, not the
# first person to open it in a viewer.
cargo run --quiet --release -- run models/doorbell.xtuml models/doorbell.stim \
    --shards 4 --profile target/ci-profile.json > /dev/null
cargo run --quiet --release -- stats --check-profile target/ci-profile.json

# Interp regression + zero-cost-when-disabled gate: one fresh
# measurement (telemetry compiled in but off — the default) is checked
# against the blessed VM-era baseline at a 2% threshold, which subsumes
# the 10% hard-regression bar the parallel bench uses. The bench binary
# byte-compares the VM's trace against the frame interpreter's per
# configuration before any timing is trusted. The baseline is blessed
# from the minimum of several runs on the CI host, so the threshold
# absorbs scheduler noise rather than re-measuring it.
( cd target && cargo run --quiet --release -p xtuml-bench --bin throughput )
cp BENCH_interp.baseline.json target/
awk '
    FNR == 1 { file++ }
    /"aggregate_signals_per_sec"/ { rate[file] = $2 + 0 }
    END {
        if (rate[2] <= 0) { print "no interp baseline rate parsed"; exit 1 }
        ratio = rate[1] / rate[2]
        printf "interp bench (telemetry off): %.0f vs baseline %.0f (%.2fx)\n", rate[1], rate[2], ratio
        if (ratio < 0.98) { print "FAIL: disabled telemetry costs >2%"; exit 1 }
    }' target/BENCH_interp.json target/BENCH_interp.baseline.json

# Null-dispatch gate: the dispatch microbench measures pure per-signal
# engine overhead (every action body is empty), which is exactly the
# surface the dispatch superloop optimizes — regressions here are
# invisible in the pipeline bench, whose real action work dominates.
# The binary byte-compares the engines on a scaled-down conformance
# pass before timing, and interleaves its timed columns so heap and
# frequency drift cannot masquerade as an engine difference. Gate at
# 0.9x of the blessed baseline; like the interp baseline it is
# host-specific and must be re-blessed when the CI host changes.
( cd target && cargo run --quiet --release -p xtuml-bench --bin dispatch )
cp BENCH_dispatch.baseline.json target/
awk '
    FNR == 1 { file++ }
    /"aggregate_signals_per_sec"/ { rate[file] = $2 + 0 }
    END {
        if (rate[2] <= 0) { print "no dispatch baseline rate parsed"; exit 1 }
        ratio = rate[1] / rate[2]
        printf "dispatch bench: %.0f vs baseline %.0f (%.2fx)\n", rate[1], rate[2], ratio
        if (ratio < 0.9) { print "FAIL: >10% dispatch overhead regression"; exit 1 }
    }' target/BENCH_dispatch.json target/BENCH_dispatch.baseline.json

# Scaling-bench gate: smoke-run the jobs sweep at 1 and 2 workers (the
# binary itself byte-compares the traces before trusting any timing),
# then fail on a >10% aggregate throughput regression against the
# checked-in baseline.
( cd target && BENCH_ITERS=1 BENCH_JOBS=1,2 cargo run --quiet --release \
    -p xtuml-bench --bin scaling )
if [ -f BENCH_parallel.baseline.json ]; then
    cp BENCH_parallel.baseline.json target/
    ( cd target && BENCH_ITERS=3 cargo run --quiet --release \
        -p xtuml-bench --bin scaling )
    awk '
        /"aggregate_signals_per_sec"/  { cur = $2 + 0 }
        /"baseline_signals_per_sec"/   { base = $2 + 0 }
        END {
            if (base <= 0) { print "no baseline rate parsed"; exit 1 }
            ratio = cur / base
            printf "parallel bench: %.0f vs baseline %.0f (%.2fx)\n", cur, base, ratio
            if (ratio < 0.9) { print "FAIL: >10% regression"; exit 1 }
        }' target/BENCH_parallel.json
fi

# Snapshot/restore gates (DESIGN §15). The round-trip suite proves
# `restore(snapshot(sim))` continues byte-identically over the corpus
# and a generated sweep at shards {1,2,4}; the checkpointed fuzz smoke
# re-runs the interpreter leg with a snapshot/restore cycle every few
# dispatches across 200 generated models and must stay divergence-free.
cargo test -q --release --test snapshot_roundtrip
cargo run --quiet --release -- fuzz --seeds 200 --checkpoint \
    > target/fuzz-smoke-ckpt.txt
grep -q 'divergences      : 0' target/fuzz-smoke-ckpt.txt

# Serve smoke gate: the daemon's golden transcript — spawned server on
# loopback, every verb exercised including a restore-rewind whose
# continuation must equal the pre-restore run — compared byte-for-byte
# against the blessed golden. Any drift in the wire protocol, response
# field order, or session semantics fails here.
cargo run --quiet --release -- serve --smoke > target/serve-smoke.txt
cmp target/serve-smoke.txt tests/golden/serve_smoke.txt

# Serve load gate: the session-conformance suite, then one fresh
# measurement against the blessed baseline. The harness runs best-of-3
# to absorb scheduler noise; fail on a >10% regression or if the rate
# ever drops below the 1k sessions/s acceptance floor.
cargo test -q --release -p xtuml-serve
if [ -f BENCH_serve.baseline.json ]; then
    cp BENCH_serve.baseline.json target/
    ( cd target && cargo run --quiet --release -p xtuml-bench --bin serve_load )
    awk '
        /"aggregate_sessions_per_sec"/ { cur = $2 + 0 }
        /"baseline_sessions_per_sec"/  { base = $2 + 0 }
        END {
            if (base <= 0) { print "no serve baseline rate parsed"; exit 1 }
            ratio = cur / base
            printf "serve bench: %.0f vs baseline %.0f sessions/s (%.2fx)\n", cur, base, ratio
            if (cur < 1000) { print "FAIL: below the 1k sessions/s floor"; exit 1 }
            if (ratio < 0.9) { print "FAIL: >10% regression"; exit 1 }
        }' target/BENCH_serve.json
fi
