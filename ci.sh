#!/bin/sh
# Tier-1 CI gate: everything here runs offline (no network, no external
# crates — property tests and criterion benches are feature-gated off).
set -eux

cargo fmt --all -- --check
cargo clippy --workspace -- -D warnings
cargo build --release --workspace
cargo test -q --workspace

# Lint gate: every shipped model must be free of deny-level (error)
# diagnostics. Warnings are allowed — some shipped models demonstrate
# them on purpose; models/lints/* are deliberately buggy fixtures and are
# covered by the golden tests instead.
for model in models/*.xtuml; do
    marks="${model%.xtuml}.marks"
    if [ -f "$marks" ]; then
        cargo run --quiet --release -- lint "$model" "$marks"
    else
        cargo run --quiet --release -- lint "$model"
    fi
done
