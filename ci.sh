#!/bin/sh
# Tier-1 CI gate: everything here runs offline (no network, no external
# crates — property tests and criterion benches are feature-gated off).
set -eux

cargo fmt --all -- --check
cargo clippy --workspace -- -D warnings
cargo build --release --workspace
cargo test -q --workspace

# Lint gate: every shipped model must be free of deny-level (error)
# diagnostics. Warnings are allowed — some shipped models demonstrate
# them on purpose; models/lints/* are deliberately buggy fixtures and are
# covered by the golden tests instead.
for model in models/*.xtuml; do
    marks="${model%.xtuml}.marks"
    if [ -f "$marks" ]; then
        cargo run --quiet --release -- lint "$model" "$marks"
    else
        cargo run --quiet --release -- lint "$model"
    fi
done

# Fuzz-smoke gate: a fixed seed range of the conformance fuzzer must run
# clean — reference interpreter, model interpreter and partitioned cosim
# agree on every generated model — and the report must be byte-identical
# across two runs (the whole pipeline is seed-deterministic). A non-zero
# divergence count already fails via the exit code; the cmp catches any
# nondeterminism that happens to produce the same verdict.
mkdir -p target
cargo run --quiet --release -- fuzz --seeds 200 > target/fuzz-smoke-1.txt
cargo run --quiet --release -- fuzz --seeds 200 > target/fuzz-smoke-2.txt
cmp target/fuzz-smoke-1.txt target/fuzz-smoke-2.txt
grep -q 'divergences      : 0' target/fuzz-smoke-1.txt
