//! A pedestrian-crossing traffic controller: two signal heads and a
//! button, coordinated purely by signals and timers — then partitioned
//! with the signal heads in hardware and the controller in software, and
//! verified equivalent.
//!
//! ```text
//! cargo run --example traffic_lights
//! ```

use xtuml::core::builder::DomainBuilder;
use xtuml::core::marks::MarkSet;
use xtuml::core::value::{DataType, Value};
use xtuml::core::Multiplicity;
use xtuml::exec::SchedPolicy;
use xtuml::mda::ModelCompiler;
use xtuml::verify::{check_equivalence, run_compiled, run_model, TestCase};

fn model() -> xtuml::core::Domain {
    let mut b = DomainBuilder::new("crossing");
    b.actor("STREET")
        .event("cars_go", &[])
        .event("cars_stop", &[])
        .event("walk", &[])
        .event("dont_walk", &[]);

    // The controller sequences the phases with timers.
    b.class("Controller")
        .attr("requests", DataType::Int)
        .event("ButtonPressed", &[])
        .event("PhaseDone", &[])
        .state("CarsGreen", "")
        .state(
            "Requested",
            "self.requests = self.requests + 1;\n\
             gen PhaseDone() to self after 2000;",
        )
        .state(
            "CarsYellow",
            "h = any(self -> Head[R1]);\n\
             gen ShowYellow() to h;\n\
             gen PhaseDone() to self after 1000;",
        )
        .state(
            "Walk",
            "h = any(self -> Head[R1]);\n\
             gen ShowRed() to h;\n\
             gen walk() to STREET;\n\
             gen PhaseDone() to self after 5000;",
        )
        .state(
            "BackToCars",
            "gen dont_walk() to STREET;\n\
             h = any(self -> Head[R1]);\n\
             gen ShowGreen() to h;",
        )
        .initial("CarsGreen")
        .transition("CarsGreen", "ButtonPressed", "Requested")
        .transition("Requested", "PhaseDone", "CarsYellow")
        .transition("CarsYellow", "PhaseDone", "Walk")
        .transition("Walk", "PhaseDone", "BackToCars")
        .transition("BackToCars", "ButtonPressed", "Requested")
        .ignore("Requested", "ButtonPressed")
        .ignore("CarsYellow", "ButtonPressed")
        .ignore("Walk", "ButtonPressed");

    // The signal head drives the street-facing lamps.
    b.class("Head")
        .attr("changes", DataType::Int)
        .event("ShowGreen", &[])
        .event("ShowYellow", &[])
        .event("ShowRed", &[])
        .state("Green", "")
        .state(
            "Yellow",
            "self.changes = self.changes + 1;\ngen cars_stop() to STREET;",
        )
        .state("Red", "self.changes = self.changes + 1;")
        .state(
            "GreenAgain",
            "self.changes = self.changes + 1;\ngen cars_go() to STREET;",
        )
        .initial("Green")
        .transition("Green", "ShowYellow", "Yellow")
        .transition("Yellow", "ShowRed", "Red")
        .transition("Red", "ShowGreen", "GreenAgain")
        .transition("GreenAgain", "ShowYellow", "Yellow");

    b.association(
        "R1",
        "Controller",
        Multiplicity::One,
        "Head",
        Multiplicity::One,
    );
    b.build().expect("crossing model is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = model();
    let mut tc = TestCase::new("one-crossing");
    let ctrl = tc.create("Controller");
    let head = tc.create("Head");
    tc.relate(ctrl, head, "R1");
    tc.inject(0, ctrl, "ButtonPressed", vec![]);
    tc.inject(100, ctrl, "ButtonPressed", vec![]); // debounced by ignore

    let model_trace = run_model(&domain, SchedPolicy::default(), &tc)?;
    println!("model trace ({} observable events):", model_trace.len());
    for ev in &model_trace {
        println!("  {ev}");
    }

    // The street-facing signal head belongs in hardware; the sequencing
    // policy stays in software.
    let mut marks = MarkSet::new();
    marks.mark_hardware("Head");
    let design = ModelCompiler::new().compile(&domain, &marks)?;
    println!(
        "\npartitioned: {} channel(s); C {} lines; VHDL {} lines",
        design.interface.channels.len(),
        design.c_lines(),
        design.vhdl_lines()
    );

    let impl_trace = run_compiled(&design, &tc)?;
    let report = check_equivalence(&model_trace, &impl_trace);
    println!("equivalent to the model: {}", report.is_equivalent());
    assert!(report.is_equivalent(), "{:?}", report.divergences);

    // The expected street choreography.
    let street: Vec<&str> = model_trace.iter().map(|e| e.event.as_str()).collect();
    assert_eq!(street, ["cars_stop", "walk", "dont_walk", "cars_go"]);
    let _ = Value::Int(0);
    Ok(())
}
