//! The classic xtUML microwave oven, written in the textual model format,
//! executed with a scripted user scenario (including timers).
//!
//! ```text
//! cargo run --example microwave
//! ```

use xtuml::core::value::Value;
use xtuml::exec::Simulation;
use xtuml::lang::parse_domain;

const MODEL: &str = r#"
domain Microwave;

actor PANEL {
    signal beep();
    signal light(on: bool);
}

actor KITCHEN {
    signal food_ready(elapsed: int);
}

class Oven {
    attr remaining: int = 0;
    attr cooked: int = 0;

    event Start(duration: int);
    event Tick();
    event DoorOpened();
    event DoorClosed();

    initial Idle;

    state Idle {
    }
    state Cooking {
        gen light(true) to PANEL;
        self.remaining = rcvd.duration;
        gen Tick() to self after 1000;
    }
    state Ticking {
        self.remaining = self.remaining - 1;
        self.cooked = self.cooked + 1;
        if (self.remaining > 0) {
            gen Tick() to self after 1000;
        }
        else {
            gen beep() to PANEL;
            gen light(false) to PANEL;
            gen food_ready(self.cooked) to KITCHEN;
        }
    }
    state Paused {
        cancel Tick;
        gen light(false) to PANEL;
    }
    state Resumed {
        gen light(true) to PANEL;
        gen Tick() to self after 1000;
    }

    on Idle: Start -> Cooking;
    on Cooking: Tick -> Ticking;
    on Ticking: Tick -> Ticking;
    on Cooking: DoorOpened -> Paused;
    on Ticking: DoorOpened -> Paused;
    on Paused: DoorClosed -> Resumed;
    on Resumed: Tick -> Ticking;
    on Resumed: DoorOpened -> Paused;
    on Idle: DoorOpened ignore;
    on Idle: DoorClosed ignore;
    on Paused: Tick ignore;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = parse_domain(MODEL)?;
    println!(
        "parsed `{}`: {} class(es), {} actor(s)",
        domain.name,
        domain.classes.len(),
        domain.actors.len()
    );

    let mut sim = Simulation::new(&domain);
    let oven = sim.create("Oven")?;

    // Cook for 3 seconds; open the door mid-cook; close it again.
    sim.inject(0, oven, "Start", vec![Value::Int(3)])?;
    sim.inject(1500, oven, "DoorOpened", vec![])?;
    sim.inject(4000, oven, "DoorClosed", vec![])?;
    sim.run_to_quiescence()?;

    println!("final state  : {}", sim.state_name(oven)?);
    println!("seconds done : {}", sim.attr(oven, "cooked")?);
    println!("observable trace:");
    for ev in sim.trace().observable(&domain) {
        println!("  {ev}");
    }

    assert_eq!(sim.state_name(oven)?, "Ticking");
    assert_eq!(sim.attr(oven, "cooked")?, Value::Int(3));
    let obs = sim.trace().observable(&domain);
    assert!(obs
        .iter()
        .any(|e| e.actor == "KITCHEN" && e.event == "food_ready"));
    Ok(())
}
