//! A motivating SoC: a packet classifier (marked hardware) controlled by
//! a policy manager (software). Demonstrates the complete paper flow:
//!
//! 1. model the system with **no** implementation decisions (§2),
//! 2. execute formal test cases against the model,
//! 3. **mark** the classifier `isHardware` (§3),
//! 4. run the model compiler: generated C + VHDL + the generated
//!    interface (§4),
//! 5. co-simulate the partitioned implementation and check observable
//!    equivalence against the model,
//! 6. **move the mark** and show behaviour is still preserved —
//!    "changing the partition is a matter of changing the placement of
//!    the marks".
//!
//! ```text
//! cargo run --example packet_filter
//! ```

use xtuml::core::builder::DomainBuilder;
use xtuml::core::marks::MarkSet;
use xtuml::core::value::{DataType, Value};
use xtuml::exec::SchedPolicy;
use xtuml::mda::ModelCompiler;
use xtuml::verify::{check_equivalence, run_compiled, run_model, TestCase};

fn model() -> xtuml::core::Domain {
    let mut b = DomainBuilder::new("netsoc");
    b.actor("NIC").event("forwarded", &[("len", DataType::Int)]);
    b.actor("HOSTCPU").event("alert", &[("len", DataType::Int)]);

    // The classifier: drops short packets, forwards good ones, escalates
    // oversized ones to the policy manager.
    b.class("Classifier")
        .attr("forwarded", DataType::Int)
        .attr("dropped", DataType::Int)
        .attr("mtu", DataType::Int)
        .event("Packet", &[("len", DataType::Int)])
        .event("SetMtu", &[("mtu", DataType::Int)])
        .state("Filtering", "")
        .state(
            "Classify",
            "if (rcvd.len < 64) {\n\
                 self.dropped = self.dropped + 1;\n\
             }\n\
             elif (rcvd.len > self.mtu) {\n\
                 mgr = any(self -> PolicyManager[R1]);\n\
                 gen Oversize(rcvd.len) to mgr;\n\
             }\n\
             else {\n\
                 self.forwarded = self.forwarded + 1;\n\
                 gen forwarded(rcvd.len) to NIC;\n\
             }",
        )
        .state("Retuned", "self.mtu = rcvd.mtu;")
        .initial("Filtering")
        .transition("Filtering", "Packet", "Classify")
        .transition("Classify", "Packet", "Classify")
        .transition("Filtering", "SetMtu", "Retuned")
        .transition("Classify", "SetMtu", "Retuned")
        .transition("Retuned", "Packet", "Classify")
        .transition("Retuned", "SetMtu", "Retuned");

    // The policy manager: alerts the host and widens the MTU after
    // repeated oversize packets.
    b.class("PolicyManager")
        .attr("oversize_seen", DataType::Int)
        .event("Oversize", &[("len", DataType::Int)])
        .state("Watching", "")
        .state(
            "Deciding",
            "self.oversize_seen = self.oversize_seen + 1;\n\
             gen alert(rcvd.len) to HOSTCPU;\n\
             if (self.oversize_seen >= 3) {\n\
                 cls = any(self -> Classifier[R1]);\n\
                 gen SetMtu(9000) to cls;\n\
                 self.oversize_seen = 0;\n\
             }",
        )
        .initial("Watching")
        .transition("Watching", "Oversize", "Deciding")
        .transition("Deciding", "Oversize", "Deciding");

    b.association(
        "R1",
        "Classifier",
        xtuml::core::Multiplicity::One,
        "PolicyManager",
        xtuml::core::Multiplicity::One,
    );
    b.build().expect("netsoc model is valid")
}

fn test_case() -> TestCase {
    let mut tc = TestCase::new("mixed-traffic");
    let cls = tc.create("Classifier");
    let mgr = tc.create("PolicyManager");
    tc.relate(cls, mgr, "R1");
    // mtu defaults to 0 → everything ≥64 is oversize until retuned.
    tc.inject(0, cls, "SetMtu", vec![Value::Int(1500)]);
    let lens = [40, 900, 2000, 700, 3000, 80, 4000, 1200, 9500, 500];
    for (i, len) in lens.into_iter().enumerate() {
        tc.inject(10 + i as u64, cls, "Packet", vec![Value::Int(len)]);
    }
    tc
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = model();
    let tc = test_case();

    // Formal test case against the abstract model (§2).
    let model_trace = run_model(&domain, SchedPolicy::default(), &tc)?;
    println!("model run: {} observable event(s)", model_trace.len());
    for ev in &model_trace {
        println!("  {ev}");
    }

    // Mark the classifier as hardware (§3) and compile (§4).
    let mut marks = MarkSet::new();
    marks.mark_hardware("Classifier");
    let design = ModelCompiler::new().compile(&domain, &marks)?;
    println!(
        "\ncompiled: {} interface channel(s), {} lines of C, {} lines of VHDL",
        design.interface.channels.len(),
        design.c_lines(),
        design.vhdl_lines()
    );
    for ch in &design.interface.channels {
        let class = &domain.class(ch.target_class).name;
        let event = &domain.class(ch.target_class).events[ch.event.index()].name;
        println!("  channel {}: {} {}.{}", ch.id, ch.dir, class, event);
    }

    // Co-simulate and verify behavioural equivalence.
    let impl_trace = run_compiled(&design, &tc)?;
    let report = check_equivalence(&model_trace, &impl_trace);
    println!(
        "\nhardware classifier: equivalent = {}",
        report.is_equivalent()
    );
    assert!(report.is_equivalent(), "{:?}", report.divergences);

    // Move the mark: policy manager to hardware instead (§4, §5).
    let mut marks2 = MarkSet::new();
    marks2.mark_hardware("PolicyManager");
    println!(
        "marks edited to repartition: {} mark change(s)",
        marks.diff_count(&marks2)
    );
    let design2 = ModelCompiler::new().compile(&domain, &marks2)?;
    let impl2_trace = run_compiled(&design2, &tc)?;
    let report2 = check_equivalence(&model_trace, &impl2_trace);
    println!(
        "hardware policy-manager: equivalent = {}",
        report2.is_equivalent()
    );
    assert!(report2.is_equivalent(), "{:?}", report2.divergences);

    println!("\nbehaviour preserved across both partitions; the model never changed.");
    Ok(())
}
