//! Quickstart: build a tiny Executable UML model in Rust, execute it
//! against a scripted scenario, and print the observable trace.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xtuml::core::builder::DomainBuilder;
use xtuml::core::value::{DataType, Value};
use xtuml::exec::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Model: a turnstile with coin/push signals and an audit actor.
    let mut b = DomainBuilder::new("turnstile");
    b.actor("AUDIT")
        .event("passed", &[("count", DataType::Int)])
        .event("rejected", &[]);
    b.class("Turnstile")
        .attr("passes", DataType::Int)
        .event("Coin", &[])
        .event("Push", &[])
        .state("Locked", "")
        .state("Unlocked", "")
        .state(
            "Passing",
            "self.passes = self.passes + 1;\n\
             gen passed(self.passes) to AUDIT;",
        )
        .state("Rejecting", "gen rejected() to AUDIT;")
        .initial("Locked")
        .transition("Locked", "Coin", "Unlocked")
        .transition("Locked", "Push", "Rejecting")
        .transition("Rejecting", "Coin", "Unlocked")
        .transition("Rejecting", "Push", "Rejecting")
        .transition("Unlocked", "Push", "Passing")
        .transition("Passing", "Coin", "Unlocked")
        .transition("Passing", "Push", "Rejecting")
        .ignore("Unlocked", "Coin");
    let domain = b.build()?;
    println!(
        "model `{}` validated: {} class(es)",
        domain.name,
        domain.classes.len()
    );

    // 2. Execute a scenario against the model — no implementation
    //    anywhere in sight (paper §2).
    let mut sim = Simulation::new(&domain);
    let t = sim.create("Turnstile")?;
    for (time, event) in [
        (0, "Push"), // rejected
        (1, "Coin"),
        (2, "Push"), // pass 1
        (3, "Coin"),
        (4, "Push"), // pass 2
        (5, "Push"), // rejected
    ] {
        sim.inject(time, t, event, vec![])?;
    }
    sim.run_to_quiescence()?;

    // 3. Inspect results.
    println!("final state : {}", sim.state_name(t)?);
    println!("passes      : {}", sim.attr(t, "passes")?);
    println!("observable trace:");
    for ev in sim.trace().observable(&domain) {
        println!("  {ev}");
    }
    assert_eq!(sim.attr(t, "passes")?, Value::Int(2));
    Ok(())
}
