//! Sweeps every 2^k hardware/software partition of a k-stage pipeline,
//! verifying observable equivalence for each and printing the paper's
//! punchline as a table: the only artefact that changes between rows is
//! the mark set.
//!
//! ```text
//! cargo run --release --example repartition_sweep
//! ```

use xtuml::core::builder::pipeline_domain;
use xtuml::core::marks::MarkSet;
use xtuml::exec::SchedPolicy;
use xtuml::mda::ModelCompiler;
use xtuml::verify::{check_equivalence, run_compiled, run_model, TestCase};

const STAGES: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = pipeline_domain(STAGES)?;
    let tc = TestCase::pipeline(STAGES, 4);
    let model_trace = run_model(&domain, SchedPolicy::default(), &tc)?;
    println!(
        "pipeline with {STAGES} stages; model produces {} observable event(s)\n",
        model_trace.len()
    );
    println!("| partition (1=hw) | channels | bus msgs | hw cycles | cpu cycles | equivalent |");
    println!("|------------------|----------|----------|-----------|------------|------------|");

    let mut all_ok = true;
    for mask in 0..(1u32 << STAGES) {
        let mut marks = MarkSet::new();
        for k in 0..STAGES {
            if mask & (1 << k) != 0 {
                marks.mark_hardware(&format!("Stage{k}"));
            }
        }
        let design = ModelCompiler::new().compile(&domain, &marks)?;

        let mut sys = design.instantiate();
        let mut insts = Vec::new();
        for class in &tc.creates {
            insts.push(sys.create(class)?);
        }
        for (a, b, assoc) in &tc.relates {
            sys.relate(insts[*a], insts[*b], assoc)?;
        }
        for s in &tc.stimuli {
            sys.inject(s.time, insts[s.inst], &s.event, s.args.clone())?;
        }
        let stats = sys.run_to_quiescence()?;
        let report = check_equivalence(&model_trace, &sys.observables());
        all_ok &= report.is_equivalent();

        println!(
            "| {mask:0w$b} | {:>8} | {:>8} | {:>9} | {:>10} | {:>10} |",
            design.interface.channels.len(),
            stats.msgs_sw_to_hw + stats.msgs_hw_to_sw,
            stats.hw_cycles,
            stats.cpu_cycles,
            if report.is_equivalent() { "yes" } else { "NO" },
            w = STAGES,
        );
    }
    println!(
        "\nall {} partitions preserved the defined behavior: {}",
        1 << STAGES,
        all_ok
    );
    assert!(all_ok);
    // Demonstrate run_compiled for symmetry with the harness API.
    let mut marks = MarkSet::new();
    marks.mark_hardware("Stage0");
    let design = ModelCompiler::new().compile(&domain, &marks)?;
    let trace = run_compiled(&design, &tc)?;
    assert!(check_equivalence(&model_trace, &trace).is_equivalent());
    Ok(())
}
